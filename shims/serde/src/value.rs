//! The generic value tree shared by `serde` and `serde_json`.

/// A JSON-like number: integers keep full 64-bit precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// An unsigned integer.
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A double-precision float.
    Float(f64),
}

/// A JSON-like dynamically typed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::UInt(n)) => Some(*n),
            Value::Number(Number::Int(n)) => u64::try_from(*n).ok(),
            Value::Number(Number::Float(f))
                if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 =>
            {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::Int(n)) => Some(*n),
            Value::Number(Number::UInt(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::Float(f))
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::Float(f)) => Some(*f),
            Value::Number(Number::UInt(n)) => Some(*n as f64),
            Value::Number(Number::Int(n)) => Some(*n as f64),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}
