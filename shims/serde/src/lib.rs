//! Offline shim for `serde`.
//!
//! The build environment has no registry access, so this workspace vendors
//! a minimal serialization framework exposing the subset of the serde API
//! the scheduler uses: the [`Serialize`] / [`Deserialize`] traits and
//! `#[derive(Serialize, Deserialize)]` for plain structs, tuple structs
//! and unit/newtype enums. Instead of serde's visitor architecture, the
//! data model is a concrete JSON-like [`Value`] tree; `serde_json` (also
//! vendored) renders and parses that tree. Formats beyond JSON and exotic
//! serde attributes are intentionally unsupported.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Number, Value};

use std::fmt;

/// A (de)serialization error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to the generic value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, reporting structural mismatches as [`Error`]s.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::UInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| {
                    Error::custom(format!("expected unsigned integer, got {}", v.kind()))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::Int(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected integer, got {}", v.kind()))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(xs) => xs.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(xs) if xs.len() == LEN => {
                        Ok(($($name::from_value(&xs[$idx])?,)+))
                    }
                    Value::Array(xs) => Err(Error::custom(format!(
                        "expected {LEN}-tuple, got array of {}",
                        xs.len()
                    ))),
                    other => Err(Error::custom(format!(
                        "expected tuple array, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<(usize, f64)> = vec![(1, 0.5), (2, 1.5)];
        let round: Vec<(usize, f64)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(round, v);
        let o: Option<String> = None;
        let round: Option<String> = Deserialize::from_value(&o.to_value()).unwrap();
        assert_eq!(round, None);
    }

    #[test]
    fn type_mismatch_reported() {
        assert!(u32::from_value(&Value::String("x".into())).is_err());
        assert!(<Vec<u8>>::from_value(&Value::Bool(false)).is_err());
        assert!(<(u8, u8)>::from_value(&Value::Array(vec![Value::Null])).is_err());
    }
}
