//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free lock API
//! (`lock()` returns the guard directly; a poisoned std lock is treated
//! as still usable, matching parking_lot's no-poisoning semantics).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
