//! Property tests for the rayon shim: every parallel consumer must agree
//! with its sequential `Iterator` counterpart on arbitrary inputs, and
//! panics must propagate out of `join` and `scope`.

use proptest::prelude::*;
use rayon::prelude::*;

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool handle")
}

proptest! {
    #[test]
    fn par_map_collect_matches_sequential(
        xs in collection::vec(-1_000_000i64..1_000_000, 0..300),
        threads in 1usize..9,
    ) {
        let par: Vec<i64> = pool(threads).install(|| xs.par_iter().map(|&x| x * 3 - 1).collect());
        let seq: Vec<i64> = xs.iter().map(|&x| x * 3 - 1).collect();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn par_sum_matches_sequential(
        xs in collection::vec(-1_000_000i64..1_000_000, 0..300),
        threads in 1usize..9,
    ) {
        let par: i64 = pool(threads).install(|| xs.par_iter().map(|&x| x).sum());
        let seq: i64 = xs.iter().sum();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn par_float_sum_is_thread_invariant_and_close_to_sequential(
        xs in collection::vec(-1000.0f64..1000.0, 0..300),
    ) {
        let sums: Vec<f64> = (1usize..=6)
            .map(|t| pool(t).install(|| xs.par_iter().sum::<f64>()))
            .collect();
        // Bit-identical across thread counts (the shim's chunking is a
        // function of length alone)...
        for w in sums.windows(2) {
            prop_assert_eq!(w[0].to_bits(), w[1].to_bits());
        }
        // ...and within reassociation tolerance of the sequential sum.
        let seq: f64 = xs.iter().sum();
        prop_assert!((sums[0] - seq).abs() <= 1e-9 * (1.0 + seq.abs()));
    }

    #[test]
    fn par_reduce_matches_sequential_fold(
        xs in collection::vec(any::<i64>(), 0..300),
        threads in 1usize..9,
    ) {
        // Wrapping addition is associative with identity 0, so the
        // chunked reduction must equal the strict left fold exactly.
        let par = pool(threads).install(|| {
            xs.par_iter().map(|&x| x).reduce(|| 0i64, i64::wrapping_add)
        });
        let seq = xs.iter().fold(0i64, |a, &b| a.wrapping_add(b));
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn par_filter_matches_sequential(
        xs in collection::vec(-10_000i32..10_000, 0..300),
        modulus in 2i32..7,
        threads in 1usize..9,
    ) {
        let par: Vec<i32> = pool(threads).install(|| {
            xs.clone().into_par_iter().filter(|x| x % modulus == 0).collect()
        });
        let seq: Vec<i32> = xs.iter().copied().filter(|x| x % modulus == 0).collect();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn par_count_matches_sequential(
        xs in collection::vec(any::<u64>(), 0..300),
        threads in 1usize..9,
    ) {
        let par = pool(threads).install(|| xs.par_iter().filter(|x| *x % 2 == 0).count());
        let seq = xs.iter().filter(|x| *x % 2 == 0).count();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn par_chunks_matches_sequential_chunks(
        xs in collection::vec(any::<u32>(), 0..300),
        size in 1usize..17,
        threads in 1usize..9,
    ) {
        let par: Vec<Vec<u32>> =
            pool(threads).install(|| xs.par_chunks(size).map(|c| c.to_vec()).collect());
        let seq: Vec<Vec<u32>> = xs.chunks(size).map(|c| c.to_vec()).collect();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn range_pipeline_matches_sequential(
        n in 0usize..2000,
        threads in 1usize..9,
    ) {
        let par: usize = pool(threads).install(|| {
            (0..n).into_par_iter().map(|i| i * i).filter(|s| s % 3 != 0).sum()
        });
        let seq: usize = (0..n).map(|i| i * i).filter(|s| s % 3 != 0).sum();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn vec_into_par_iter_round_trips(xs in collection::vec(any::<i64>(), 0..300)) {
        let par: Vec<i64> = xs.clone().into_par_iter().collect();
        prop_assert_eq!(par, xs);
    }
}

// --- panic propagation ------------------------------------------------------

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string panic payload>")
}

#[test]
fn join_propagates_right_panic() {
    let caught = std::panic::catch_unwind(|| {
        pool(4).install(|| rayon::join(|| 1 + 1, || panic!("right side exploded")))
    });
    let payload = caught.expect_err("join must propagate the panic");
    assert!(panic_message(payload.as_ref()).contains("right side exploded"));
}

#[test]
fn join_propagates_left_panic() {
    let caught = std::panic::catch_unwind(|| {
        pool(4).install(|| rayon::join(|| panic!("left side exploded"), || 2 + 2))
    });
    let payload = caught.expect_err("join must propagate the panic");
    assert!(panic_message(payload.as_ref()).contains("left side exploded"));
}

#[test]
fn join_sequential_fallback_propagates_panic() {
    let caught = std::panic::catch_unwind(|| {
        pool(1).install(|| rayon::join(|| (), || panic!("sequential path")))
    });
    let payload = caught.expect_err("sequential join must propagate the panic");
    assert!(panic_message(payload.as_ref()).contains("sequential path"));
}

#[test]
fn scope_propagates_spawned_panic_after_joining_others() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let finished = AtomicUsize::new(0);
    let caught = std::panic::catch_unwind(|| {
        rayon::scope(|s| {
            s.spawn(|_| panic!("spawned task exploded"));
            s.spawn(|_| {
                finished.fetch_add(1, Ordering::SeqCst);
            });
            s.spawn(|_| {
                finished.fetch_add(1, Ordering::SeqCst);
            });
        })
    });
    assert!(caught.is_err(), "scope must re-raise the spawned panic");
    assert_eq!(
        finished.load(Ordering::SeqCst),
        2,
        "non-panicking tasks must still be joined"
    );
}

#[test]
fn par_iter_propagates_worker_panic() {
    let caught = std::panic::catch_unwind(|| {
        pool(4).install(|| {
            (0..100usize)
                .into_par_iter()
                .map(|i| if i == 73 { panic!("item 73") } else { i })
                .sum::<usize>()
        })
    });
    assert!(caught.is_err());
}
