//! Parallel operations on slices (`par_chunks`).

use crate::iter::ChunksIter;

/// Parallel slice views, mirroring upstream's `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    /// The underlying slice.
    fn as_parallel_slice(&self) -> &[T];

    /// Parallel iterator over non-overlapping sub-slices of length
    /// `chunk_size` (the last chunk may be shorter). Panics if
    /// `chunk_size` is zero, as upstream does.
    fn par_chunks(&self, chunk_size: usize) -> ChunksIter<'_, T> {
        assert!(chunk_size != 0, "chunk_size must not be zero");
        ChunksIter {
            slice: self.as_parallel_slice(),
            size: chunk_size,
        }
    }
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn as_parallel_slice(&self) -> &[T] {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iter::ParallelIterator;

    #[test]
    fn par_chunks_matches_sequential_chunks() {
        let xs: Vec<u32> = (0..103).collect();
        let par: Vec<Vec<u32>> = xs.par_chunks(10).map(|c| c.to_vec()).collect();
        let seq: Vec<Vec<u32>> = xs.chunks(10).map(|c| c.to_vec()).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_chunks_on_vec_via_deref() {
        let xs = vec![1.0f64; 37];
        let sums: Vec<f64> = xs.par_chunks(8).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.len(), 5);
        assert!((sums.iter().sum::<f64>() - 37.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "chunk_size")]
    fn zero_chunk_size_panics() {
        let xs = [1, 2, 3];
        let _ = xs.par_chunks(0);
    }
}
