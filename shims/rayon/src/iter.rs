//! The `par_iter` subset: sources over slices, ranges and vectors,
//! `map`/`filter` adapters, and `collect`/`sum`/`reduce`/`for_each`/
//! `count` consumers.
//!
//! # Execution and determinism model
//!
//! Every pipeline bottoms out in [`ParallelIterator::drive`]: the source
//! splits its sequence into **deterministic, ordered chunks whose
//! boundaries depend only on the sequence length** (never on the worker
//! count), each chunk is folded sequentially by one task on the
//! work-stealing executor, and the per-chunk results are combined in
//! chunk order on the calling thread. Consequently every consumer in this
//! module returns *bit-identical* results whatever the ambient thread
//! count — including floating-point reductions, whose association order
//! is fixed by the chunking. This is stronger than upstream rayon, where
//! `reduce` association varies with runtime splitting; code written
//! against the shim must not rely on that extra strength if it is ever
//! swapped for the registry crate.

use crate::exec;
use crate::registry;
use std::ops::Range;

/// Number of tasks a parallel operation is split into (at most): enough
/// over-decomposition for the work-stealing executor to balance uneven
/// chunks, independent of the worker count so chunk boundaries — and
/// therefore reduction order — never change with parallelism.
const TASK_TARGET: usize = 64;

/// Deterministic task spans of `0..len`: contiguous, in order, boundaries
/// a function of `len` alone.
fn spans(len: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunk = len.div_ceil(TASK_TARGET).max(1);
    let mut out = Vec::with_capacity(len.div_ceil(chunk));
    let mut lo = 0;
    while lo < len {
        let hi = (lo + chunk).min(len);
        out.push(lo..hi);
        lo = hi;
    }
    out
}

/// A parallel iterator: a splittable sequence plus a per-item pipeline.
///
/// The one required driver is chunk-fold ([`drive`](Self::drive));
/// adapters compose by wrapping the chunk's sequential iterator, so the
/// whole pipeline runs fused, once per item, inside each task.
pub trait ParallelIterator: Sized + Send {
    /// The element type produced by this iterator.
    type Item: Send;

    /// Number of *underlying* items before any filtering — a splitting
    /// hint, not an exact output count.
    fn len_hint(&self) -> usize;

    /// Folds every deterministic chunk of the sequence with `fold` (in
    /// parallel) and returns the per-chunk results in chunk order.
    fn drive<U, F>(self, fold: F) -> Vec<U>
    where
        U: Send,
        F: Fn(&mut dyn Iterator<Item = Self::Item>) -> U + Sync;

    /// Transforms every item with `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Keeps only the items `f` accepts (output order is preserved).
    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter { base: self, f }
    }

    /// Runs `f` on every item (no output; side effects must be
    /// synchronized by the caller as with upstream).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        self.drive(|it: &mut dyn Iterator<Item = Self::Item>| {
            for item in it {
                f(item);
            }
        });
    }

    /// Collects into `C` preserving the sequence order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sums the items: each chunk is summed sequentially, then the chunk
    /// sums are added in chunk order (deterministic for floats).
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        self.drive(|it: &mut dyn Iterator<Item = Self::Item>| it.sum::<S>())
            .into_iter()
            .sum()
    }

    /// Reduces with `op`, seeding every chunk (and the final combine)
    /// with `identity()`. `op` must be associative and `identity()` its
    /// neutral element; the association order is fixed by the chunking.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        self.drive(|it: &mut dyn Iterator<Item = Self::Item>| it.fold(identity(), &op))
            .into_iter()
            .fold(identity(), &op)
    }

    /// Counts the items surviving the pipeline.
    fn count(self) -> usize {
        self.drive(|it: &mut dyn Iterator<Item = Self::Item>| it.count())
            .into_iter()
            .sum()
    }
}

/// Conversion into a [`ParallelIterator`], mirroring upstream's trait.
pub trait IntoParallelIterator {
    /// The iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` by shared reference — blanket-implemented for every type
/// whose reference converts via [`IntoParallelIterator`], exactly like
/// upstream.
pub trait IntoParallelRefIterator<'data> {
    /// The iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type (a reference into `self`).
    type Item: Send + 'data;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoParallelIterator,
{
    type Iter = <&'data C as IntoParallelIterator>::Iter;
    type Item = <&'data C as IntoParallelIterator>::Item;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Collecting from a parallel iterator, mirroring upstream's trait.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds `Self` from the items of `iter`, in sequence order.
    fn from_par_iter<I>(iter: I) -> Self
    where
        I: ParallelIterator<Item = T>;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I>(iter: I) -> Self
    where
        I: ParallelIterator<Item = T>,
    {
        let chunks = iter.drive(|it: &mut dyn Iterator<Item = T>| it.collect::<Vec<T>>());
        let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }
}

// --- sources ---------------------------------------------------------------

/// Parallel iterator over `&[T]` (items are `&T`).
#[derive(Debug)]
pub struct SliceIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for SliceIter<'data, T> {
    type Item = &'data T;

    fn len_hint(&self) -> usize {
        self.slice.len()
    }

    fn drive<U, F>(self, fold: F) -> Vec<U>
    where
        U: Send,
        F: Fn(&mut dyn Iterator<Item = Self::Item>) -> U + Sync,
    {
        let slice = self.slice;
        let parts: Vec<&'data [T]> = spans(slice.len()).into_iter().map(|r| &slice[r]).collect();
        exec::run_ordered(parts, registry::current_num_threads(), |part| {
            fold(&mut part.iter())
        })
    }
}

impl<'data, T: Sync> IntoParallelIterator for &'data [T] {
    type Iter = SliceIter<'data, T>;
    type Item = &'data T;

    fn into_par_iter(self) -> Self::Iter {
        SliceIter { slice: self }
    }
}

impl<'data, T: Sync> IntoParallelIterator for &'data Vec<T> {
    type Iter = SliceIter<'data, T>;
    type Item = &'data T;

    fn into_par_iter(self) -> Self::Iter {
        SliceIter {
            slice: self.as_slice(),
        }
    }
}

/// Owning parallel iterator over `Vec<T>`.
#[derive(Debug)]
pub struct VecIter<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;

    fn len_hint(&self) -> usize {
        self.vec.len()
    }

    fn drive<U, F>(self, fold: F) -> Vec<U>
    where
        U: Send,
        F: Fn(&mut dyn Iterator<Item = T>) -> U + Sync,
    {
        // Split into owned chunks along the same span boundaries,
        // working from the back so each element is moved exactly once
        // (a front split would memmove the whole tail per chunk).
        let bounds = spans(self.vec.len());
        let mut rest = self.vec;
        let mut parts: Vec<Vec<T>> = Vec::with_capacity(bounds.len());
        for r in bounds.iter().rev() {
            parts.push(rest.split_off(r.start));
        }
        parts.reverse();
        exec::run_ordered(parts, registry::current_num_threads(), |part| {
            fold(&mut part.into_iter())
        })
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;
    type Item = T;

    fn into_par_iter(self) -> Self::Iter {
        VecIter { vec: self }
    }
}

/// Parallel iterator over an integer range.
#[derive(Debug)]
pub struct RangeIter<T> {
    range: Range<T>,
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Iter = RangeIter<$t>;
            type Item = $t;

            fn into_par_iter(self) -> Self::Iter {
                RangeIter { range: self }
            }
        }

        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;

            fn len_hint(&self) -> usize {
                (self.range.end as i128 - self.range.start as i128).max(0) as usize
            }

            fn drive<U, F>(self, fold: F) -> Vec<U>
            where
                U: Send,
                F: Fn(&mut dyn Iterator<Item = $t>) -> U + Sync,
            {
                // Offsets via i128: `lo + offset` stays in range for the
                // result (it is ≤ range.end) but the intermediate `as $t`
                // cast of a usize offset would truncate for long signed
                // ranges (e.g. i32::MIN..i32::MAX).
                let lo = self.range.start as i128;
                let parts: Vec<Range<$t>> = spans(self.len_hint())
                    .into_iter()
                    .map(|r| ((lo + r.start as i128) as $t)..((lo + r.end as i128) as $t))
                    .collect();
                exec::run_ordered(parts, registry::current_num_threads(), |mut part| {
                    fold(&mut part)
                })
            }
        }
    )*};
}

impl_range_par_iter!(u32, u64, usize, i32, i64);

/// Parallel iterator over non-overlapping sub-slices (see
/// [`ParallelSlice::par_chunks`](crate::slice::ParallelSlice::par_chunks)).
#[derive(Debug)]
pub struct ChunksIter<'data, T> {
    pub(crate) slice: &'data [T],
    pub(crate) size: usize,
}

impl<'data, T: Sync> ParallelIterator for ChunksIter<'data, T> {
    type Item = &'data [T];

    fn len_hint(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn drive<U, F>(self, fold: F) -> Vec<U>
    where
        U: Send,
        F: Fn(&mut dyn Iterator<Item = Self::Item>) -> U + Sync,
    {
        let (slice, size) = (self.slice, self.size);
        // Task spans are whole numbers of chunks so sub-slice boundaries
        // match `slice.chunks(size)` exactly.
        let parts: Vec<&'data [T]> = spans(slice.len().div_ceil(size))
            .into_iter()
            .map(|r| &slice[r.start * size..(r.end * size).min(slice.len())])
            .collect();
        exec::run_ordered(parts, registry::current_num_threads(), |part| {
            fold(&mut part.chunks(size))
        })
    }
}

// --- adapters --------------------------------------------------------------

/// A parallel iterator transforming items with a closure; see
/// [`ParallelIterator::map`].
#[derive(Debug)]
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Sync + Send,
    R: Send,
{
    type Item = R;

    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }

    fn drive<U, G>(self, fold: G) -> Vec<U>
    where
        U: Send,
        G: Fn(&mut dyn Iterator<Item = R>) -> U + Sync,
    {
        let f = self.f;
        self.base
            .drive(move |it: &mut dyn Iterator<Item = I::Item>| fold(&mut it.map(&f)))
    }
}

/// A parallel iterator dropping items a predicate rejects; see
/// [`ParallelIterator::filter`].
#[derive(Debug)]
pub struct Filter<I, F> {
    base: I,
    f: F,
}

impl<I, F> ParallelIterator for Filter<I, F>
where
    I: ParallelIterator,
    F: Fn(&I::Item) -> bool + Sync + Send,
{
    type Item = I::Item;

    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }

    fn drive<U, G>(self, fold: G) -> Vec<U>
    where
        U: Send,
        G: Fn(&mut dyn Iterator<Item = I::Item>) -> U + Sync,
    {
        let f = self.f;
        self.base
            .drive(move |it: &mut dyn Iterator<Item = I::Item>| fold(&mut it.filter(&f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_cover_in_order() {
        for len in [0usize, 1, 7, 63, 64, 65, 1000, 64 * 64 + 3] {
            let s = spans(len);
            let mut expect = 0;
            for r in &s {
                assert_eq!(r.start, expect);
                assert!(r.end > r.start);
                expect = r.end;
            }
            assert_eq!(expect, len);
            assert!(s.len() <= TASK_TARGET.max(1));
        }
    }

    #[test]
    fn slice_map_collect_in_order() {
        let xs: Vec<i64> = (0..500).collect();
        let out: Vec<i64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_sum_matches_closed_form() {
        let n = 10_000u64;
        let total: u64 = (0..n).into_par_iter().sum();
        assert_eq!(total, n * (n - 1) / 2);
    }

    #[test]
    fn filter_preserves_order() {
        let out: Vec<usize> = (0..100usize)
            .into_par_iter()
            .filter(|x| x % 3 == 0)
            .collect();
        assert_eq!(out, (0..100).filter(|x| x % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn vec_into_par_iter_owns_items() {
        let xs: Vec<String> = (0..130).map(|i| format!("item-{i}")).collect();
        let out: Vec<String> = xs.clone().into_par_iter().collect();
        assert_eq!(out, xs);
    }

    #[test]
    fn float_sum_is_thread_count_invariant() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 1e-3).collect();
        let sums: Vec<f64> = [1usize, 2, 3, 8]
            .iter()
            .map(|&t| {
                crate::ThreadPoolBuilder::new()
                    .num_threads(t)
                    .build()
                    .unwrap()
                    .install(|| xs.par_iter().sum::<f64>())
            })
            .collect();
        assert!(sums.windows(2).all(|w| w[0].to_bits() == w[1].to_bits()));
    }

    #[test]
    fn reduce_uses_identity() {
        let max = (0..1000u64)
            .into_par_iter()
            .map(|x| (x * 37) % 1000)
            .reduce(|| 0, u64::max);
        assert_eq!(max, 999);
        let empty = (0..0u64).into_par_iter().reduce(|| 7, u64::max);
        assert_eq!(empty, 7);
    }

    #[test]
    fn count_after_filter() {
        let n = (0..1234usize)
            .into_par_iter()
            .filter(|x| x % 2 == 0)
            .count();
        assert_eq!(n, 617);
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let acc = AtomicU64::new(0);
        (0..300u64).into_par_iter().for_each(|x| {
            acc.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(acc.load(Ordering::Relaxed), 299 * 300 / 2);
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)] // empty range is the case under test
    fn signed_range_endpoints() {
        let out: Vec<i32> = (-5i32..5).into_par_iter().collect();
        assert_eq!(out, (-5..5).collect::<Vec<_>>());
        assert_eq!((5i32..-5).into_par_iter().count(), 0);
    }
}
