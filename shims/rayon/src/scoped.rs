//! Potentially-parallel `join` and scoped `spawn`, on `std::thread::scope`.

/// Runs `a` and `b`, potentially in parallel, and returns both results.
///
/// With an ambient thread count of 1 both closures run sequentially on
/// the calling thread; otherwise `b` runs on a scoped thread while the
/// caller runs `a`. A panic in either closure propagates to the caller
/// after both have been joined, as with upstream.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if crate::current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let handle = s.spawn(b);
        let ra = a();
        match handle.join() {
            Ok(rb) => (ra, rb),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

/// A scope in which borrowing tasks can be spawned; every spawned task is
/// joined before [`scope`] returns.
///
/// Shim caveat: upstream's `Scope<'scope>` carries a single lifetime;
/// this shim mirrors `std`/`crossbeam`'s two-lifetime shape
/// (`'scope` for the scope itself, `'env` for borrowed data), which
/// accepts the same call sites.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from the enclosing environment. The
    /// task receives the scope again so it can spawn further tasks.
    ///
    /// Shim caveat: each spawned task gets its own scoped OS thread
    /// (upstream multiplexes tasks over pool workers). Counts are small
    /// in this workspace — the data-parallel sweeps go through the
    /// chunked work-stealing executor instead.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Creates a scope for spawning borrowing tasks and blocks until the
/// scope body *and* every task spawned within it have completed. Returns
/// the body's value; panics from tasks propagate after all are joined.
pub fn scope<'env, OP, R>(op: OP) -> R
where
    OP: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| op(&Scope { inner: s }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 6 * 7, || "right".len());
        assert_eq!(a, 42);
        assert_eq!(b, 5);
    }

    #[test]
    fn join_borrows_shared_state() {
        let xs: Vec<u64> = (0..1000).collect();
        let (lo, hi) = join(
            || xs[..500].iter().sum::<u64>(),
            || xs[500..].iter().sum::<u64>(),
        );
        assert_eq!(lo + hi, 999 * 1000 / 2);
    }

    #[test]
    fn scope_joins_all_spawned_tasks() {
        let hits = AtomicUsize::new(0);
        let out = scope(|s| {
            for _ in 0..5 {
                s.spawn(|inner| {
                    // Nested spawn through the scope handle.
                    inner.spawn(|_| {
                        hits.fetch_add(1, Ordering::SeqCst);
                    });
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
            "body"
        });
        assert_eq!(out, "body");
        assert_eq!(hits.load(Ordering::SeqCst), 10);
    }
}
