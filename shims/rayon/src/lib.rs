//! Offline placeholder for `rayon`.
//!
//! Reserved in `workspace.dependencies` so future scaling PRs have a
//! stable dependency name to grow into; the experiment harness currently
//! parallelizes with `crossbeam` scoped threads instead. When data
//! parallelism lands, implement the needed `par_iter` subset here (or
//! swap the path for the real crate once the build has registry access).

#![forbid(unsafe_code)]
