//! Offline shim for `rayon`: a safe, work-stealing data-parallelism
//! subset.
//!
//! The build environment has no registry access, so this workspace
//! vendors the subset of rayon's API its workload layers use. Parallel
//! pipelines are split into deterministic chunks (boundaries depend only
//! on sequence length, never on the worker count) and executed by a
//! work-stealing scheduler: per-worker deques, LIFO local pops, FIFO
//! steals from victims. Results are written through disjoint per-task
//! slots and recombined in chunk order.
//!
//! # Supported API subset
//!
//! * **Global pool configuration** — [`ThreadPoolBuilder`] (`new`,
//!   `num_threads`, `build`, `build_global`), [`ThreadPool`] (`install`,
//!   `current_num_threads`, `join`, `scope`, `spawn`),
//!   [`current_num_threads`], and the `RAYON_NUM_THREADS` environment
//!   variable. A persistent global worker pool is started lazily by the
//!   first [`spawn`] call.
//! * **Fork–join** — [`join`], [`scope`] / [`Scope::spawn`], [`spawn`].
//! * **Parallel iterators** — `par_iter` over slices and `Vec`
//!   references, `into_par_iter` over `Vec<T>` and integer ranges
//!   (`u32`/`u64`/`usize`/`i32`/`i64`), `par_chunks` over slices, with
//!   the `map` / `filter` adapters and the `collect` (into `Vec`) /
//!   `sum` / `reduce` / `for_each` / `count` consumers — all via
//!   [`prelude`].
//!
//! # Determinism guarantee (stronger than upstream)
//!
//! Every consumer returns bit-identical results for every thread count,
//! including floating-point `sum` / `reduce`, because chunk boundaries
//! and the combination order are functions of the input length alone.
//! The workspace's sequential-equivalence suite
//! (`tests/parallel_determinism.rs` at the repo root) and this crate's
//! property tests enforce it. Upstream rayon does *not* promise this for
//! non-associative reductions; code must stay correct under upstream's
//! weaker contract if the shim is ever swapped for the registry crate by
//! editing `[workspace.dependencies]`.
//!
//! # Upstream-compat caveats
//!
//! * Borrowed (scoped) work cannot run on persistent workers without
//!   `unsafe` lifetime erasure, which this crate forbids: `join`,
//!   `scope` and the parallel iterators spawn *scoped* workers per
//!   top-level call (bounded by the configured thread count) instead of
//!   re-using pool threads. Chunked over-decomposition amortizes the
//!   spawn cost; `threads == 1` runs inline with zero spawns.
//! * [`Scope::spawn`] uses one scoped OS thread per task and the shim's
//!   `Scope` carries `std`-style `'scope`/`'env` lifetimes (upstream
//!   multiplexes tasks over pool workers and uses a single lifetime).
//! * [`ThreadPool::install`] pins the thread count for parallel calls
//!   made *on the calling thread*; nested parallelism started from
//!   inside worker closures sees the global count instead of the pool's.
//! * A panicking [`spawn`] job is contained and its worker survives
//!   (upstream aborts the process by default).
//! * Unsupported surface (non-exhaustive): `par_iter_mut`, `par_sort*`,
//!   `flat_map`/`fold`/`try_*` adapters, `enumerate`/`zip` indexed
//!   adapters, `collect` into non-`Vec` collections, `par_bridge`.
//!
//! If a future environment has network access, swap this shim for the
//! real crate by editing `[workspace.dependencies]` only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
pub mod iter;
mod registry;
mod scoped;
pub mod slice;

pub use registry::{
    current_num_threads, spawn, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder,
};
pub use scoped::{join, scope, Scope};

/// Everything a `use rayon::prelude::*;` call site expects.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
    pub use crate::slice::ParallelSlice;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn prelude_compiles_a_typical_pipeline() {
        let xs: Vec<u64> = (0..256).collect();
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let doubled: Vec<u64> = pool.install(|| xs.par_iter().map(|&x| x * 2).collect());
        assert_eq!(doubled.len(), 256);
        assert_eq!(doubled[255], 510);
    }
}
