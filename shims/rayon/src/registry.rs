//! The lazily-initialized global thread pool and its configuration
//! surface: [`ThreadPoolBuilder`], [`ThreadPool`], [`current_num_threads`]
//! and the `'static`-job [`spawn`] entry point.
//!
//! Two kinds of state live here:
//!
//! * the **global thread count** — resolved once from
//!   `ThreadPoolBuilder::build_global`, the `RAYON_NUM_THREADS`
//!   environment variable, or `std::thread::available_parallelism`, in
//!   that priority order; and
//! * the **persistent worker pool** — started lazily on the first
//!   [`spawn`] call, it executes boxed `'static` jobs for the rest of the
//!   process lifetime.
//!
//! Borrowed (scoped) parallel work — `join`, `scope`, the parallel
//! iterators — cannot run on persistent workers without `unsafe` lifetime
//! erasure, which this crate forbids; those operations spawn scoped
//! workers per call instead (see the crate docs for the caveat) but obey
//! the thread count configured here, including per-call overrides
//! installed with [`ThreadPool::install`].

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, OnceLock};

/// Thread count fixed by `build_global` or first use; `OnceLock` gives
/// rayon's semantics that later `build_global` calls fail.
static GLOBAL_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Per-thread override pushed by [`ThreadPool::install`] (0 = none).
    static INSTALLED: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Returns the number of worker threads parallel operations use on the
/// current thread: the innermost [`ThreadPool::install`] override if one
/// is active, otherwise the global pool's thread count (initializing the
/// global configuration on first use, exactly like upstream).
pub fn current_num_threads() -> usize {
    let installed = INSTALLED.with(Cell::get);
    if installed > 0 {
        return installed;
    }
    *GLOBAL_THREADS.get_or_init(default_threads)
}

/// Error returned when a thread pool cannot be built (for this shim:
/// only when the global pool is already initialized).
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    msg: &'static str,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builds [`ThreadPool`]s, mirroring rayon's builder surface for the
/// options this workspace uses.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default configuration.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Pins the worker count; `0` (the default) means "resolve from the
    /// environment / available parallelism".
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    fn resolve(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            default_threads()
        }
    }

    /// Builds a pool handle whose thread count callers pin via
    /// [`ThreadPool::install`].
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.resolve(),
        })
    }

    /// Fixes the global pool's thread count. Fails if the global pool was
    /// already initialized — explicitly or lazily by a prior parallel
    /// call, matching upstream behaviour.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let n = self.resolve();
        GLOBAL_THREADS.set(n).map_err(|_| ThreadPoolBuildError {
            msg: "the global thread pool has already been initialized",
        })
    }
}

/// A handle pinning a worker count for the operations run under
/// [`install`](ThreadPool::install).
#[derive(Debug, Clone)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count as the ambient
    /// parallelism: every parallel operation `op` performs (directly on
    /// this thread) uses `self.current_num_threads()` workers.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED.with(|c| c.set(self.0));
            }
        }
        let prev = INSTALLED.with(|c| {
            let prev = c.get();
            c.set(self.threads);
            prev
        });
        let _restore = Restore(prev);
        op()
    }

    /// The worker count this pool was built with.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// [`crate::join`] under this pool's thread count.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        self.install(|| crate::join(a, b))
    }

    /// [`crate::scope`] under this pool's thread count.
    pub fn scope<'env, OP, R>(&self, op: OP) -> R
    where
        OP: for<'scope> FnOnce(&crate::Scope<'scope, 'env>) -> R,
    {
        self.install(|| crate::scope(op))
    }

    /// Queues a `'static` job. Shim caveat: the job runs on the shared
    /// persistent worker pool, not on workers private to this handle.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        spawn(f)
    }
}

// --- the persistent 'static-job pool --------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

struct SpawnPool {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

fn spawn_pool() -> &'static SpawnPool {
    static POOL: OnceLock<SpawnPool> = OnceLock::new();
    static WORKERS: OnceLock<()> = OnceLock::new();
    let pool = POOL.get_or_init(|| SpawnPool {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
    });
    WORKERS.get_or_init(|| {
        let n = *GLOBAL_THREADS.get_or_init(default_threads);
        for i in 0..n {
            std::thread::Builder::new()
                .name(format!("rayon-shim-{i}"))
                .spawn(move || worker(pool))
                .expect("spawning global pool worker");
        }
    });
    pool
}

fn worker(pool: &'static SpawnPool) {
    loop {
        let job = {
            let mut queue = pool
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = pool
                    .available
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // Upstream aborts the process when a spawned job panics; the shim
        // contains the panic and keeps the worker alive (documented
        // divergence — the workspace treats job panics as test failures
        // through other channels).
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

/// Queues `f` on the lazily-started persistent global worker pool. The
/// call returns immediately; there is no way to wait for the job other
/// than application-level signalling (as with upstream `rayon::spawn`).
pub fn spawn<F>(f: F)
where
    F: FnOnce() + Send + 'static,
{
    let pool = spawn_pool();
    lock_queue(pool).push_back(Box::new(f));
    pool.available.notify_one();
}

fn lock_queue(pool: &SpawnPool) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
    pool.queue
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn install_pins_and_restores() {
        let outer = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inner = pool.install(current_num_threads);
        assert_eq!(inner, 3);
        assert_eq!(pool.current_num_threads(), 3);
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn installs_nest() {
        let p2 = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let p5 = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        p2.install(|| {
            assert_eq!(current_num_threads(), 2);
            p5.install(|| assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 2);
        });
    }

    #[test]
    fn install_restores_on_panic() {
        let before = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| panic!("boom"))
        }));
        assert!(caught.is_err());
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn second_build_global_fails() {
        // Whichever of the two calls runs after the global configuration
        // is fixed (possibly lazily, by an earlier test) must fail.
        let first = ThreadPoolBuilder::new().num_threads(1).build_global();
        let second = ThreadPoolBuilder::new().num_threads(2).build_global();
        assert!(first.is_err() || second.is_err());
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn spawned_jobs_run() {
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let hits = Arc::clone(&hits);
            spawn(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        for _ in 0..500 {
            if hits.load(Ordering::SeqCst) == 8 {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        panic!("spawned jobs did not complete in 5s");
    }

    #[test]
    fn spawned_panic_does_not_kill_the_pool() {
        let done = Arc::new(AtomicUsize::new(0));
        spawn(|| panic!("contained"));
        let d = Arc::clone(&done);
        spawn(move || {
            d.store(1, Ordering::SeqCst);
        });
        for _ in 0..500 {
            if done.load(Ordering::SeqCst) == 1 {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        panic!("pool stopped executing after a panicking job");
    }
}
