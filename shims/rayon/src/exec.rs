//! The scoped work-stealing executor behind every parallel operation.
//!
//! A parallel operation arrives as a vector of pre-split task inputs (one
//! per deterministic chunk of the underlying sequence). Tasks are dealt
//! round-robin into per-worker deques; each worker pops from the *back*
//! of its own deque (LIFO, cache-warm) and, when that runs dry, steals
//! from the *front* of a victim's deque (FIFO, the oldest — and therefore
//! least cache-relevant — work). Because every task exists before the
//! workers start and none is ever re-queued, a worker may exit as soon as
//! every deque reads empty.
//!
//! Results are written through **disjoint `&mut` slots** (one per task,
//! obtained by splitting a single results vector), so no lock is held
//! while a result is stored and the output order is the chunk order — a
//! property the determinism guarantees of the workspace rely on.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard};

/// One unit of work: the chunk input plus the slot its result lands in.
struct Task<'slots, In, U> {
    input: In,
    slot: &'slots mut Option<U>,
}

fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A worker that panicked mid-task poisons its deque; the remaining
    // tasks are still intact, so treat the lock as usable (the panic
    // itself propagates when the scope joins).
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs `work` over every input on up to `threads` workers and returns
/// the results in input order. Sequential (zero threads spawned) when a
/// single worker suffices, which also makes `threads == 1` a bit-exact
/// reference execution for any other worker count.
pub(crate) fn run_ordered<In, U, F>(inputs: Vec<In>, threads: usize, work: F) -> Vec<U>
where
    In: Send,
    U: Send,
    F: Fn(In) -> U + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.clamp(1, n);
    if workers == 1 {
        return inputs.into_iter().map(work).collect();
    }

    let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
    {
        let mut deques: Vec<VecDeque<Task<'_, In, U>>> =
            (0..workers).map(|_| VecDeque::new()).collect();
        for (i, (input, slot)) in inputs.into_iter().zip(slots.iter_mut()).enumerate() {
            deques[i % workers].push_back(Task { input, slot });
        }
        let deques: Vec<Mutex<VecDeque<Task<'_, In, U>>>> =
            deques.into_iter().map(Mutex::new).collect();

        std::thread::scope(|scope| {
            for me in 0..workers {
                let deques = &deques;
                let work = &work;
                scope.spawn(move || worker_loop(me, deques, work));
            }
        });
    }

    slots
        .into_iter()
        .map(|s| s.expect("executor ran every task"))
        .collect()
}

fn worker_loop<In, U, F>(me: usize, deques: &[Mutex<VecDeque<Task<'_, In, U>>>], work: &F)
where
    F: Fn(In) -> U,
{
    'run: loop {
        // Own deque first (back = most recently dealt).
        if let Some(task) = lock(&deques[me]).pop_back() {
            *task.slot = Some(work(task.input));
            continue 'run;
        }
        // Steal the oldest task from the first non-empty victim.
        for offset in 1..deques.len() {
            let victim = (me + offset) % deques.len();
            if let Some(task) = lock(&deques[victim]).pop_front() {
                *task.slot = Some(work(task.input));
                continue 'run;
            }
        }
        // Every deque is empty and no task is ever re-queued: done.
        return;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let out = run_ordered((0..257).collect(), 8, |i: i32| i * 2);
        assert_eq!(out, (0..257).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let inputs: Vec<u64> = (0..100).collect();
        let seq = run_ordered(inputs.clone(), 1, |i| i * i);
        let par = run_ordered(inputs, 7, |i| i * i);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = run_ordered(Vec::<u8>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits = AtomicUsize::new(0);
        let out = run_ordered((0..64).collect(), 5, |i: usize| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            run_ordered((0..16).collect(), 4, |i: usize| {
                if i == 9 {
                    panic!("task nine exploded");
                }
                i
            })
        });
        assert!(caught.is_err());
    }
}
