//! Offline shim for `crossbeam`.
//!
//! Provides `crossbeam::scope` / `crossbeam::thread::scope` on top of
//! `std::thread::scope`. One behavioural difference: when a spawned
//! thread panics, std's scope re-raises the panic in the parent instead
//! of returning `Err` — the workspace treats both as fatal, so the
//! difference is unobservable in practice.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod thread {
    //! Scoped threads.

    /// A scope handle; spawned closures receive a reference to it so they
    /// can spawn further threads, mirroring crossbeam's API.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all of them are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let out = super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            7
        })
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let hits = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
