//! Offline shim for `proptest`.
//!
//! The build environment has no registry access, so this workspace vendors
//! a minimal property-testing harness exposing the subset of the proptest
//! API the test suites use: the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `boxed`, range and tuple strategies,
//! [`collection::vec`], [`strategy::Just`], `any::<T>()`, the
//! [`proptest!`] / [`prop_oneof!`] / `prop_assert*!` macros,
//! [`ProptestConfig`] and [`test_runner::TestCaseError`].
//!
//! Differences from upstream: every case draws from its own
//! deterministic seed (derived from the test name and case index, so
//! runs are identical across machines), a failing case panics with a
//! **self-contained reproduction** — the error, the minimal inputs and
//! a `FTSCHED_PROPTEST_SEED=<seed>` incantation replaying exactly that
//! case — and shrinking is linear and minimal: integer strategies step
//! toward their lower bound, `collection::vec` drops elements, tuples
//! shrink component-wise. `prop_map`/`prop_flat_map` outputs do not
//! shrink (the shim keeps no inverse).

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

#[doc(hidden)]
pub use rand;

pub use test_runner::{ProptestConfig, TestCaseError};

/// Everything the test suites import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// FNV-1a hash of a test name, used as its deterministic base seed.
#[doc(hidden)]
pub fn seed_of(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            // All arguments bundle into one tuple strategy so the runner
            // can shrink the whole input vector as a unit (draw order
            // matches the per-argument order, left to right).
            let __strat = ($($strat,)+);
            $crate::test_runner::run(
                ::std::stringify!($name),
                &__config,
                &__strat,
                &|($($arg,)+)| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                },
                &|($($arg,)+)| ::std::format!(
                    ::std::concat!($("\n  ", ::std::stringify!($arg), " = {:?}"),+),
                    $(&$arg),+
                ),
            );
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
}

/// Fails the current proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current proptest case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            ::std::stringify!($left),
            ::std::stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Fails the current proptest case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            ::std::stringify!($left),
            ::std::stringify!($right),
            __l
        );
    }};
}

/// Uniformly picks one of the listed strategies per sample.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
