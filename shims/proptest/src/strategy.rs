//! Strategies: composable descriptions of how to draw random values.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for sampling values of an associated type.
pub trait Strategy {
    /// The type of the sampled values.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Post-processes samples with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each sample.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut StdRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (behind [`crate::prop_oneof!`]).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds the union; panics on an empty list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union(options)
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws a value from the type's full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the entire domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
