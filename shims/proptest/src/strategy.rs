//! Strategies: composable descriptions of how to draw random values.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for sampling values of an associated type.
pub trait Strategy {
    /// The type of the sampled values. `Clone` is required so the runner
    /// can re-run a failing body against shrink candidates.
    type Value: Debug + Clone;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Proposes simpler candidates for a failing `value`, simplest
    /// first. The runner adopts the first candidate that still fails and
    /// repeats, so a linear candidate list yields a linear shrink. The
    /// default (no candidates) disables shrinking for the strategy;
    /// integer ranges, `any` over integers, tuples and
    /// [`crate::collection::vec`] override it.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Post-processes samples with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug + Clone,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each sample.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe mirror of [`Strategy`] behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_sample(&self, rng: &mut StdRng) -> T;
    fn dyn_shrink(&self, value: &T) -> Vec<T>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_sample(&self, rng: &mut StdRng) -> S::Value {
        self.sample(rng)
    }

    fn dyn_shrink(&self, value: &S::Value) -> Vec<S::Value> {
        self.shrink(value)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug + Clone> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        self.0.dyn_sample(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        self.0.dyn_shrink(value)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug + Clone,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (behind [`crate::prop_oneof!`]).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds the union; panics on an empty list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union(options)
    }
}

impl<T: Debug + Clone> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].sample(rng)
    }
}

/// Shrink candidates for an integer `v` toward `lo`, simplest first:
/// the floor itself, the halfway point, then one step down. Midpoints
/// are computed in `i128` so no lo/v pair can overflow.
macro_rules! int_toward {
    ($t:ty, $lo:expr, $v:expr) => {{
        let (lo, v) = ($lo, $v);
        let mut out: Vec<$t> = Vec::new();
        if v > lo {
            out.push(lo);
            let mid = ((lo as i128 + v as i128) / 2) as $t;
            if mid != lo && mid != v {
                out.push(mid);
            }
            if v - 1 != lo {
                out.push(v - 1);
            }
        }
        out
    }};
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, v: &$t) -> Vec<$t> {
                int_toward!($t, self.start, *v)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, v: &$t) -> Vec<$t> {
                int_toward!($t, *self.start(), *v)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Float ranges sample but do not shrink (the shim's shrinker is
// integer/Vec only).
impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut t = value.clone();
                        t.$idx = cand;
                        out.push(t);
                    }
                )+
                out
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + Debug + Clone {
    /// Draws a value from the type's full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;

    /// Shrink candidates toward the type's simplest value.
    fn shrink_value(_value: &Self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_arbitrary_unsigned {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen()
            }

            fn shrink_value(v: &$t) -> Vec<$t> {
                int_toward!($t, 0, *v)
            }
        }
    )*};
}
impl_arbitrary_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_signed {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen()
            }

            fn shrink_value(v: &$t) -> Vec<$t> {
                let v = *v;
                let mut out: Vec<$t> = Vec::new();
                if v != 0 {
                    out.push(0);
                    let half = v / 2; // truncation moves toward zero
                    if half != 0 {
                        out.push(half);
                    }
                    let step = if v > 0 { v - 1 } else { v + 1 };
                    if step != 0 && step != half {
                        out.push(step);
                    }
                }
                out
            }
        }
    )*};
}
impl_arbitrary_signed!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }

    fn shrink_value(v: &bool) -> Vec<bool> {
        if *v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.gen()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink_value(value)
    }
}

/// A strategy over the entire domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
