//! Test-runner configuration and case-level errors.

use std::fmt;

/// Per-`proptest!` configuration (only `cases` is honoured by the shim).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single proptest case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was falsified.
    Fail(String),
    /// The inputs were rejected (unused by the shim, kept for API parity).
    Reject(String),
}

impl TestCaseError {
    /// A falsification with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// An input rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}
