//! Test-runner configuration, case-level errors and the case loop
//! itself (sampling, failure capture, shrinking, reporting).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Per-`proptest!` configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Cap on body re-runs spent shrinking one failing case.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 128,
        }
    }
}

/// Why a single proptest case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was falsified.
    Fail(String),
    /// The inputs were rejected (unused by the shim, kept for API parity).
    Reject(String),
}

impl TestCaseError {
    /// A falsification with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// An input rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// The environment variable that replays one recorded case seed instead
/// of the test's full random sweep.
pub const REPLAY_ENV: &str = "FTSCHED_PROPTEST_SEED";

/// splitmix64-style derivation of one case's seed from the test's base
/// seed. Every case is an independent, individually replayable stream.
pub fn case_seed(base: u64, case: u32) -> u64 {
    let mut z = base.wrapping_add((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `body` against a sampled value, converting a panic inside the
/// body into a [`TestCaseError`] so shrinking and reporting see one
/// failure shape.
fn outcome<V>(
    body: &dyn Fn(V) -> Result<(), TestCaseError>,
    value: V,
) -> Result<(), TestCaseError> {
    match catch_unwind(AssertUnwindSafe(|| body(value))) {
        Ok(res) => res,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "body panicked".into());
            Err(TestCaseError::Fail(format!("panic: {msg}")))
        }
    }
}

/// The case loop behind the [`crate::proptest!`] macro: samples
/// `config.cases` values (or replays one seed from
/// [`REPLAY_ENV`]), and on the first failure shrinks linearly and
/// panics with a self-contained reproduction — the failing error, the
/// minimal inputs and the exact seed to replay them.
pub fn run<S: Strategy>(
    name: &str,
    config: &ProptestConfig,
    strat: &S,
    body: &dyn Fn(S::Value) -> Result<(), TestCaseError>,
    render: &dyn Fn(S::Value) -> String,
) {
    if let Ok(raw) = std::env::var(REPLAY_ENV) {
        let seed: u64 = raw
            .parse()
            .unwrap_or_else(|_| panic!("{REPLAY_ENV} must be a u64, got `{raw}`"));
        run_case(name, config, strat, body, render, seed, 0, 1);
        return;
    }
    let base = crate::seed_of(name);
    for case in 0..config.cases {
        run_case(
            name,
            config,
            strat,
            body,
            render,
            case_seed(base, case),
            case,
            config.cases,
        );
    }
}

#[allow(clippy::too_many_arguments)] // internal: one call site, the macro
fn run_case<S: Strategy>(
    name: &str,
    config: &ProptestConfig,
    strat: &S,
    body: &dyn Fn(S::Value) -> Result<(), TestCaseError>,
    render: &dyn Fn(S::Value) -> String,
    seed: u64,
    case: u32,
    cases: u32,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let sampled = strat.sample(&mut rng);
    let first_err = match outcome(body, sampled.clone()) {
        Ok(()) => return,
        Err(e) => e,
    };

    // Linear shrink: adopt the first candidate that still fails, repeat
    // until no candidate fails or the iteration budget is spent.
    let mut current = sampled;
    let mut steps = 0u32;
    'outer: while steps < config.max_shrink_iters {
        for cand in strat.shrink(&current) {
            steps += 1;
            if outcome(body, cand.clone()).is_err() {
                current = cand;
                continue 'outer;
            }
            if steps >= config.max_shrink_iters {
                break;
            }
        }
        break;
    }
    let final_err = outcome(body, current.clone()).err().unwrap_or(first_err);

    panic!(
        "proptest `{name}` case {}/{cases} failed: {final_err}\n\
         minimal failing inputs (after {steps} shrink run(s)):{}\n\
         reproduce with: {REPLAY_ENV}={seed} cargo test {name}",
        case + 1,
        render(current),
    );
}
