//! Collection strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec`s with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }

    /// Length-wise shrinking: the declared minimum length, the first
    /// half, then all-but-last — never below the strategy's own length
    /// floor, so candidates stay inside the sampled domain.
    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let n = v.len();
        let mut out: Vec<Vec<S::Value>> = Vec::new();
        if n <= self.size.lo {
            return out;
        }
        out.push(v[..self.size.lo].to_vec());
        let half = (n / 2).max(self.size.lo);
        if half < n && half != self.size.lo {
            out.push(v[..half].to_vec());
        }
        if n - 1 != self.size.lo && n - 1 != half {
            out.push(v[..n - 1].to_vec());
        }
        out
    }
}
