//! The shim's failure contract: a falsified property panics with a
//! self-contained reproduction (error, minimal inputs, replay seed),
//! and the linear shrinker walks integers toward their lower bound and
//! `Vec`s toward their length floor.

use proptest::prelude::*;

proptest! {
    // No #[test] attribute: these are driven manually through
    // catch_unwind below so the suite can inspect the panic report.
    fn ints_shrink_to_boundary(x in 0u32..1000) {
        prop_assert!(x < 17);
    }

    fn vecs_shrink_to_length_floor(v in collection::vec(0u32..10, 0..50)) {
        prop_assert!(v.len() < 3);
    }

    fn vec_floor_is_respected(v in collection::vec(0u32..10, 2..50)) {
        prop_assert!(v.len() >= 2, "candidate below the declared floor");
        prop_assert!(v.len() < 4);
    }

    fn panics_are_captured(x in 0u64..100) {
        assert!(x < 1, "plain assert, not prop_assert");
    }

    fn tuples_shrink_componentwise(p in (0u32..100, 0u32..100)) {
        prop_assert!(p.0 + p.1 < 5);
    }
}

fn failure_message(f: fn()) -> String {
    let payload = std::panic::catch_unwind(f).expect_err("property must fail");
    *payload.downcast::<String>().expect("panic! message")
}

#[test]
fn report_is_self_contained() {
    let msg = failure_message(ints_shrink_to_boundary);
    assert!(msg.contains("proptest `ints_shrink_to_boundary`"), "{msg}");
    assert!(msg.contains("minimal failing inputs"), "{msg}");
    assert!(msg.contains("FTSCHED_PROPTEST_SEED="), "{msg}");
    // Linear shrinking converges to the smallest falsifying integer.
    assert!(msg.contains("x = 17"), "{msg}");
}

#[test]
fn vec_shrinks_to_minimal_length() {
    let msg = failure_message(vecs_shrink_to_length_floor);
    // Smallest falsifying length is 3 elements.
    let inputs = msg
        .split("minimal failing inputs")
        .nth(1)
        .expect("inputs section");
    let commas = inputs
        .split('[')
        .nth(1)
        .and_then(|s| s.split(']').next())
        .expect("rendered vec")
        .matches(',')
        .count();
    assert_eq!(commas, 2, "expected a 3-element vec, got:{msg}");
}

#[test]
fn vec_shrinking_respects_the_length_floor() {
    // The body itself asserts no candidate dips below the floor; the
    // report's minimal case is the smallest falsifying length, 4.
    let msg = failure_message(vec_floor_is_respected);
    assert!(msg.contains("FTSCHED_PROPTEST_SEED="), "{msg}");
    assert!(!msg.contains("below the declared floor"), "{msg}");
}

#[test]
fn body_panics_are_reported_with_repro() {
    let msg = failure_message(panics_are_captured);
    assert!(msg.contains("panic: plain assert"), "{msg}");
    assert!(msg.contains("FTSCHED_PROPTEST_SEED="), "{msg}");
    // Shrinks through the panic path too: 1 is the boundary.
    assert!(msg.contains("x = 1"), "{msg}");
}

#[test]
fn tuples_reach_a_minimal_pair() {
    let msg = failure_message(tuples_shrink_componentwise);
    // Component-wise shrinking lands on a + b == 5 with one component
    // at its floor (which one depends on the draw).
    assert!(
        msg.contains("= (0, 5)") || msg.contains("= (5, 0)"),
        "{msg}"
    );
}

proptest! {
    #[test]
    fn passing_properties_still_pass(x in 0u64..50, v in collection::vec(0i32..10, 0..8)) {
        prop_assert!(x < 50);
        prop_assert!(v.len() < 8);
    }
}
