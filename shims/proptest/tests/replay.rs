//! Seed replay: the `FTSCHED_PROPTEST_SEED` incantation printed in a
//! failure report re-runs exactly the recorded case. This lives in its
//! own test binary (single #[test]) because the replay variable is
//! process-global.

use proptest::prelude::*;
use proptest::test_runner::REPLAY_ENV;

proptest! {
    fn always_fails_somewhere(x in 0u64..1_000_000) {
        prop_assert!(x < 3);
    }
}

fn failure_message() -> String {
    let payload = std::panic::catch_unwind(always_fails_somewhere).expect_err("must fail");
    *payload.downcast::<String>().expect("panic! message")
}

#[test]
fn printed_seed_replays_the_same_case() {
    // One #[test] driving every step sequentially: no other test in
    // this binary races the environment variable.
    std::env::remove_var(REPLAY_ENV);
    let original = failure_message();
    let seed = original
        .split(&format!("{REPLAY_ENV}="))
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .expect("report carries a replay seed")
        .to_string();
    seed.parse::<u64>().expect("seed is a u64");

    // Replaying the recorded seed reproduces the identical minimal case.
    std::env::set_var(REPLAY_ENV, &seed);
    let replayed = failure_message();
    std::env::remove_var(REPLAY_ENV);

    let inputs = |msg: &str| {
        msg.split("minimal failing inputs")
            .nth(1)
            .expect("inputs section")
            .to_string()
    };
    assert_eq!(inputs(&original), inputs(&replayed));
    assert!(replayed.contains(&format!("{REPLAY_ENV}={seed}")));

    // A replay run executes one case, not the whole sweep.
    assert!(replayed.contains("case 1/1"), "{replayed}");
}
