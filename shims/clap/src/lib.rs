//! Offline placeholder for `clap`.
//!
//! Reserved in `workspace.dependencies` so a future CLI expansion has a
//! stable dependency name; `ftsched-cli` currently uses a small
//! hand-rolled `key value` scanner instead. Implement a derive-free
//! builder subset here if the CLI outgrows it (or swap the path for the
//! real crate once the build has registry access).

#![forbid(unsafe_code)]
