//! A strict recursive-descent JSON parser producing the value tree.

use crate::Error;
use serde::{Number, Value};

pub(crate) fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Nesting depth limit guarding against stack overflow on hostile input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("JSON nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.expect_literal("null", Value::Null),
            Some(b't') => self.expect_literal("true", Value::Bool(true)),
            Some(b'f') => self.expect_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Value::Array(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `]` in array"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Value::Object(fields));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `}` in object"));
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 encoded char (input is a &str, so
                    // the byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let _ = self.eat(b'-');
        // RFC 8259 grammar: the integer part is `0` or a nonzero digit
        // followed by digits — no leading zeros, at least one digit.
        let int_digits = self.digit_run();
        match int_digits {
            0 => return Err(self.err("number has no integer digits")),
            1 => {}
            _ if self.bytes[self.pos - int_digits] == b'0' => {
                return Err(self.err("number has a leading zero"));
            }
            _ => {}
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            if self.digit_run() == 0 {
                return Err(self.err("number has no digits after the decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if !self.eat(b'+') {
                let _ = self.eat(b'-');
            }
            if self.digit_run() == 0 {
                return Err(self.err("number has no exponent digits"));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number slice is ASCII");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.err("invalid number"))
    }

    /// Consumes a run of ASCII digits, returning how many were consumed.
    fn digit_run(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        self.pos - start
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}
