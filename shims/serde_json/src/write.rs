//! JSON rendering of the value tree.

use serde::{Number, Value};
use std::fmt::Write;

pub(crate) fn compact(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

pub(crate) fn pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

fn newline(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, level + 1);
                write_value(out, x, indent, level + 1);
            }
            newline(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, x, indent, level + 1);
            }
            newline(out, indent, level);
            out.push('}');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::UInt(x) => {
            let _ = write!(out, "{x}");
        }
        Number::Int(x) => {
            let _ = write!(out, "{x}");
        }
        Number::Float(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest representation that parses back
                // to the same bits — lossless round trips.
                let _ = write!(out, "{x:?}");
            } else {
                // JSON has no NaN/inf; upstream serde_json writes null.
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
