//! Offline shim for `serde_json`: renders and parses the vendored serde
//! shim's [`Value`] tree as JSON text.
//!
//! Floats are written with Rust's shortest round-trip formatting, so
//! `f64` values survive `to_string` → `from_str` exactly — the archival
//! tests of the scheduler rely on that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod read;
mod write;

pub use serde::{Number, Value};

use serde::{Deserialize, Serialize};
use std::fmt;

/// A JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// `Result` alias matching upstream `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(write::compact(&value.to_value()))
}

/// Serializes `value` as human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(write::pretty(&value.to_value()))
}

/// Parses a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = read::parse(s)?;
    T::from_value(&v).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip_compact_and_pretty() {
        let v: (Vec<Option<String>>, bool, f64) =
            (vec![Some("a\"b\\c\n".into()), None], true, -0.125);
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        let a: (Vec<Option<String>>, bool, f64) = from_str(&compact).unwrap();
        let b: (Vec<Option<String>>, bool, f64) = from_str(&pretty).unwrap();
        assert_eq!(a, v);
        assert_eq!(b, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[
            0.1f64,
            1.0 / 3.0,
            1e-300,
            2.5e300,
            -0.0,
            123_456_789.123_456_79,
        ] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "failed for {x}");
        }
    }

    #[test]
    fn integers_keep_precision() {
        let big = u64::MAX - 1;
        let s = to_string(&big).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn garbage_rejected() {
        assert!(from_str::<bool>("{not json").is_err());
        assert!(from_str::<bool>("true false").is_err());
        assert!(from_str::<Vec<u8>>("[1, 2").is_err());
        assert!(from_str::<f64>("").is_err());
    }

    #[test]
    fn non_rfc_numbers_rejected() {
        // Rust's float parser would accept all of these; RFC 8259 doesn't.
        for bad in ["1.", ".5", "0123", "-", "1e", "1e+", "+1", "01.5"] {
            assert!(from_str::<f64>(bad).is_err(), "accepted {bad:?}");
        }
        // ...while legitimate shapes still parse.
        assert_eq!(from_str::<f64>("0.5").unwrap(), 0.5);
        assert_eq!(from_str::<f64>("-0.5e-2").unwrap(), -0.005);
        assert_eq!(from_str::<u64>("0").unwrap(), 0);
    }

    #[test]
    fn unicode_escapes() {
        let s: String = from_str(r#""Aé 😀""#).unwrap();
        assert_eq!(s, "Aé 😀");
    }
}
