//! Offline derive macros for the vendored `serde` shim.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! item shapes the workspace actually uses, parsing the raw token stream
//! directly (the registry-free build cannot depend on `syn`/`quote`):
//!
//! * structs with named fields (any visibility, attributes/doc comments);
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays);
//! * enums with unit and newtype variants (externally tagged, matching
//!   upstream serde's default representation).
//!
//! Generic parameters and `#[serde(...)]` attributes are rejected with a
//! compile error rather than silently mishandled.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;
use std::iter::Peekable;

/// Derives `serde::Serialize` (value-tree rendering).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derives `serde::Deserialize` (value-tree parsing).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, ser: bool) -> TokenStream {
    match Item::parse(input) {
        Ok(item) => {
            let code = if ser {
                item.impl_serialize()
            } else {
                item.impl_deserialize()
            };
            code.parse().expect("serde_derive generated invalid Rust")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

enum Shape {
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with this many fields.
    TupleStruct(usize),
    /// Variants: name + whether the variant carries one payload field.
    Enum(Vec<(String, bool)>),
}

struct Item {
    name: String,
    shape: Shape,
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attrs_and_vis(it: &mut Tokens) -> Result<(), String> {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        let text = g.stream().to_string();
                        if text.starts_with("serde") {
                            return Err(format!("serde shim derive does not support #[{text}]"));
                        }
                    }
                    _ => return Err("malformed attribute".into()),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            _ => return Ok(()),
        }
    }
}

fn expect_ident(it: &mut Tokens, what: &str) -> Result<String, String> {
    match it.next() {
        Some(TokenTree::Ident(id)) => Ok(id.to_string()),
        other => Err(format!("expected {what}, found {other:?}")),
    }
}

/// Consumes type tokens until a top-level `,` (angle-bracket aware).
/// Returns `true` when a comma was consumed, `false` at end of stream.
fn skip_type(it: &mut Tokens) -> bool {
    let mut depth = 0i32;
    for tt in it.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return true,
                _ => {}
            }
        }
    }
    false
}

impl Item {
    fn parse(input: TokenStream) -> Result<Item, String> {
        let mut it: Tokens = input.into_iter().peekable();
        skip_attrs_and_vis(&mut it)?;
        let kw = expect_ident(&mut it, "`struct` or `enum`")?;
        let name = expect_ident(&mut it, "item name")?;
        if matches!(&it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            return Err(format!(
                "serde shim derive does not support generic type `{name}`"
            ));
        }
        let body = it.next();
        match (kw.as_str(), body) {
            ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
                Ok(Item {
                    name,
                    shape: Shape::Struct(parse_named_fields(g.stream())?),
                })
            }
            ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item {
                    name,
                    shape: Shape::TupleStruct(parse_tuple_arity(g.stream())?),
                })
            }
            ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                shape: Shape::Enum(parse_variants(g.stream())?),
            }),
            (kw, body) => Err(format!("unsupported item: {kw} with body {body:?}")),
        }
    }

    fn impl_serialize(&self) -> String {
        let name = &self.name;
        let body = match &self.shape {
            Shape::Struct(fields) => {
                let mut entries = String::new();
                for f in fields {
                    let _ = write!(
                        entries,
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    );
                }
                format!("::serde::Value::Object(::std::vec![{entries}])")
            }
            Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Shape::TupleStruct(n) => {
                let mut entries = String::new();
                for i in 0..*n {
                    let _ = write!(entries, "::serde::Serialize::to_value(&self.{i}),");
                }
                format!("::serde::Value::Array(::std::vec![{entries}])")
            }
            Shape::Enum(variants) => {
                let mut arms = String::new();
                for (v, payload) in variants {
                    if *payload {
                        let _ = write!(
                            arms,
                            "{name}::{v}(__x) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({v:?}), \
                             ::serde::Serialize::to_value(__x))]),"
                        );
                    } else {
                        let _ = write!(
                            arms,
                            "{name}::{v} => ::serde::Value::String(\
                             ::std::string::String::from({v:?})),"
                        );
                    }
                }
                format!("match self {{ {arms} }}")
            }
        };
        format!(
            "#[automatically_derived]\n\
             impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
             }}"
        )
    }

    fn impl_deserialize(&self) -> String {
        let name = &self.name;
        let body = match &self.shape {
            Shape::Struct(fields) => {
                let mut entries = String::new();
                for f in fields {
                    let _ = write!(
                        entries,
                        "{f}: ::serde::Deserialize::from_value(__v.get({f:?})\
                         .ok_or_else(|| ::serde::Error::custom(\
                         concat!(\"missing field `\", {f:?}, \"` in {name}\")))?)?,"
                    );
                }
                format!("::std::result::Result::Ok({name} {{ {entries} }})")
            }
            Shape::TupleStruct(1) => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
            }
            Shape::TupleStruct(n) => {
                let mut entries = String::new();
                for i in 0..*n {
                    let _ = write!(entries, "::serde::Deserialize::from_value(&__xs[{i}])?,");
                }
                format!(
                    "match __v {{\n\
                         ::serde::Value::Array(__xs) if __xs.len() == {n} => \
                             ::std::result::Result::Ok({name}({entries})),\n\
                         __other => ::std::result::Result::Err(::serde::Error::custom(\
                             format!(\"expected {n}-element array for {name}, got {{}}\", \
                             __other.kind()))),\n\
                     }}"
                )
            }
            Shape::Enum(variants) => {
                let mut unit_arms = String::new();
                let mut payload_arms = String::new();
                for (v, payload) in variants {
                    if *payload {
                        let _ = write!(
                            payload_arms,
                            "{v:?} => return ::std::result::Result::Ok({name}::{v}(\
                             ::serde::Deserialize::from_value(__inner)?)),"
                        );
                    } else {
                        let _ = write!(
                            unit_arms,
                            "{v:?} => return ::std::result::Result::Ok({name}::{v}),"
                        );
                    }
                }
                format!(
                    "if let ::serde::Value::String(__s) = __v {{\n\
                         match __s.as_str() {{ {unit_arms} _ => {{}} }}\n\
                     }}\n\
                     if let ::serde::Value::Object(__fields) = __v {{\n\
                         if __fields.len() == 1 {{\n\
                             let (__tag, __inner) = &__fields[0];\n\
                             match __tag.as_str() {{ {payload_arms} _ => {{}} }}\n\
                         }}\n\
                     }}\n\
                     ::std::result::Result::Err(::serde::Error::custom(\
                         format!(\"unrecognized {name} variant encoding: {{}}\", __v.kind())))"
                )
            }
        };
        format!(
            "#[automatically_derived]\n\
             impl ::serde::Deserialize for {name} {{\n\
                 #[allow(unused_variables)]\n\
                 fn from_value(__v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
             }}"
        )
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut it: Tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it)?;
        if it.peek().is_none() {
            return Ok(fields);
        }
        let field = expect_ident(&mut it, "field name")?;
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field, found {other:?}")),
        }
        fields.push(field);
        if !skip_type(&mut it) {
            return Ok(fields);
        }
    }
}

fn parse_tuple_arity(stream: TokenStream) -> Result<usize, String> {
    let mut it: Tokens = stream.into_iter().peekable();
    let mut arity = 0usize;
    loop {
        skip_attrs_and_vis(&mut it)?;
        if it.peek().is_none() {
            return Ok(arity);
        }
        arity += 1;
        if !skip_type(&mut it) {
            return Ok(arity);
        }
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, bool)>, String> {
    let mut it: Tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it)?;
        if it.peek().is_none() {
            return Ok(variants);
        }
        let variant = expect_ident(&mut it, "variant name")?;
        let mut payload = false;
        match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Tokens = g.stream().into_iter().peekable();
                let mut count_it = inner;
                skip_attrs_and_vis(&mut count_it)?;
                let mut arity = 0usize;
                if count_it.peek().is_some() {
                    arity = 1;
                    while skip_type(&mut count_it) {
                        skip_attrs_and_vis(&mut count_it)?;
                        if count_it.peek().is_some() {
                            arity += 1;
                        }
                    }
                }
                if arity != 1 {
                    return Err(format!(
                        "variant `{variant}`: only unit and newtype variants supported"
                    ));
                }
                payload = true;
                it.next();
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "variant `{variant}`: struct variants are not supported"
                ));
            }
            _ => {}
        }
        variants.push((variant, payload));
        match it.next() {
            None => return Ok(variants),
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            other => return Err(format!("expected `,` between variants, found {other:?}")),
        }
    }
}
