//! Offline shim for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! a minimal, API-compatible subset of `rand` 0.8: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, [`rngs::StdRng`] (xoshiro256++
//! seeded via SplitMix64 — deterministic across platforms and releases),
//! uniform range sampling and the `Standard` distribution for the
//! primitive types the scheduler uses. Streams are *not* bit-compatible
//! with upstream `rand`; all in-tree tests depend only on determinism,
//! never on specific values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        distributions::unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}
