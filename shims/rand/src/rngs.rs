//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The standard deterministic generator: xoshiro256++ (Blackman–Vigna),
/// seeded by SplitMix64 expansion of a 64-bit seed.
///
/// Not bit-compatible with upstream `rand::rngs::StdRng` (which is
/// ChaCha12); in-tree code relies on determinism only.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start in the all-zero state.
        if s == [0, 0, 0, 0] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn zero_seed_works() {
        let mut r = StdRng::seed_from_u64(0);
        let x: f64 = r.gen();
        assert!((0.0..1.0).contains(&x));
    }
}
