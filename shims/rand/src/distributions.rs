//! The `Standard` distribution and uniform range sampling.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Maps a raw `u64` to a double in `[0, 1)` using the top 53 bits.
#[inline]
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of each primitive type: uniform over the
/// whole domain for integers, uniform in `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniformly picks an integer in `[0, span)` without modulo bias
/// (Lemire's multiply-shift; the tiny residual bias of skipping the
/// rejection loop is below 2^-64 per draw and irrelevant here).
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// A range that can be sampled from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = self.end as u64 - self.start as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span + 1) as $t
            }
        }
    )*};
}
range_uint!(u8, u16, u32, u64, usize);

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(below(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(below(rng, span + 1) as i64) as $t
            }
        }
    )*};
}
range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let x = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against rounding up onto the excluded endpoint.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        let x = lo + unit * (hi - lo);
        x.clamp(lo, hi)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        // Compute in f64 so the scaling cannot overflow f32 midway, then
        // fall back to `start` if rounding lands on the excluded endpoint
        // (mirrors the f64 impl; correct for any sign of the bounds).
        let unit = unit_f64(rng.next_u64());
        let x = (self.start as f64 + unit * (self.end as f64 - self.start as f64)) as f32;
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..10_000 {
            let x = rng.gen_range(0.5f64..1.0);
            assert!((0.5..1.0).contains(&x));
            let y = rng.gen_range(0.0f64..=2.0);
            assert!((0.0..=2.0).contains(&y));
        }
    }

    #[test]
    fn f32_ranges_with_nonpositive_bounds() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..10_000 {
            let a = rng.gen_range(-2.0f32..-1.0);
            assert!((-2.0..-1.0).contains(&a), "{a} escaped [-2, -1)");
            let b = rng.gen_range(-1.0f32..0.0);
            assert!((-1.0..0.0).contains(&b), "{b} escaped [-1, 0)");
        }
    }

    #[test]
    fn degenerate_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(rng.gen_range(7u32..=7), 7);
        assert_eq!(rng.gen_range(1.25f64..=1.25), 1.25);
    }

    #[test]
    fn full_domain_coverage_small_range() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(13);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
