//! Offline shim for `criterion`.
//!
//! The build environment has no registry access, so this workspace vendors
//! a minimal benchmarking harness with criterion's surface API
//! ([`Criterion`], benchmark groups, [`BenchmarkId`], `b.iter(..)`,
//! [`criterion_group!`] / [`criterion_main!`]). Instead of criterion's
//! statistical analysis it reports the median wall-clock time of
//! `sample_size` timed samples — enough to compare the Table 1 pipelines
//! and the component ablations, with no external dependencies.
//!
//! Bench targets must set `harness = false`, exactly as with upstream
//! criterion.
//!
//! Like upstream, passing `--test` to the bench binary (i.e.
//! `cargo bench --bench <name> -- --test`) runs every benchmark once as
//! a smoke test instead of collecting timed samples — CI uses this to
//! keep the targets compiling *and running* without paying full bench
//! time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

/// Whether the bench binary was invoked with `--test` (smoke mode: one
/// untimed sample per benchmark).
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: if test_mode() { 1 } else { 10 },
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark (ignored in
    /// `--test` smoke mode, which always runs one sample).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample_size must be at least 1");
        if !test_mode() {
            self.sample_size = n;
        }
        self
    }

    /// Times `f` under this group's configuration.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = self.full_label(&id.into_benchmark_id());
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        report(&label, &bencher.samples);
        self
    }

    /// Times `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = self.full_label(&id.into_benchmark_id());
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        for _ in 0..self.sample_size {
            f(&mut bencher, input);
        }
        report(&label, &bencher.samples);
        self
    }

    /// Ends the group (upstream criterion renders summaries here).
    pub fn finish(self) {}

    fn full_label(&self, id: &BenchmarkId) -> String {
        if self.name.is_empty() {
            id.label.clone()
        } else {
            format!("{}/{}", self.name, id.label)
        }
    }
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion of plain strings and [`BenchmarkId`]s into ids.
pub trait IntoBenchmarkId {
    /// Converts to a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Passed to the measured closure; times one sample per [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `routine` (the routine's return value is
    /// black-boxed so the optimizer cannot delete the work).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("bench {label:<40} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    println!(
        "bench {label:<40} median {median:>12?}   min {min:>12?}   max {max:>12?}   ({} samples)",
        sorted.len()
    );
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
