//! Elementwise min/max folds over contiguous `f64` rows.
//!
//! The scheduler's arrival bookkeeping is built from two row folds over
//! the flat per-(edge, processor) cache:
//!
//! * *read side* — `row[j] = max(row[j], cache[j])` streams each
//!   incoming edge's contiguous cache row into the per-processor
//!   arrival row ([`max_in_place`]);
//! * *write side* — `cache[j] = min(cache[j], finish + vol · delay[j])`
//!   folds a newly placed replica into each outgoing edge row
//!   ([`min_saxpy_in_place`]).
//!
//! Both are elementwise (no cross-lane reduction), so restructuring the
//! loop cannot reassociate anything: every code shape computes *the same
//! per-element expression* as the scalar reference loops and is
//! therefore bit-identical by construction — pinned by the adversarial
//! unit tests below (exact ties, `±0.0`, subnormals) and benchmarked by
//! the `scheduler/fold` series.
//!
//! The comparisons are written as explicit compare-selects rather than
//! `f64::max`/`f64::min`: LLVM's `maxnum`/`minnum` intrinsics leave the
//! result *unspecified* for `(+0.0, -0.0)` pairs, so their lowering may
//! legally differ between scalar and vector code. The compare-select
//! form pins the tie behavior — **on ties (including `±0.0`) the
//! accumulator keeps its current value** — which makes every code shape
//! bit-equal under any codegen.
//!
//! The two folds want *different* code shapes, per the `scheduler/fold`
//! microbench (release profile, baseline x86-64):
//!
//! * the pure max fold is fastest with a fixed 8-lane inner body
//!   (`chunks_exact`), which hands the vectorizer exact trip counts —
//!   ~1.2× over the plain loop at both m = 20 and m = 1024;
//! * the fused multiply-add-min fold is fastest as the *plain
//!   elementwise loop*: LLVM auto-vectorizes it to compact packed code,
//!   while manual 8-lane (and 4-lane) chunking of the same body emitted
//!   ~3× the instructions and ran ~2× slower. So [`min_saxpy_in_place`]
//!   *is* the plain loop, kept distinct from its separately-compiled
//!   reference so the bench series keeps watching for codegen drift.
//!
//! # Contract
//!
//! Inputs must be NaN-free (scheduler times are finite or `+∞`, never
//! NaN). With a NaN operand the compare-select picks an arbitrary-but-
//! deterministic side instead of propagating, so feeding NaN is a logic
//! error upstream, not UB.

/// Deterministic NaN-free maximum: `b` only replaces `a` when strictly
/// greater, so ties (including `+0.0` vs `-0.0`) keep `a`.
#[inline(always)]
fn max2(a: f64, b: f64) -> f64 {
    if b > a {
        b
    } else {
        a
    }
}

/// Deterministic NaN-free minimum: `b` only replaces `a` when strictly
/// smaller, so ties (including `+0.0` vs `-0.0`) keep `a`.
#[inline(always)]
fn min2(a: f64, b: f64) -> f64 {
    if b < a {
        b
    } else {
        a
    }
}

/// Number of `f64` lanes per unrolled chunk.
const LANES: usize = 8;

/// `dst[i] = max(dst[i], src[i])` for every `i`, chunked for
/// autovectorization. Bit-identical to [`max_in_place_scalar`].
///
/// # Panics
/// Panics if the slices differ in length.
pub fn max_in_place(dst: &mut [f64], src: &[f64]) {
    assert_eq!(dst.len(), src.len(), "row folds need equal-length rows");
    let mut d = dst.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    for (dc, sc) in (&mut d).zip(&mut s) {
        for i in 0..LANES {
            dc[i] = max2(dc[i], sc[i]);
        }
    }
    for (a, &b) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *a = max2(*a, b);
    }
}

/// Scalar reference for [`max_in_place`] — the plain loop the chunked
/// form must match bit for bit.
pub fn max_in_place_scalar(dst: &mut [f64], src: &[f64]) {
    assert_eq!(dst.len(), src.len(), "row folds need equal-length rows");
    for (a, &b) in dst.iter_mut().zip(src) {
        *a = max2(*a, b);
    }
}

/// `dst[i] = min(dst[i], add + scale · src[i])` for every `i` — the
/// arrival-cache write fold (`add` is the replica finish time, `scale`
/// the edge volume, `src` the sender's delay row). The candidate is
/// evaluated as `add + (scale * src[i])` with no FMA contraction.
///
/// Deliberately the plain elementwise loop: for this shape LLVM's
/// auto-vectorization beats manual chunking by ~2× (see the module
/// docs), so the production entry point and the reference differ only
/// in being compiled separately.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn min_saxpy_in_place(dst: &mut [f64], add: f64, scale: f64, src: &[f64]) {
    assert_eq!(dst.len(), src.len(), "row folds need equal-length rows");
    for (a, &b) in dst.iter_mut().zip(src) {
        *a = min2(*a, add + scale * b);
    }
}

/// Scalar reference for [`min_saxpy_in_place`].
pub fn min_saxpy_in_place_scalar(dst: &mut [f64], add: f64, scale: f64, src: &[f64]) {
    assert_eq!(dst.len(), src.len(), "row folds need equal-length rows");
    for (a, &b) in dst.iter_mut().zip(src) {
        *a = min2(*a, add + scale * b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adversarial row material: exact ties, signed zeros, subnormals,
    /// infinities and mixed magnitudes — everything but NaN.
    fn adversarial(n: usize, salt: u64) -> Vec<f64> {
        let specials = [
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,        // smallest normal
            f64::MIN_POSITIVE / 4.0,  // subnormal
            -f64::MIN_POSITIVE / 8.0, // negative subnormal
            5e-324,                   // smallest subnormal
            1.0,
            1.0 + f64::EPSILON, // adjacent floats
            1.0,                // exact tie with index 8
            1e300,
            -1e300,
            42.5,
        ];
        let mut state = salt | 1;
        (0..n)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                specials[(state as usize + i) % specials.len()]
            })
            .collect()
    }

    fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: lane {i} diverged ({x:?} vs {y:?})"
            );
        }
    }

    #[test]
    fn max_chunked_matches_scalar_bit_for_bit() {
        // Lengths straddling the chunk width: empty, sub-chunk, exact
        // multiples, and remainders — including the scheduler's m = 20.
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 20, 33, 50, 64, 100] {
            for salt in [1u64, 0xBEEF, 0x5EED] {
                let src = adversarial(n, salt);
                let mut a = adversarial(n, salt.wrapping_mul(31));
                let mut b = a.clone();
                max_in_place(&mut a, &src);
                max_in_place_scalar(&mut b, &src);
                assert_bits_eq(&a, &b, &format!("max n={n} salt={salt}"));
            }
        }
    }

    #[test]
    fn min_saxpy_matches_scalar_reference_bit_for_bit() {
        for n in [0usize, 1, 7, 8, 9, 20, 50, 64, 100] {
            for (add, scale) in [(0.0, 0.0), (12.5, 101.0), (1e300, 1e-300), (3.0, -0.0)] {
                let src = adversarial(n, 0xA5A5);
                let mut a = adversarial(n, 0x1234);
                let mut b = a.clone();
                min_saxpy_in_place(&mut a, add, scale, &src);
                min_saxpy_in_place_scalar(&mut b, add, scale, &src);
                assert_bits_eq(&a, &b, &format!("min n={n} add={add} scale={scale}"));
            }
        }
    }

    #[test]
    fn ties_keep_the_accumulator_including_signed_zero() {
        // The documented deterministic tie rule: the accumulator wins,
        // so a +0.0 accumulator is NOT replaced by a -0.0 candidate and
        // vice versa — under both folds and both code paths.
        let mut dst = vec![0.0f64, -0.0, 1.0, 5e-324];
        let src = vec![-0.0f64, 0.0, 1.0, 5e-324];
        let expect: Vec<u64> = dst.iter().map(|x| x.to_bits()).collect();
        max_in_place(&mut dst, &src);
        assert_eq!(dst.iter().map(|x| x.to_bits()).collect::<Vec<_>>(), expect);
        min_saxpy_in_place(&mut dst, 0.0, 1.0, &src);
        // add = 0.0: candidates are 0.0 + 1.0 * src, so -0.0 becomes
        // +0.0 — still a tie, still keeps the accumulator.
        assert_eq!(dst.iter().map(|x| x.to_bits()).collect::<Vec<_>>(), expect);
    }

    #[test]
    fn folds_do_real_work() {
        let mut dst = vec![1.0, 10.0, f64::INFINITY];
        max_in_place(&mut dst, &[2.0, 3.0, 0.0]);
        assert_eq!(dst, vec![2.0, 10.0, f64::INFINITY]);
        min_saxpy_in_place(&mut dst, 1.0, 2.0, &[0.5, 100.0, 0.25]);
        assert_eq!(dst, vec![2.0, 10.0, 1.5]);
    }
}
