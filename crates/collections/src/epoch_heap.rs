//! A lazy d-ary max-heap with epoch-tombstoned entries.
//!
//! The incremental schedule-pressure engine needs a priority queue over
//! per-task urgency keys where a key *invalidation* is O(1): tasks are
//! re-keyed whenever a bound tightens, and the per-processor guard
//! queues re-key whole batches per placement. An indexed heap (like
//! [`crate::DaryHeap`]) pays `O(log n)` per remove and needs a position
//! index per instance — too much for `m + 1` heaps over the same id
//! universe. This heap instead never removes eagerly: every entry
//! carries the **epoch** of its id at push time, the caller keeps one
//! shared `epochs: &[u32]` array (one slot per id, shared across any
//! number of heaps), and bumping `epochs[id]` tombstones *all* of that
//! id's outstanding entries in *all* heaps at once. Stale entries are
//! discarded lazily when they surface at the top, and
//! [`EpochHeap::compact`] sweeps them out wholesale when they dominate.
//!
//! The heap is a **max**-heap over `K: Ord` (the scheduler's urgency
//! keys embed a random tie-break token, so tops are unique and pop
//! order is deterministic); min-at-top uses `core::cmp::Reverse` keys,
//! exactly as [`crate::DaryHeap`] does for max-ordering.

/// One lazily-deleted heap entry.
#[derive(Debug, Clone, Copy)]
struct Entry<K> {
    key: K,
    id: u32,
    epoch: u32,
}

/// A d-ary max-heap with lazy epoch-based invalidation; see the
/// [module docs](self).
///
/// ```
/// use ftcollections::EpochHeap;
///
/// let mut epochs = vec![0u32; 3];
/// let mut h: EpochHeap<u64> = EpochHeap::new();
/// h.push(0, epochs[0], 50);
/// h.push(1, epochs[1], 70);
/// h.push(2, epochs[2], 60);
/// // Re-key id 1: bump its epoch (killing the old entry) and push anew.
/// epochs[1] += 1;
/// h.push(1, epochs[1], 40);
/// assert_eq!(h.pop(&epochs), Some((2, 60)));
/// assert_eq!(h.pop(&epochs), Some((0, 50)));
/// assert_eq!(h.pop(&epochs), Some((1, 40)));
/// assert_eq!(h.pop(&epochs), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EpochHeap<K, const D: usize = 4> {
    data: Vec<Entry<K>>,
}

impl<K: Ord + Copy, const D: usize> EpochHeap<K, D> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        assert!(D >= 2, "heap arity must be at least 2");
        EpochHeap { data: Vec::new() }
    }

    /// Number of entries physically stored — live *and* tombstoned.
    /// (Live counts require the caller's epoch array; see
    /// [`EpochHeap::live_len`].)
    #[inline]
    pub fn raw_len(&self) -> usize {
        self.data.len()
    }

    /// Whether no entries are stored at all (not even tombstones).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of live entries under `epochs` — O(n), for tests and
    /// diagnostics.
    pub fn live_len(&self, epochs: &[u32]) -> usize {
        self.data
            .iter()
            .filter(|e| epochs[e.id as usize] == e.epoch)
            .count()
    }

    /// Removes every entry, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Inserts an entry for `id` tagged with its current `epoch`
    /// (i.e. `epochs[id]` — passed by value so pushes never borrow the
    /// caller's epoch array). Entries whose epoch has since been bumped
    /// become tombstones and are skipped by the pop family.
    pub fn push(&mut self, id: u32, epoch: u32, key: K) {
        self.data.push(Entry { key, id, epoch });
        self.sift_up(self.data.len() - 1);
    }

    /// Discards tombstoned tops, then removes and returns the live
    /// maximum entry.
    pub fn pop(&mut self, epochs: &[u32]) -> Option<(u32, K)> {
        self.prune_top(epochs);
        self.pop_top()
    }

    /// Discards tombstoned tops, then removes and returns the live
    /// maximum entry *only if* `take` accepts its key — the guard-queue
    /// drain primitive (`while let Some(..) = h.pop_if(epochs, |k| ..)`).
    pub fn pop_if(&mut self, epochs: &[u32], take: impl FnOnce(&K) -> bool) -> Option<(u32, K)> {
        self.prune_top(epochs);
        let top = self.data.first()?;
        if take(&top.key) {
            self.pop_top()
        } else {
            None
        }
    }

    /// Discards tombstoned tops and returns the live maximum without
    /// removing it.
    pub fn peek(&mut self, epochs: &[u32]) -> Option<(u32, &K)> {
        self.prune_top(epochs);
        self.data.first().map(|e| (e.id, &e.key))
    }

    /// Drops every tombstoned entry and restores the heap property over
    /// the survivors (Floyd heap construction, O(n)) — in place, no
    /// allocation. Callers invoke this when tombstones outnumber live
    /// entries by a known bound (the scheduler compacts when the raw
    /// size exceeds twice the id universe) so heap depth stays
    /// proportional to the live population.
    pub fn compact(&mut self, epochs: &[u32]) {
        self.data.retain(|e| epochs[e.id as usize] == e.epoch);
        let n = self.data.len();
        for i in (0..n / D + 1).rev() {
            self.sift_down(i);
        }
    }

    /// Pops while the top is tombstoned.
    fn prune_top(&mut self, epochs: &[u32]) {
        while let Some(top) = self.data.first() {
            if epochs[top.id as usize] == top.epoch {
                break;
            }
            self.pop_top();
        }
    }

    /// Unconditional top removal (caller has validated the top).
    fn pop_top(&mut self) -> Option<(u32, K)> {
        if self.data.is_empty() {
            return None;
        }
        let last = self.data.len() - 1;
        self.data.swap(0, last);
        let e = self.data.pop().expect("nonempty");
        if !self.data.is_empty() {
            self.sift_down(0);
        }
        Some((e.id, e.key))
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / D;
            if self.data[i].key > self.data[parent].key {
                self.data.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.data.len();
        loop {
            let first = D * i + 1;
            if first >= n {
                break;
            }
            let mut largest = i;
            for c in first..(first + D).min(n) {
                if self.data[c].key > self.data[largest].key {
                    largest = c;
                }
            }
            if largest == i {
                break;
            }
            self.data.swap(i, largest);
            i = largest;
        }
    }

    /// Verifies the max-heap property; used by tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        for i in 1..self.data.len() {
            let parent = (i - 1) / D;
            if self.data[i].key > self.data[parent].key {
                return Err(format!("heap property violated at index {i}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;

    #[test]
    fn pop_order_is_descending() {
        let epochs = vec![0u32; 12];
        let mut h: EpochHeap<i32> = EpochHeap::new();
        for (id, x) in [9, 4, 7, 1, 8, 3, 0, 6, 2, 5, 11, 10]
            .into_iter()
            .enumerate()
        {
            h.push(id as u32, 0, x);
            h.check_invariants().unwrap();
        }
        let mut out = Vec::new();
        while let Some((_, k)) = h.pop(&epochs) {
            out.push(k);
            h.check_invariants().unwrap();
        }
        assert_eq!(out, (0..12).rev().collect::<Vec<_>>());
    }

    #[test]
    fn epoch_bump_tombstones_all_outstanding_entries() {
        let mut epochs = vec![0u32; 4];
        let mut h: EpochHeap<u64> = EpochHeap::new();
        // Three generations of keys for id 2, one live key for id 0.
        h.push(2, 0, 100);
        epochs[2] = 1;
        h.push(2, 1, 90);
        epochs[2] = 2;
        h.push(2, 2, 80);
        h.push(0, 0, 85);
        assert_eq!(h.raw_len(), 4);
        assert_eq!(h.live_len(&epochs), 2);
        assert_eq!(h.pop(&epochs), Some((0, 85)));
        assert_eq!(h.pop(&epochs), Some((2, 80)));
        assert_eq!(h.pop(&epochs), None);
        assert!(h.is_empty(), "popping past the end drains tombstones");
    }

    #[test]
    fn shared_epochs_invalidate_across_heaps() {
        // One epoch array serving several heaps: a single bump kills the
        // id's entries everywhere — the m-guard-queue use case.
        let mut epochs = vec![0u32; 3];
        let mut a: EpochHeap<u32> = EpochHeap::new();
        let mut b: EpochHeap<u32> = EpochHeap::new();
        a.push(1, 0, 10);
        b.push(1, 0, 20);
        a.push(2, 0, 5);
        epochs[1] = 1;
        assert_eq!(a.pop(&epochs), Some((2, 5)));
        assert_eq!(a.pop(&epochs), None);
        assert_eq!(b.pop(&epochs), None);
    }

    #[test]
    fn pop_if_takes_only_matching_tops() {
        let mut epochs = vec![0u32; 4];
        let mut h: EpochHeap<Reverse<u32>> = EpochHeap::new();
        // Min-at-top via Reverse: thresholds 10, 20, 30.
        h.push(0, 0, Reverse(10));
        h.push(1, 0, Reverse(20));
        h.push(2, 0, Reverse(30));
        epochs[0] = 1; // tombstone the smallest
        let mut fired = Vec::new();
        while let Some((id, _)) = h.pop_if(&epochs, |Reverse(th)| *th < 25) {
            fired.push(id);
        }
        assert_eq!(fired, vec![1], "tombstone skipped, 30 left in place");
        assert_eq!(h.pop(&epochs), Some((2, Reverse(30))));
    }

    #[test]
    fn peek_skips_tombstones_without_losing_live_entries() {
        let mut epochs = vec![0u32; 2];
        let mut h: EpochHeap<u32> = EpochHeap::new();
        h.push(0, 0, 50);
        h.push(1, 0, 40);
        epochs[0] = 1;
        assert_eq!(h.peek(&epochs), Some((1, &40)));
        assert_eq!(h.pop(&epochs), Some((1, 40)));
    }

    #[test]
    fn compact_drops_tombstones_and_preserves_order() {
        let mut epochs = vec![0u32; 64];
        let mut h: EpochHeap<(u32, u32)> = EpochHeap::new();
        for round in 0..8u32 {
            for id in 0..64u32 {
                epochs[id as usize] = round;
                h.push(id, round, (id * 7 % 64 + round, id));
            }
        }
        assert_eq!(h.raw_len(), 8 * 64);
        h.compact(&epochs);
        assert_eq!(h.raw_len(), 64);
        h.check_invariants().unwrap();
        let mut out = Vec::new();
        while let Some((_, k)) = h.pop(&epochs) {
            out.push(k);
        }
        let mut sorted = out.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(out, sorted);
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn clear_keeps_capacity_and_resets_state() {
        let epochs = vec![0u32; 8];
        let mut h: EpochHeap<u32> = EpochHeap::new();
        for id in 0..8 {
            h.push(id, 0, id);
        }
        let cap = h.data.capacity();
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.data.capacity(), cap);
        h.push(3, 0, 1);
        assert_eq!(h.pop(&epochs), Some((3, 1)));
    }

    /// Randomized oracle: the heap with interleaved pushes, epoch bumps
    /// and pops agrees with a naive scan over the live set.
    #[test]
    fn randomized_against_naive_oracle() {
        // Small deterministic LCG so the test needs no external RNG.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let ids = 32usize;
        let mut epochs = vec![0u32; ids];
        let mut h: EpochHeap<(u64, u32)> = EpochHeap::new();
        // live[id] = Some(key) mirrors the single live entry per id the
        // scheduler maintains.
        let mut live: Vec<Option<(u64, u32)>> = vec![None; ids];
        for step in 0..4000 {
            let id = (next() % ids as u64) as usize;
            match next() % 4 {
                // Re-key: bump + push (the scheduler's invalidation).
                0 | 1 => {
                    epochs[id] += 1;
                    let key = (next() % 1000, id as u32);
                    h.push(id as u32, epochs[id], key);
                    live[id] = Some(key);
                }
                // Drop the id entirely.
                2 => {
                    epochs[id] += 1;
                    live[id] = None;
                }
                // Pop and compare against the naive max.
                _ => {
                    let expect = live
                        .iter()
                        .enumerate()
                        .filter_map(|(i, k)| k.map(|k| (k, i)))
                        .max();
                    let got = h.pop(&epochs);
                    match expect {
                        None => assert_eq!(got, None, "step {step}"),
                        Some((k, i)) => {
                            assert_eq!(got, Some((i as u32, k)), "step {step}");
                            live[i] = None;
                            epochs[i] += 1;
                        }
                    }
                }
            }
            if h.raw_len() > 4 * ids {
                h.compact(&epochs);
                h.check_invariants().unwrap();
                assert!(h.raw_len() <= ids, "compaction leaves only live entries");
            }
        }
    }
}
