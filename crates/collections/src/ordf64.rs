//! Total-order wrapper for finite `f64` values.
//!
//! Scheduling lengths, levels and priorities are finite non-NaN floats by
//! construction, so a total order is safe. The wrapper uses
//! [`f64::total_cmp`], which orders `-NaN < -inf < … < +inf < +NaN`; the
//! constructor debug-asserts finiteness so NaNs cannot sneak into schedule
//! arithmetic unnoticed in test builds.

use std::cmp::Ordering;
use std::fmt;

/// A totally ordered, finite `f64`.
///
/// ```
/// use ftcollections::OrdF64;
/// let a = OrdF64::new(1.5);
/// let b = OrdF64::new(2.0);
/// assert!(a < b);
/// assert_eq!(a.get() + 0.5, b.get());
/// ```
#[derive(Clone, Copy, Default)]
pub struct OrdF64(f64);

impl OrdF64 {
    /// Wraps a finite float. Debug-asserts that `x` is not NaN.
    #[inline]
    pub fn new(x: f64) -> Self {
        debug_assert!(!x.is_nan(), "OrdF64 must not hold NaN");
        OrdF64(x)
    }

    /// Returns the wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Zero.
    pub const ZERO: OrdF64 = OrdF64(0.0);
    /// Positive infinity; usable as an identity for `min`.
    pub const INFINITY: OrdF64 = OrdF64(f64::INFINITY);
    /// Negative infinity; usable as an identity for `max`.
    pub const NEG_INFINITY: OrdF64 = OrdF64(f64::NEG_INFINITY);
}

impl From<f64> for OrdF64 {
    #[inline]
    fn from(x: f64) -> Self {
        OrdF64::new(x)
    }
}

impl From<OrdF64> for f64 {
    #[inline]
    fn from(x: OrdF64) -> Self {
        x.0
    }
}

impl PartialEq for OrdF64 {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for OrdF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Debug for OrdF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl fmt::Display for OrdF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_consistent() {
        let xs = [-3.5, -0.0, 0.0, 1.0, 2.5, f64::INFINITY];
        for &a in &xs {
            for &b in &xs {
                let wa = OrdF64::new(a);
                let wb = OrdF64::new(b);
                assert_eq!(wa.cmp(&wb), a.total_cmp(&b));
            }
        }
    }

    #[test]
    fn constants() {
        assert!(OrdF64::NEG_INFINITY < OrdF64::ZERO);
        assert!(OrdF64::ZERO < OrdF64::INFINITY);
        assert_eq!(OrdF64::ZERO.get(), 0.0);
    }

    #[test]
    fn round_trip_conversions() {
        let x: OrdF64 = 4.25.into();
        let y: f64 = x.into();
        assert_eq!(y, 4.25);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn nan_rejected_in_debug() {
        let _ = OrdF64::new(f64::NAN);
    }

    #[test]
    fn hash_distinguishes_values() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: OrdF64| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_ne!(h(OrdF64::new(1.0)), h(OrdF64::new(2.0)));
        assert_eq!(h(OrdF64::new(1.0)), h(OrdF64::new(1.0)));
    }
}
