//! An indexed binary min-heap with `O(log n)` decrease-key and removal.
//!
//! The discrete-event simulator keeps its event queue here, and the greedy
//! robust-communication selector of MC-FTSA uses it to stream edges in
//! non-decreasing weight order. Entries are identified by a caller-chosen
//! `usize` id (dense ids expected); the heap maintains an id → position
//! index so keys can be updated or entries removed in place.
//!
//! Since the d-ary generalization landed ([`crate::dary`]), the binary
//! heap is simply the arity-2 instantiation — one implementation, two
//! names. `DaryHeap`'s sift paths at `D = 2` are operation-for-operation
//! identical to the original binary implementation, so pop order (and
//! with it simulator determinism) is unchanged.

use crate::dary::DaryHeap;

/// A binary min-heap keyed by `P: Ord`, addressable by dense `usize` ids:
/// the arity-2 case of [`DaryHeap`].
///
/// ```
/// use ftcollections::IndexedHeap;
///
/// let mut h: IndexedHeap<u32> = IndexedHeap::new(8);
/// h.push(0, 50);
/// h.push(1, 30);
/// h.push(2, 40);
/// h.decrease_key(2, 10);
/// assert_eq!(h.pop(), Some((2, 10)));
/// assert_eq!(h.pop(), Some((1, 30)));
/// ```
pub type IndexedHeap<P> = DaryHeap<P, 2>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_sorted() {
        let mut h = IndexedHeap::new(16);
        let xs = [9, 4, 7, 1, 8, 3, 0, 6, 2, 5];
        for (id, &x) in xs.iter().enumerate() {
            h.push(id, x);
            h.check_invariants().unwrap();
        }
        let mut out = Vec::new();
        while let Some((_, p)) = h.pop() {
            out.push(p);
            h.check_invariants().unwrap();
        }
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn decrease_key_reorders() {
        let mut h = IndexedHeap::new(4);
        h.push(0, 100);
        h.push(1, 200);
        h.push(2, 300);
        h.decrease_key(2, 50);
        assert_eq!(h.peek(), Some((2, &50)));
        h.check_invariants().unwrap();
    }

    #[test]
    #[should_panic]
    fn decrease_key_rejects_increase() {
        let mut h = IndexedHeap::new(2);
        h.push(0, 10);
        h.decrease_key(0, 20);
    }

    #[test]
    fn update_key_any_direction() {
        let mut h = IndexedHeap::new(4);
        h.push(0, 10);
        h.push(1, 20);
        h.update_key(0, 30); // increase
        assert_eq!(h.peek(), Some((1, &20)));
        h.update_key(0, 5); // decrease
        assert_eq!(h.peek(), Some((0, &5)));
        h.update_key(7, 1); // insert via update
        assert_eq!(h.peek(), Some((7, &1)));
        h.check_invariants().unwrap();
    }

    #[test]
    fn remove_middle() {
        let mut h = IndexedHeap::new(8);
        for id in 0..8 {
            h.push(id, (id * 13 % 7) as i32);
        }
        assert!(h.remove(3).is_some());
        assert!(!h.contains(3));
        assert_eq!(h.remove(3), None);
        h.check_invariants().unwrap();
        assert_eq!(h.len(), 7);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut h = IndexedHeap::new(1);
        for id in 0..100 {
            h.push(id, 100 - id);
        }
        assert_eq!(h.len(), 100);
        assert_eq!(h.pop(), Some((99, 1)));
        h.check_invariants().unwrap();
    }

    #[test]
    fn priority_lookup() {
        let mut h = IndexedHeap::new(4);
        h.push(2, 42);
        assert_eq!(h.priority(2), Some(&42));
        assert_eq!(h.priority(0), None);
    }

    #[test]
    fn pop_empty() {
        let mut h: IndexedHeap<i32> = IndexedHeap::new(0);
        assert_eq!(h.pop(), None);
        assert!(h.is_empty());
    }
}
