//! An indexed binary min-heap with `O(log n)` decrease-key and removal.
//!
//! The discrete-event simulator keeps its event queue here, and the greedy
//! robust-communication selector of MC-FTSA uses it to stream edges in
//! non-decreasing weight order. Entries are identified by a caller-chosen
//! `usize` id (dense ids expected); the heap maintains an id → position
//! index so keys can be updated or entries removed in place.

/// A binary min-heap keyed by `P: Ord`, addressable by dense `usize` ids.
///
/// ```
/// use ftcollections::IndexedHeap;
///
/// let mut h: IndexedHeap<u32> = IndexedHeap::new(8);
/// h.push(0, 50);
/// h.push(1, 30);
/// h.push(2, 40);
/// h.decrease_key(2, 10);
/// assert_eq!(h.pop(), Some((2, 10)));
/// assert_eq!(h.pop(), Some((1, 30)));
/// ```
#[derive(Debug, Clone)]
pub struct IndexedHeap<P> {
    /// Heap-ordered `(priority, id)` pairs.
    data: Vec<(P, usize)>,
    /// `pos[id]` = index into `data`, or `usize::MAX` when absent.
    pos: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl<P: Ord + Clone> IndexedHeap<P> {
    /// Creates a heap able to hold ids `0..capacity` (grows on demand).
    pub fn new(capacity: usize) -> Self {
        IndexedHeap {
            data: Vec::with_capacity(capacity),
            pos: vec![ABSENT; capacity],
        }
    }

    /// Number of entries currently in the heap.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the heap is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether `id` is currently enqueued.
    #[inline]
    pub fn contains(&self, id: usize) -> bool {
        id < self.pos.len() && self.pos[id] != ABSENT
    }

    /// Current priority of `id`, if enqueued.
    pub fn priority(&self, id: usize) -> Option<&P> {
        if self.contains(id) {
            Some(&self.data[self.pos[id]].0)
        } else {
            None
        }
    }

    fn ensure_id(&mut self, id: usize) {
        if id >= self.pos.len() {
            self.pos.resize(id + 1, ABSENT);
        }
    }

    /// Inserts `id` with `priority`.
    ///
    /// # Panics
    /// Panics if `id` is already enqueued (use [`IndexedHeap::update_key`]).
    pub fn push(&mut self, id: usize, priority: P) {
        self.ensure_id(id);
        assert_eq!(self.pos[id], ABSENT, "id {id} already enqueued");
        self.data.push((priority, id));
        let i = self.data.len() - 1;
        self.pos[id] = i;
        self.sift_up(i);
    }

    /// Removes and returns the minimum entry.
    pub fn pop(&mut self) -> Option<(usize, P)> {
        if self.data.is_empty() {
            return None;
        }
        let last = self.data.len() - 1;
        self.data.swap(0, last);
        let (priority, id) = self.data.pop().expect("nonempty");
        self.pos[id] = ABSENT;
        if !self.data.is_empty() {
            self.pos[self.data[0].1] = 0;
            self.sift_down(0);
        }
        Some((id, priority))
    }

    /// Returns the minimum entry without removing it.
    pub fn peek(&self) -> Option<(usize, &P)> {
        self.data.first().map(|(p, id)| (*id, p))
    }

    /// Lowers the priority of `id`. Panics if absent or if the new priority
    /// is greater than the current one.
    pub fn decrease_key(&mut self, id: usize, priority: P) {
        assert!(self.contains(id), "id {id} not enqueued");
        let i = self.pos[id];
        assert!(
            priority <= self.data[i].0,
            "decrease_key must not increase the priority"
        );
        self.data[i].0 = priority;
        self.sift_up(i);
    }

    /// Sets the priority of `id` to any value, inserting it if absent.
    pub fn update_key(&mut self, id: usize, priority: P) {
        self.ensure_id(id);
        if self.pos[id] == ABSENT {
            self.push(id, priority);
            return;
        }
        let i = self.pos[id];
        let up = priority < self.data[i].0;
        self.data[i].0 = priority;
        if up {
            self.sift_up(i);
        } else {
            self.sift_down(i);
        }
    }

    /// Removes `id` from the heap, returning its priority.
    pub fn remove(&mut self, id: usize) -> Option<P> {
        if !self.contains(id) {
            return None;
        }
        let i = self.pos[id];
        let last = self.data.len() - 1;
        self.data.swap(i, last);
        let (priority, removed_id) = self.data.pop().expect("nonempty");
        debug_assert_eq!(removed_id, id);
        self.pos[id] = ABSENT;
        if i < self.data.len() {
            self.pos[self.data[i].1] = i;
            // The swapped-in element may need to move either way. If
            // sift_up moved it, the element now at `i` is a former ancestor
            // and already satisfies the heap property, so the sift_down is
            // a no-op.
            self.sift_up(i);
            self.sift_down(i);
        }
        Some(priority)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.data[i].0 < self.data[parent].0 {
                self.data.swap(i, parent);
                self.pos[self.data[i].1] = i;
                self.pos[self.data[parent].1] = parent;
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.data.len();
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut smallest = i;
            if l < n && self.data[l].0 < self.data[smallest].0 {
                smallest = l;
            }
            if r < n && self.data[r].0 < self.data[smallest].0 {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.data.swap(i, smallest);
            self.pos[self.data[i].1] = i;
            self.pos[self.data[smallest].1] = smallest;
            i = smallest;
        }
    }

    /// Verifies the heap property and index consistency; used by tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        for i in 1..self.data.len() {
            let parent = (i - 1) / 2;
            if self.data[i].0 < self.data[parent].0 {
                return Err(format!("heap property violated at index {i}"));
            }
        }
        for (i, (_, id)) in self.data.iter().enumerate() {
            if self.pos[*id] != i {
                return Err(format!("pos index stale for id {id}"));
            }
        }
        let live = self.pos.iter().filter(|&&p| p != ABSENT).count();
        if live != self.data.len() {
            return Err("pos/data length mismatch".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_sorted() {
        let mut h = IndexedHeap::new(16);
        let xs = [9, 4, 7, 1, 8, 3, 0, 6, 2, 5];
        for (id, &x) in xs.iter().enumerate() {
            h.push(id, x);
            h.check_invariants().unwrap();
        }
        let mut out = Vec::new();
        while let Some((_, p)) = h.pop() {
            out.push(p);
            h.check_invariants().unwrap();
        }
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn decrease_key_reorders() {
        let mut h = IndexedHeap::new(4);
        h.push(0, 100);
        h.push(1, 200);
        h.push(2, 300);
        h.decrease_key(2, 50);
        assert_eq!(h.peek(), Some((2, &50)));
        h.check_invariants().unwrap();
    }

    #[test]
    #[should_panic]
    fn decrease_key_rejects_increase() {
        let mut h = IndexedHeap::new(2);
        h.push(0, 10);
        h.decrease_key(0, 20);
    }

    #[test]
    fn update_key_any_direction() {
        let mut h = IndexedHeap::new(4);
        h.push(0, 10);
        h.push(1, 20);
        h.update_key(0, 30); // increase
        assert_eq!(h.peek(), Some((1, &20)));
        h.update_key(0, 5); // decrease
        assert_eq!(h.peek(), Some((0, &5)));
        h.update_key(7, 1); // insert via update
        assert_eq!(h.peek(), Some((7, &1)));
        h.check_invariants().unwrap();
    }

    #[test]
    fn remove_middle() {
        let mut h = IndexedHeap::new(8);
        for id in 0..8 {
            h.push(id, (id * 13 % 7) as i32);
        }
        assert!(h.remove(3).is_some());
        assert!(!h.contains(3));
        assert_eq!(h.remove(3), None);
        h.check_invariants().unwrap();
        assert_eq!(h.len(), 7);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut h = IndexedHeap::new(1);
        for id in 0..100 {
            h.push(id, 100 - id);
        }
        assert_eq!(h.len(), 100);
        assert_eq!(h.pop(), Some((99, 1)));
        h.check_invariants().unwrap();
    }

    #[test]
    fn priority_lookup() {
        let mut h = IndexedHeap::new(4);
        h.push(2, 42);
        assert_eq!(h.priority(2), Some(&42));
        assert_eq!(h.priority(0), None);
    }

    #[test]
    fn pop_empty() {
        let mut h: IndexedHeap<i32> = IndexedHeap::new(0);
        assert_eq!(h.pop(), None);
        assert!(h.is_empty());
    }
}
