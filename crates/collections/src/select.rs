//! Deterministic partial selection of the `k` smallest candidates.
//!
//! The scheduler's inner loop repeatedly needs "the `ε + 1` processors
//! minimizing a score" out of `m` candidates. Allocating all `m` pairs
//! and fully sorting them costs `O(m log m)` per task; since `ε + 1 ≪ m`
//! in every paper configuration, a bounded insertion into a `k`-slot
//! buffer does the same job in `O(m · k)` comparisons with a single
//! small allocation — and `k` is a small constant, so this is O(m).
//!
//! The result is *defined* to equal the first `k` elements of the
//! stable-by-index full sort: candidates are ordered by
//! `(value, index)` with [`f64::total_cmp`] on the value. The golden
//! bit-identity suite relies on this equivalence.

/// Returns the `count` smallest `(index, value(index))` pairs over
/// `0..m`, ordered by `(value, index)` ascending — exactly the
/// `count`-prefix of sorting all candidates by `(value, index)`.
///
/// `value` is invoked once per index, in increasing index order.
///
/// # Panics
/// Panics (in debug builds) if `count > m`.
pub fn select_smallest(
    m: usize,
    count: usize,
    value: impl FnMut(usize) -> f64,
) -> Vec<(usize, f64)> {
    let mut best: Vec<(usize, f64)> = Vec::with_capacity(count);
    select_smallest_into(m, count, value, &mut best);
    best
}

/// [`select_smallest`] writing into a caller-provided buffer — the
/// zero-allocation form the scheduler's steady state uses. `best` is
/// cleared first; after the call it holds exactly the `count`-prefix of
/// the stable-by-index full sort.
pub fn select_smallest_into(
    m: usize,
    count: usize,
    mut value: impl FnMut(usize) -> f64,
    best: &mut Vec<(usize, f64)>,
) {
    debug_assert!(count <= m, "cannot select {count} of {m} candidates");
    best.clear();
    for j in 0..m {
        let v = value(j);
        if best.len() == count {
            // Full buffer: j only enters if strictly smaller than the
            // current worst (on ties the incumbent's lower index wins,
            // matching the stable sort).
            match best.last() {
                Some(&(_, worst)) if v.total_cmp(&worst).is_lt() => {
                    best.pop();
                }
                _ => continue,
            }
        }
        // Insert keeping (value, index) order; `j` exceeds every stored
        // index, so on equal values it lands after the incumbents.
        let at = best.partition_point(|&(_, w)| w.total_cmp(&v).is_le());
        best.insert(at, (j, v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Oracle: full stable sort by (value, index), then truncate.
    fn oracle(values: &[f64], count: usize) -> Vec<(usize, f64)> {
        let mut all: Vec<(usize, f64)> = values.iter().copied().enumerate().collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        all.truncate(count);
        all
    }

    #[test]
    fn matches_sort_truncate_oracle() {
        let vals = [5.0, 1.0, 3.0, 1.0, 4.0, 1.0, 2.0, 0.5];
        for count in 0..=vals.len() {
            assert_eq!(
                select_smallest(vals.len(), count, |j| vals[j]),
                oracle(&vals, count),
                "count={count}"
            );
        }
    }

    #[test]
    fn ties_keep_lower_indices() {
        let vals = [2.0, 2.0, 2.0, 2.0];
        assert_eq!(select_smallest(4, 2, |j| vals[j]), vec![(0, 2.0), (1, 2.0)]);
    }

    #[test]
    fn pseudo_random_agreement() {
        // Deterministic LCG-driven values, many shapes.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 10.0
        };
        for m in [1usize, 2, 7, 20, 50] {
            let vals: Vec<f64> = (0..m).map(|_| next()).collect();
            for count in [0, 1.min(m), 2.min(m), m / 2, m] {
                assert_eq!(
                    select_smallest(m, count, |j| vals[j]),
                    oracle(&vals, count),
                    "m={m} count={count}"
                );
            }
        }
    }

    #[test]
    fn negative_zero_and_infinities_total_order() {
        let vals = [0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, 1.0];
        assert_eq!(select_smallest(5, 5, |j| vals[j]), oracle(&vals, 5));
    }

    #[test]
    fn into_variant_clears_and_reuses_the_buffer() {
        let vals = [5.0, 1.0, 3.0, 1.0, 4.0];
        let mut buf = vec![(99usize, 0.0f64); 7]; // stale content
        select_smallest_into(5, 2, |j| vals[j], &mut buf);
        assert_eq!(buf, oracle(&vals, 2));
        select_smallest_into(5, 4, |j| vals[j], &mut buf);
        assert_eq!(buf, oracle(&vals, 4));
    }
}
