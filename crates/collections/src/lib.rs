//! Ordered and priority data structures used by the `ftsched` scheduler.
//!
//! The FTSA algorithm of Benoit, Hakem and Robert (RR-6418, 2008) maintains
//! its list of free tasks `α` "using a balanced search tree data structure
//! (AVL)" so that selecting the critical task costs `O(log ω)` where `ω` is
//! the width of the task graph. This crate provides that substrate, built
//! from scratch:
//!
//! * [`AvlTree`] — a generic AVL-balanced ordered map with `O(log n)`
//!   insert / remove / min / max and in-order iteration.
//! * [`PriorityList`] — the `α` list itself: a max-priority structure over
//!   `(priority, tie-break)` keys with stable membership queries, backed by
//!   the AVL tree.
//! * [`IndexedHeap`] — a binary min-heap with `O(log n)` decrease-key /
//!   remove by handle, used by the discrete-event simulator and by the
//!   greedy communication selector.
//! * [`DaryHeap`] — an indexed d-ary min-heap (default arity 4); the
//!   unified list-scheduling pipeline keeps its free list `α` here
//!   (max-ordering via `core::cmp::Reverse` keys).
//! * [`EpochHeap`] — a lazy d-ary max-heap with epoch-tombstoned
//!   entries and O(1) invalidation through a caller-shared epoch array;
//!   the incremental pressure engine keys its urgency queue and the
//!   per-processor guard queues here.
//! * [`select_smallest`] — deterministic `O(m · k)` partial selection of
//!   the `k` smallest candidates, bit-equal to a stable sort-then-
//!   truncate; backs the `ε + 1`-processor selection of the scheduler.
//! * [`fold`] — elementwise min/max folds over contiguous `f64`
//!   rows, bit-identical to their scalar references; the scheduler's
//!   arrival-cache read/write folds stream through these.
//! * [`OrdF64`] — a total-order wrapper over finite `f64` values, the key
//!   type used throughout the scheduler (latencies and priorities are
//!   finite by construction).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod avl;
pub mod dary;
pub mod epoch_heap;
pub mod fold;
pub mod heap;
pub mod ordf64;
pub mod priority_list;
pub mod select;

pub use avl::AvlTree;
pub use dary::DaryHeap;
pub use epoch_heap::EpochHeap;
pub use heap::IndexedHeap;
pub use ordf64::OrdF64;
pub use priority_list::PriorityList;
pub use select::{select_smallest, select_smallest_into};
