//! An indexed d-ary min-heap.
//!
//! The unified list-scheduling pipeline keeps its free list `α` here: a
//! d-ary heap trades slightly more sibling comparisons per level for a
//! much shallower tree and cache-friendly child blocks, which wins for
//! the insert-heavy / pop-heavy α workload (every task enters and leaves
//! exactly once). Like [`crate::IndexedHeap`], entries are addressed by
//! dense caller-chosen `usize` ids through an id → position index, so
//! membership tests and in-place key updates stay O(1)/O(log n).
//!
//! The default arity of 4 is the usual sweet spot on modern caches; any
//! `D >= 2` works.

/// A d-ary min-heap keyed by `P: Ord`, addressable by dense `usize` ids.
///
/// Pop order among *distinct* keys is fully determined by `Ord`; the
/// scheduler guarantees key uniqueness (its keys embed a random
/// tie-break token), which makes every pop sequence deterministic.
///
/// ```
/// use ftcollections::DaryHeap;
///
/// let mut h: DaryHeap<u32, 4> = DaryHeap::new(8);
/// h.push(0, 50);
/// h.push(1, 30);
/// h.push(2, 40);
/// assert_eq!(h.pop(), Some((1, 30)));
/// assert_eq!(h.pop(), Some((2, 40)));
/// assert_eq!(h.pop(), Some((0, 50)));
/// ```
#[derive(Debug, Clone)]
pub struct DaryHeap<P, const D: usize = 4> {
    /// Heap-ordered `(priority, id)` pairs.
    data: Vec<(P, usize)>,
    /// `pos[id]` = index into `data`, or `usize::MAX` when absent.
    pos: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl<P: Ord, const D: usize> Default for DaryHeap<P, D> {
    fn default() -> Self {
        DaryHeap::new(0)
    }
}

impl<P: Ord, const D: usize> DaryHeap<P, D> {
    /// Creates a heap able to hold ids `0..capacity` (grows on demand).
    pub fn new(capacity: usize) -> Self {
        assert!(D >= 2, "heap arity must be at least 2");
        DaryHeap {
            data: Vec::with_capacity(capacity),
            pos: vec![ABSENT; capacity],
        }
    }

    /// Number of entries currently in the heap.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the heap is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether `id` is currently enqueued.
    #[inline]
    pub fn contains(&self, id: usize) -> bool {
        id < self.pos.len() && self.pos[id] != ABSENT
    }

    /// Current priority of `id`, if enqueued.
    pub fn priority(&self, id: usize) -> Option<&P> {
        if self.contains(id) {
            Some(&self.data[self.pos[id]].0)
        } else {
            None
        }
    }

    /// Removes every entry, keeping the allocated capacity — O(capacity).
    /// Reusing a heap across scheduler runs this way is allocation-free
    /// as long as the id universe does not grow.
    pub fn clear(&mut self) {
        self.data.clear();
        self.pos.fill(ABSENT);
    }

    fn ensure_id(&mut self, id: usize) {
        if id >= self.pos.len() {
            self.pos.resize(id + 1, ABSENT);
        }
    }

    /// Inserts `id` with `priority`.
    ///
    /// # Panics
    /// Panics if `id` is already enqueued.
    pub fn push(&mut self, id: usize, priority: P) {
        self.ensure_id(id);
        assert_eq!(self.pos[id], ABSENT, "id {id} already enqueued");
        self.data.push((priority, id));
        let i = self.data.len() - 1;
        self.pos[id] = i;
        self.sift_up(i);
    }

    /// Removes and returns the minimum entry.
    pub fn pop(&mut self) -> Option<(usize, P)> {
        if self.data.is_empty() {
            return None;
        }
        let last = self.data.len() - 1;
        self.data.swap(0, last);
        let (priority, id) = self.data.pop().expect("nonempty");
        self.pos[id] = ABSENT;
        if !self.data.is_empty() {
            self.pos[self.data[0].1] = 0;
            self.sift_down(0);
        }
        Some((id, priority))
    }

    /// Returns the minimum entry without removing it.
    pub fn peek(&self) -> Option<(usize, &P)> {
        self.data.first().map(|(p, id)| (*id, p))
    }

    /// Removes `id` from the heap, returning its priority.
    pub fn remove(&mut self, id: usize) -> Option<P> {
        if !self.contains(id) {
            return None;
        }
        let i = self.pos[id];
        let last = self.data.len() - 1;
        self.data.swap(i, last);
        let (priority, removed_id) = self.data.pop().expect("nonempty");
        debug_assert_eq!(removed_id, id);
        self.pos[id] = ABSENT;
        if i < self.data.len() {
            self.pos[self.data[i].1] = i;
            // The swapped-in leaf may belong either above or below `i`.
            self.sift_up(i);
            self.sift_down(i);
        }
        Some(priority)
    }

    /// Lowers the priority of `id`. Panics if absent or if the new
    /// priority is greater than the current one.
    pub fn decrease_key(&mut self, id: usize, priority: P) {
        assert!(self.contains(id), "id {id} not enqueued");
        let i = self.pos[id];
        assert!(
            priority <= self.data[i].0,
            "decrease_key must not increase the priority"
        );
        self.data[i].0 = priority;
        self.sift_up(i);
    }

    /// Sets the priority of `id` to any value, inserting it if absent.
    pub fn update_key(&mut self, id: usize, priority: P) {
        self.ensure_id(id);
        if self.pos[id] == ABSENT {
            self.push(id, priority);
            return;
        }
        let i = self.pos[id];
        let up = priority < self.data[i].0;
        self.data[i].0 = priority;
        if up {
            self.sift_up(i);
        } else {
            self.sift_down(i);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / D;
            if self.data[i].0 < self.data[parent].0 {
                self.data.swap(i, parent);
                self.pos[self.data[i].1] = i;
                self.pos[self.data[parent].1] = parent;
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.data.len();
        loop {
            let first = D * i + 1;
            if first >= n {
                break;
            }
            let mut smallest = i;
            for c in first..(first + D).min(n) {
                if self.data[c].0 < self.data[smallest].0 {
                    smallest = c;
                }
            }
            if smallest == i {
                break;
            }
            self.data.swap(i, smallest);
            self.pos[self.data[i].1] = i;
            self.pos[self.data[smallest].1] = smallest;
            i = smallest;
        }
    }

    /// Verifies the heap property and index consistency; used by tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        for i in 1..self.data.len() {
            let parent = (i - 1) / D;
            if self.data[i].0 < self.data[parent].0 {
                return Err(format!("heap property violated at index {i}"));
            }
        }
        for (i, (_, id)) in self.data.iter().enumerate() {
            if self.pos[*id] != i {
                return Err(format!("pos index stale for id {id}"));
            }
        }
        let live = self.pos.iter().filter(|&&p| p != ABSENT).count();
        if live != self.data.len() {
            return Err("pos/data length mismatch".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_sorted_all_arities() {
        fn run<const D: usize>() {
            let mut h: DaryHeap<i32, D> = DaryHeap::new(4);
            let xs = [9, 4, 7, 1, 8, 3, 0, 6, 2, 5, 11, 10];
            for (id, &x) in xs.iter().enumerate() {
                h.push(id, x);
                h.check_invariants().unwrap();
            }
            let mut out = Vec::new();
            while let Some((_, p)) = h.pop() {
                out.push(p);
                h.check_invariants().unwrap();
            }
            assert_eq!(out, (0..12).collect::<Vec<_>>());
        }
        run::<2>();
        run::<3>();
        run::<4>();
        run::<8>();
    }

    #[test]
    fn max_heap_via_reverse() {
        use std::cmp::Reverse;
        let mut h: DaryHeap<Reverse<(u64, u64)>, 4> = DaryHeap::new(4);
        h.push(0, Reverse((10, 1)));
        h.push(1, Reverse((30, 2)));
        h.push(2, Reverse((30, 9)));
        // Max (priority, tiebreak) pops first: (30, 9) beats (30, 2).
        assert_eq!(h.pop(), Some((2, Reverse((30, 9)))));
        assert_eq!(h.pop(), Some((1, Reverse((30, 2)))));
        assert_eq!(h.pop(), Some((0, Reverse((10, 1)))));
    }

    #[test]
    fn remove_and_update() {
        let mut h: DaryHeap<i32, 4> = DaryHeap::new(8);
        for id in 0..8 {
            h.push(id, (id as i32 * 13) % 7);
        }
        assert!(h.remove(3).is_some());
        assert!(!h.contains(3));
        assert_eq!(h.remove(3), None);
        h.check_invariants().unwrap();
        h.update_key(5, -10);
        assert_eq!(h.peek().map(|(id, _)| id), Some(5));
        h.update_key(5, 100);
        assert_ne!(h.peek().map(|(id, _)| id), Some(5));
        h.check_invariants().unwrap();
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut h: DaryHeap<usize, 4> = DaryHeap::new(1);
        for id in 0..100 {
            h.push(id, 100 - id);
        }
        assert_eq!(h.len(), 100);
        assert_eq!(h.pop(), Some((99, 1)));
        h.check_invariants().unwrap();
    }

    #[test]
    fn clear_resets_membership() {
        let mut h: DaryHeap<i32, 4> = DaryHeap::new(8);
        for id in 0..8 {
            h.push(id, id as i32);
        }
        h.clear();
        assert!(h.is_empty());
        assert!(!h.contains(3));
        h.push(3, -1);
        assert_eq!(h.pop(), Some((3, -1)));
        h.check_invariants().unwrap();
    }

    #[test]
    fn priority_lookup_and_empty_pop() {
        let mut h: DaryHeap<i32, 4> = DaryHeap::new(4);
        assert_eq!(h.pop(), None);
        h.push(2, 42);
        assert_eq!(h.priority(2), Some(&42));
        assert_eq!(h.priority(0), None);
        assert!(!h.is_empty());
    }
}
