//! An AVL-balanced ordered map, implemented over an index arena.
//!
//! This is the balanced search tree the FTSA paper prescribes for the free
//! list `α` (Section 4.1): insert, remove, min and max are all
//! `O(log n)`, and the tree supports in-order traversal. The arena
//! representation (`Vec` of nodes + free list) avoids per-node allocation
//! and keeps the structure cache-friendly, per the workspace performance
//! guidelines.
//!
//! ```
//! use ftcollections::AvlTree;
//!
//! let mut t = AvlTree::new();
//! t.insert(3, "c");
//! t.insert(1, "a");
//! t.insert(2, "b");
//! assert_eq!(t.min(), Some((&1, &"a")));
//! assert_eq!(t.max(), Some((&3, &"c")));
//! assert_eq!(t.remove(&2), Some("b"));
//! assert_eq!(t.len(), 2);
//! ```

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node<K, V> {
    key: K,
    /// `Some` for live nodes; `None` only transiently for slots sitting on
    /// the free list (the value has been moved out to the caller).
    value: Option<V>,
    left: u32,
    right: u32,
    /// Height of the subtree rooted here (leaf = 1).
    height: i8,
}

/// An ordered map balanced as an AVL tree.
///
/// Keys must implement [`Ord`]. Inserting an existing key replaces the
/// value and returns the previous one, which matches how the scheduler uses
/// the tree: keys are `(priority, unique tiebreak)` pairs, so genuine
/// duplicates never arise.
#[derive(Debug, Clone)]
pub struct AvlTree<K, V> {
    nodes: Vec<Node<K, V>>,
    /// Indices of vacated arena slots, reused before growing `nodes`.
    free: Vec<u32>,
    root: u32,
    len: usize,
}

impl<K: Ord, V> Default for AvlTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V> AvlTree<K, V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        AvlTree {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            len: 0,
        }
    }

    /// Creates an empty tree with room for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        AvlTree {
            nodes: Vec::with_capacity(cap),
            free: Vec::new(),
            root: NIL,
            len: 0,
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every entry, keeping allocated capacity.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.root = NIL;
        self.len = 0;
    }

    #[inline]
    fn height(&self, idx: u32) -> i8 {
        if idx == NIL {
            0
        } else {
            self.nodes[idx as usize].height
        }
    }

    #[inline]
    fn update_height(&mut self, idx: u32) {
        let hl = self.height(self.nodes[idx as usize].left);
        let hr = self.height(self.nodes[idx as usize].right);
        self.nodes[idx as usize].height = 1 + hl.max(hr);
    }

    #[inline]
    fn balance_factor(&self, idx: u32) -> i8 {
        let n = &self.nodes[idx as usize];
        self.height(n.left) - self.height(n.right)
    }

    fn alloc(&mut self, key: K, value: V) -> u32 {
        let node = Node {
            key,
            value: Some(value),
            left: NIL,
            right: NIL,
            height: 1,
        };
        match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    /// Right rotation around `y`; returns the new subtree root.
    fn rotate_right(&mut self, y: u32) -> u32 {
        let x = self.nodes[y as usize].left;
        let t2 = self.nodes[x as usize].right;
        self.nodes[x as usize].right = y;
        self.nodes[y as usize].left = t2;
        self.update_height(y);
        self.update_height(x);
        x
    }

    /// Left rotation around `x`; returns the new subtree root.
    fn rotate_left(&mut self, x: u32) -> u32 {
        let y = self.nodes[x as usize].right;
        let t2 = self.nodes[y as usize].left;
        self.nodes[y as usize].left = x;
        self.nodes[x as usize].right = t2;
        self.update_height(x);
        self.update_height(y);
        y
    }

    /// Restores the AVL invariant at `idx`, returning the new subtree root.
    fn rebalance(&mut self, idx: u32) -> u32 {
        self.update_height(idx);
        let bf = self.balance_factor(idx);
        if bf > 1 {
            // Left-heavy.
            let left = self.nodes[idx as usize].left;
            if self.balance_factor(left) < 0 {
                let new_left = self.rotate_left(left);
                self.nodes[idx as usize].left = new_left;
            }
            self.rotate_right(idx)
        } else if bf < -1 {
            // Right-heavy.
            let right = self.nodes[idx as usize].right;
            if self.balance_factor(right) > 0 {
                let new_right = self.rotate_right(right);
                self.nodes[idx as usize].right = new_right;
            }
            self.rotate_left(idx)
        } else {
            idx
        }
    }

    /// Inserts `key → value`. Returns the previous value if the key was
    /// already present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let (new_root, old) = self.insert_at(self.root, key, value);
        self.root = new_root;
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_at(&mut self, idx: u32, key: K, value: V) -> (u32, Option<V>) {
        if idx == NIL {
            return (self.alloc(key, value), None);
        }
        let ord = key.cmp(&self.nodes[idx as usize].key);
        let old = match ord {
            std::cmp::Ordering::Less => {
                let (child, old) = self.insert_at(self.nodes[idx as usize].left, key, value);
                self.nodes[idx as usize].left = child;
                old
            }
            std::cmp::Ordering::Greater => {
                let (child, old) = self.insert_at(self.nodes[idx as usize].right, key, value);
                self.nodes[idx as usize].right = child;
                old
            }
            std::cmp::Ordering::Equal => {
                let prev = self.nodes[idx as usize].value.replace(value);
                return (idx, prev);
            }
        };
        (self.rebalance(idx), old)
    }

    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut idx = self.root;
        while idx != NIL {
            let n = &self.nodes[idx as usize];
            match key.cmp(&n.key) {
                std::cmp::Ordering::Less => idx = n.left,
                std::cmp::Ordering::Greater => idx = n.right,
                std::cmp::Ordering::Equal => return n.value.as_ref(),
            }
        }
        None
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let (new_root, removed) = self.remove_at(self.root, key);
        self.root = new_root;
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    fn remove_at(&mut self, idx: u32, key: &K) -> (u32, Option<V>) {
        if idx == NIL {
            return (NIL, None);
        }
        let ord = key.cmp(&self.nodes[idx as usize].key);
        match ord {
            std::cmp::Ordering::Less => {
                let (child, removed) = self.remove_at(self.nodes[idx as usize].left, key);
                self.nodes[idx as usize].left = child;
                if removed.is_none() {
                    return (idx, None);
                }
                (self.rebalance(idx), removed)
            }
            std::cmp::Ordering::Greater => {
                let (child, removed) = self.remove_at(self.nodes[idx as usize].right, key);
                self.nodes[idx as usize].right = child;
                if removed.is_none() {
                    return (idx, None);
                }
                (self.rebalance(idx), removed)
            }
            std::cmp::Ordering::Equal => {
                let left = self.nodes[idx as usize].left;
                let right = self.nodes[idx as usize].right;
                if left == NIL || right == NIL {
                    let child = if left == NIL { right } else { left };
                    let value = self.nodes[idx as usize].value.take();
                    debug_assert!(value.is_some(), "live node must hold a value");
                    self.free.push(idx);
                    (child, value)
                } else {
                    // Two children: swap payload with the in-order successor
                    // (min of the right subtree), then delete the key from
                    // the right subtree where it now sits in a node with at
                    // most one child.
                    let succ = self.min_index(right);
                    let (a, b) = index_pair(&mut self.nodes, idx as usize, succ as usize);
                    std::mem::swap(&mut a.key, &mut b.key);
                    std::mem::swap(&mut a.value, &mut b.value);
                    let (new_right, removed) = self.remove_at(right, key);
                    self.nodes[idx as usize].right = new_right;
                    (self.rebalance(idx), removed)
                }
            }
        }
    }

    fn min_index(&self, mut idx: u32) -> u32 {
        while self.nodes[idx as usize].left != NIL {
            idx = self.nodes[idx as usize].left;
        }
        idx
    }

    fn max_index(&self, mut idx: u32) -> u32 {
        while self.nodes[idx as usize].right != NIL {
            idx = self.nodes[idx as usize].right;
        }
        idx
    }

    /// Smallest key and its value.
    pub fn min(&self) -> Option<(&K, &V)> {
        if self.root == NIL {
            return None;
        }
        let idx = self.min_index(self.root);
        let n = &self.nodes[idx as usize];
        Some((&n.key, n.value.as_ref().expect("live node")))
    }

    /// Largest key and its value.
    pub fn max(&self) -> Option<(&K, &V)> {
        if self.root == NIL {
            return None;
        }
        let idx = self.max_index(self.root);
        let n = &self.nodes[idx as usize];
        Some((&n.key, n.value.as_ref().expect("live node")))
    }

    /// Removes and returns the entry with the largest key.
    pub fn pop_max(&mut self) -> Option<(K, V)>
    where
        K: Clone,
    {
        let (k, _) = self.max()?;
        let k = k.clone();
        let v = self.remove(&k).expect("max key must be removable");
        Some((k, v))
    }

    /// Removes and returns the entry with the smallest key.
    pub fn pop_min(&mut self) -> Option<(K, V)>
    where
        K: Clone,
    {
        let (k, _) = self.min()?;
        let k = k.clone();
        let v = self.remove(&k).expect("min key must be removable");
        Some((k, v))
    }

    /// In-order (ascending key) iterator.
    pub fn iter(&self) -> Iter<'_, K, V> {
        let mut stack = Vec::with_capacity(self.height(self.root) as usize + 1);
        let mut idx = self.root;
        while idx != NIL {
            stack.push(idx);
            idx = self.nodes[idx as usize].left;
        }
        Iter { tree: self, stack }
    }

    /// Collects keys in ascending order (mainly for tests/diagnostics).
    pub fn keys(&self) -> Vec<&K> {
        self.iter().map(|(k, _)| k).collect()
    }

    /// Verifies the AVL invariants; used by tests.
    ///
    /// Checks (a) strict key ordering, (b) height bookkeeping, (c) balance
    /// factors in `{-1, 0, 1}`, (d) `len` consistency, (e) all live nodes
    /// hold values. Cost is `O(n)`.
    pub fn check_invariants(&self) -> Result<(), String> {
        fn walk<K: Ord, V>(
            t: &AvlTree<K, V>,
            idx: u32,
            lo: Option<&K>,
            hi: Option<&K>,
        ) -> Result<(i8, usize), String> {
            if idx == NIL {
                return Ok((0, 0));
            }
            let n = &t.nodes[idx as usize];
            if n.value.is_none() {
                return Err("live node without value".into());
            }
            if let Some(lo) = lo {
                if n.key <= *lo {
                    return Err("key ordering violated (left bound)".into());
                }
            }
            if let Some(hi) = hi {
                if n.key >= *hi {
                    return Err("key ordering violated (right bound)".into());
                }
            }
            let (hl, cl) = walk(t, n.left, lo, Some(&n.key))?;
            let (hr, cr) = walk(t, n.right, Some(&n.key), hi)?;
            let h = 1 + hl.max(hr);
            if h != n.height {
                return Err(format!("stale height: stored {}, actual {}", n.height, h));
            }
            if (hl - hr).abs() > 1 {
                return Err(format!("balance factor {} out of range", hl - hr));
            }
            Ok((h, 1 + cl + cr))
        }
        let (_, count) = walk(self, self.root, None, None)?;
        if count != self.len {
            return Err(format!(
                "len mismatch: stored {}, actual {}",
                self.len, count
            ));
        }
        Ok(())
    }
}

/// Borrows two distinct arena slots mutably.
fn index_pair<T>(v: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    assert_ne!(i, j, "index_pair requires distinct indices");
    if i < j {
        let (a, b) = v.split_at_mut(j);
        (&mut a[i], &mut b[0])
    } else {
        let (a, b) = v.split_at_mut(i);
        (&mut b[0], &mut a[j])
    }
}

/// In-order iterator over an [`AvlTree`].
pub struct Iter<'a, K, V> {
    tree: &'a AvlTree<K, V>,
    stack: Vec<u32>,
}

impl<'a, K: Ord, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let idx = self.stack.pop()?;
        let n = &self.tree.nodes[idx as usize];
        let mut child = n.right;
        while child != NIL {
            self.stack.push(child);
            child = self.tree.nodes[child as usize].left;
        }
        Some((&n.key, n.value.as_ref().expect("live node")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t: AvlTree<i32, i32> = AvlTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.min(), None);
        assert_eq!(t.max(), None);
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = AvlTree::new();
        for i in 0..100 {
            assert_eq!(t.insert(i, i * 10), None);
        }
        assert_eq!(t.len(), 100);
        t.check_invariants().unwrap();
        for i in 0..100 {
            assert_eq!(t.get(&i), Some(&(i * 10)));
        }
        for i in (0..100).step_by(2) {
            assert_eq!(t.remove(&i), Some(i * 10));
        }
        assert_eq!(t.len(), 50);
        t.check_invariants().unwrap();
        for i in 0..100 {
            assert_eq!(t.contains_key(&i), i % 2 == 1);
        }
    }

    #[test]
    fn insert_replaces_existing() {
        let mut t = AvlTree::new();
        assert_eq!(t.insert(7, "a"), None);
        assert_eq!(t.insert(7, "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&7), Some(&"b"));
    }

    #[test]
    fn ascending_and_descending_insertions_stay_balanced() {
        let mut up = AvlTree::new();
        let mut down = AvlTree::new();
        for i in 0..1024 {
            up.insert(i, ());
            down.insert(1023 - i, ());
        }
        up.check_invariants().unwrap();
        down.check_invariants().unwrap();
        // An AVL tree with n = 1024 nodes has height at most
        // 1.44 * log2(n + 2) ≈ 14.5.
        assert!(up.height(up.root) <= 15);
        assert!(down.height(down.root) <= 15);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut t = AvlTree::new();
        for &x in &[5, 3, 8, 1, 4, 7, 9, 2, 6, 0] {
            t.insert(x, x * x);
        }
        let pairs: Vec<_> = t.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(pairs, (0..10).map(|x| (x, x * x)).collect::<Vec<_>>());
    }

    #[test]
    fn pop_max_pops_in_descending_order() {
        let mut t = AvlTree::new();
        for &x in &[4, 1, 9, 2, 8] {
            t.insert(x, ());
        }
        let mut popped = Vec::new();
        while let Some((k, _)) = t.pop_max() {
            popped.push(k);
            t.check_invariants().unwrap();
        }
        assert_eq!(popped, vec![9, 8, 4, 2, 1]);
    }

    #[test]
    fn pop_min_pops_in_ascending_order() {
        let mut t = AvlTree::new();
        for &x in &[4, 1, 9, 2, 8] {
            t.insert(x, ());
        }
        let mut popped = Vec::new();
        while let Some((k, _)) = t.pop_min() {
            popped.push(k);
        }
        assert_eq!(popped, vec![1, 2, 4, 8, 9]);
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut t = AvlTree::new();
        t.insert(1, ());
        assert_eq!(t.remove(&2), None);
        assert_eq!(t.len(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn slots_are_recycled() {
        let mut t = AvlTree::new();
        for i in 0..64 {
            t.insert(i, i);
        }
        for i in 0..64 {
            t.remove(&i);
        }
        let arena_size = t.nodes.len();
        for i in 0..64 {
            t.insert(i, i);
        }
        assert_eq!(t.nodes.len(), arena_size, "freed slots must be reused");
        t.check_invariants().unwrap();
    }

    #[test]
    fn clear_resets() {
        let mut t = AvlTree::new();
        for i in 0..10 {
            t.insert(i, ());
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.min(), None);
        t.insert(5, ());
        assert_eq!(t.len(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn two_child_removal_deep() {
        // Build a tree where removals repeatedly hit the two-children case.
        let mut t = AvlTree::new();
        for i in 0..200 {
            t.insert((i * 37) % 200, i);
        }
        // Remove interior keys.
        for i in 50..150 {
            assert!(t.remove(&i).is_some());
            t.check_invariants().unwrap();
        }
        assert_eq!(t.len(), 100);
    }
}
