//! The FTSA free-task list `α`: a max-priority structure over tasks.
//!
//! Section 4.1 of the paper: "We maintain a priority list `α` (that
//! contains free tasks) which is implemented by using a balanced search
//! tree data structure (AVL). […] The head function `H(α)` returns the
//! first task in the sorted list `α`, which is the task with the highest
//! priority (ties are broken randomly)."
//!
//! Random tie-breaking is realized by attaching a caller-supplied tiebreak
//! token (drawn from the run's seeded RNG) to each insertion; the AVL key
//! is `(priority, tiebreak)`, so equal priorities are ordered by the random
//! token and the head of the list is exactly the paper's `H(α)`.

use crate::avl::AvlTree;
use crate::ordf64::OrdF64;

/// Composite AVL key: priority first, random tiebreak second.
type Key = (OrdF64, u64);

/// A max-priority list over dense `usize` item ids (task indices).
///
/// ```
/// use ftcollections::PriorityList;
///
/// let mut alpha = PriorityList::new(4);
/// alpha.insert(0, 10.0, 111);
/// alpha.insert(1, 30.0, 222);
/// alpha.insert(2, 30.0, 555); // tie with task 1, larger tiebreak wins
/// assert_eq!(alpha.peek(), Some(2));
/// assert_eq!(alpha.pop(), Some(2));
/// assert_eq!(alpha.pop(), Some(1));
/// assert_eq!(alpha.pop(), Some(0));
/// assert_eq!(alpha.pop(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PriorityList {
    tree: AvlTree<Key, usize>,
    /// `key_of[item]` = the AVL key under which `item` is stored.
    key_of: Vec<Option<Key>>,
}

impl PriorityList {
    /// Creates a list sized for ids `0..capacity` (grows on demand).
    pub fn new(capacity: usize) -> Self {
        PriorityList {
            tree: AvlTree::with_capacity(capacity),
            key_of: vec![None; capacity],
        }
    }

    /// Number of items in the list.
    #[inline]
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Whether `item` is in the list.
    pub fn contains(&self, item: usize) -> bool {
        item < self.key_of.len() && self.key_of[item].is_some()
    }

    /// Current priority of `item`, if present.
    pub fn priority(&self, item: usize) -> Option<f64> {
        if item < self.key_of.len() {
            self.key_of[item].map(|(p, _)| p.get())
        } else {
            None
        }
    }

    fn ensure_id(&mut self, item: usize) {
        if item >= self.key_of.len() {
            self.key_of.resize(item + 1, None);
        }
    }

    /// Inserts `item` with the given priority and random tiebreak token.
    ///
    /// # Panics
    /// Panics if `item` is already present (free tasks enter `α` exactly
    /// once in FTSA) or if `priority` is NaN.
    pub fn insert(&mut self, item: usize, priority: f64, tiebreak: u64) {
        self.ensure_id(item);
        assert!(
            self.key_of[item].is_none(),
            "item {item} already in the list"
        );
        let key = (OrdF64::new(priority), tiebreak);
        let prev = self.tree.insert(key, item);
        assert!(prev.is_none(), "duplicate (priority, tiebreak) key");
        self.key_of[item] = Some(key);
    }

    /// Changes the priority of `item` in place (used when priority values
    /// of successors are refreshed). No-op if absent.
    pub fn update(&mut self, item: usize, priority: f64, tiebreak: u64) {
        if self.remove(item) {
            self.insert(item, priority, tiebreak);
        }
    }

    /// Removes `item`; returns whether it was present.
    pub fn remove(&mut self, item: usize) -> bool {
        if item >= self.key_of.len() {
            return false;
        }
        match self.key_of[item].take() {
            Some(key) => {
                let removed = self.tree.remove(&key);
                debug_assert_eq!(removed, Some(item));
                true
            }
            None => false,
        }
    }

    /// The head `H(α)`: the item with the highest priority (random ties).
    pub fn peek(&self) -> Option<usize> {
        self.tree.max().map(|(_, &item)| item)
    }

    /// Removes and returns the head `H(α)`.
    pub fn pop(&mut self) -> Option<usize> {
        let (key, item) = self.tree.pop_max()?;
        debug_assert_eq!(self.key_of[item], Some(key));
        self.key_of[item] = None;
        Some(item)
    }

    /// Items in descending priority order (diagnostics / tests).
    pub fn descending(&self) -> Vec<usize> {
        let mut v: Vec<(Key, usize)> = self.tree.iter().map(|(k, &i)| (*k, i)).collect();
        v.reverse();
        v.into_iter().map(|(_, i)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_order_follows_priority() {
        let mut l = PriorityList::new(8);
        l.insert(0, 1.0, 0);
        l.insert(1, 5.0, 0);
        l.insert(2, 3.0, 0);
        assert_eq!(l.pop(), Some(1));
        assert_eq!(l.pop(), Some(2));
        assert_eq!(l.pop(), Some(0));
        assert!(l.is_empty());
    }

    #[test]
    fn ties_broken_by_token() {
        let mut l = PriorityList::new(4);
        l.insert(0, 2.0, 10);
        l.insert(1, 2.0, 99);
        l.insert(2, 2.0, 55);
        assert_eq!(l.descending(), vec![1, 2, 0]);
    }

    #[test]
    fn remove_then_pop_skips_item() {
        let mut l = PriorityList::new(4);
        l.insert(0, 1.0, 0);
        l.insert(1, 2.0, 0);
        assert!(l.remove(1));
        assert!(!l.remove(1));
        assert_eq!(l.pop(), Some(0));
    }

    #[test]
    fn update_moves_item() {
        let mut l = PriorityList::new(4);
        l.insert(0, 1.0, 7);
        l.insert(1, 2.0, 8);
        l.update(0, 9.0, 7);
        assert_eq!(l.peek(), Some(0));
        assert_eq!(l.priority(0), Some(9.0));
    }

    #[test]
    #[should_panic]
    fn double_insert_panics() {
        let mut l = PriorityList::new(2);
        l.insert(0, 1.0, 0);
        l.insert(0, 2.0, 1);
    }

    #[test]
    fn grows_past_capacity() {
        let mut l = PriorityList::new(1);
        for i in 0..50 {
            l.insert(i, i as f64, i as u64);
        }
        assert_eq!(l.len(), 50);
        assert_eq!(l.peek(), Some(49));
    }

    #[test]
    fn contains_and_priority() {
        let mut l = PriorityList::new(4);
        l.insert(3, 4.5, 1);
        assert!(l.contains(3));
        assert!(!l.contains(2));
        assert!(!l.contains(1000));
        assert_eq!(l.priority(3), Some(4.5));
        assert_eq!(l.priority(2), None);
    }
}
