//! Property-based tests: the AVL tree must behave exactly like
//! `BTreeMap`, and the indexed heap like a sorted oracle, across random
//! operation sequences.

use ftcollections::{AvlTree, IndexedHeap, OrdF64, PriorityList};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum MapOp {
    Insert(i32, i32),
    Remove(i32),
    Get(i32),
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (any::<i32>(), any::<i32>()).prop_map(|(k, v)| MapOp::Insert(k % 64, v)),
        any::<i32>().prop_map(|k| MapOp::Remove(k % 64)),
        any::<i32>().prop_map(|k| MapOp::Get(k % 64)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn avl_matches_btreemap(ops in proptest::collection::vec(map_op(), 1..200)) {
        let mut avl: AvlTree<i32, i32> = AvlTree::new();
        let mut oracle: BTreeMap<i32, i32> = BTreeMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    prop_assert_eq!(avl.insert(k, v), oracle.insert(k, v));
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(avl.remove(&k), oracle.remove(&k));
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(avl.get(&k), oracle.get(&k));
                }
            }
            prop_assert_eq!(avl.len(), oracle.len());
        }
        avl.check_invariants().map_err(TestCaseError::fail)?;
        // Full in-order comparison at the end.
        let got: Vec<_> = avl.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<_> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
        // Extremes agree.
        prop_assert_eq!(avl.min().map(|(k, _)| *k), oracle.keys().next().copied());
        prop_assert_eq!(avl.max().map(|(k, _)| *k), oracle.keys().next_back().copied());
    }

    #[test]
    fn heap_pops_sorted_after_updates(
        entries in proptest::collection::vec((0usize..64, 0i64..1000), 1..100),
        updates in proptest::collection::vec((0usize..64, 0i64..1000), 0..50),
    ) {
        let mut heap: IndexedHeap<i64> = IndexedHeap::new(64);
        let mut oracle: BTreeMap<usize, i64> = BTreeMap::new();
        for (id, p) in entries {
            if !heap.contains(id) {
                heap.push(id, p);
                oracle.insert(id, p);
            }
        }
        for (id, p) in updates {
            if oracle.contains_key(&id) {
                heap.update_key(id, p);
                oracle.insert(id, p);
            }
        }
        heap.check_invariants().map_err(TestCaseError::fail)?;
        let mut popped = Vec::new();
        while let Some((id, p)) = heap.pop() {
            prop_assert_eq!(oracle.remove(&id), Some(p));
            popped.push(p);
        }
        prop_assert!(oracle.is_empty());
        let mut sorted = popped.clone();
        sorted.sort();
        prop_assert_eq!(popped, sorted);
    }

    #[test]
    fn heap_remove_is_consistent(
        ids in proptest::collection::vec(0usize..32, 1..64),
        kill in proptest::collection::vec(0usize..32, 0..16),
    ) {
        let mut heap: IndexedHeap<usize> = IndexedHeap::new(32);
        let mut live = std::collections::BTreeSet::new();
        for id in ids {
            if !heap.contains(id) {
                heap.push(id, id * 7 % 13);
                live.insert(id);
            }
        }
        for id in kill {
            let was = heap.remove(id).is_some();
            prop_assert_eq!(was, live.remove(&id));
            heap.check_invariants().map_err(TestCaseError::fail)?;
        }
        prop_assert_eq!(heap.len(), live.len());
    }

    #[test]
    fn priority_list_head_is_argmax(
        items in proptest::collection::vec((0.0f64..100.0, any::<u64>()), 1..80),
    ) {
        let mut l = PriorityList::new(items.len());
        for (i, (p, tb)) in items.iter().enumerate() {
            l.insert(i, *p, *tb);
        }
        // Head must hold the maximum (priority, tiebreak) pair.
        let head = l.peek().unwrap();
        let maxkey = items
            .iter()
            .enumerate()
            .max_by_key(|(_, (p, tb))| (OrdF64::new(*p), *tb))
            .map(|(i, _)| i)
            .unwrap();
        prop_assert_eq!(head, maxkey);
        // Popping everything yields strictly descending keys.
        let mut prev: Option<(OrdF64, u64)> = None;
        while let Some(item) = l.pop() {
            let key = (OrdF64::new(items[item].0), items[item].1);
            if let Some(p) = prev {
                prop_assert!(key < p);
            }
            prev = Some(key);
        }
    }
}
