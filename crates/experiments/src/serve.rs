//! `ftsched serve` — a sharded streaming campaign service over raw
//! `std::net`.
//!
//! # Wire protocol
//!
//! Hand-rolled HTTP/1.1, one request per connection (`Connection:
//! close` on every response; the build environment has no HTTP
//! dependency and needs none):
//!
//! * `GET /healthz` → `200 ok` — liveness probe.
//! * `POST /campaigns` with a [`CampaignSpec`] JSON body → `200` with
//!   `Transfer-Encoding: chunked` and `Content-Type: application/json`.
//!   The de-chunked body is **byte-identical** to the file the CLI
//!   writes for the same spec (`ftsched campaign … --out DIR` →
//!   `<id>.campaign.json`), so `cmp` between the two always passes.
//! * Malformed requests never reach a worker: a body that is not valid
//!   JSON, does not decode as a spec, or fails
//!   [`CampaignSpec::validate`] is a `400`; a missing `Content-Length`
//!   is a `411`; a body over [`ServeConfig::max_body`] is a `413`;
//!   unknown paths are `404`, unsupported methods `405`. The hardened
//!   validator makes the executor's [`CampaignError`] paths
//!   structurally unreachable from the wire.
//!
//! Each streamed chunk carries a `;seq=<n>` chunk extension with a
//! strictly increasing sequence number from 0 — standard de-chunkers
//! (curl included) ignore extensions, while protocol tests can assert
//! gapless ordering.
//!
//! # Sharding and determinism
//!
//! A run shards the campaign's **group index range** across
//! [`ServeConfig::threads`] workers: shard *i* is group *i*, covering
//! the row-major cell range `[i·reps, (i+1)·reps)`. Workers pull group
//! indices from a shared atomic cursor and evaluate cells through the
//! same [`evaluate_any_cell_into`] dispatch and indexed per-cell seeds
//! as the batch executor, then render each group with
//! [`finalize_group`] — each group's bytes are a pure function of
//! `(spec, group index)`, so responses are **byte-reproducible at any
//! shard or thread count**. The coordinator re-orders out-of-order
//! completions and flushes groups strictly in index order.
//!
//! # Idempotency
//!
//! Specs are keyed by a content hash (FNV-1a of the canonical spec
//! JSON, re-serialized after parse + validate so formatting differences
//! collapse). Resubmitting a spec returns the existing run: the first
//! submission answers `X-Campaign-Run: new` and computes; concurrent or
//! later duplicates answer `X-Campaign-Run: existing` and replay the
//! stored bytes. Retries never re-execute or alter an outcome.
//!
//! # Backpressure and failure policy
//!
//! The gateway follows the waiver-exchange queue discipline: ingress is
//! a **non-blocking** bounded handoff (`try_send`; a full queue is an
//! immediate `503`, the acceptor never blocks), and the per-run result
//! sink is **lossless** — group results are never dropped. If a cell
//! somehow fails mid-run (unreachable for validated specs), the run
//! halts loudly: the error is logged, the chunked stream is cut without
//! its terminating chunk (clients see a transfer error, never silently
//! truncated data), the run slot is marked failed — and the server
//! itself stays alive.

use crate::campaign::{
    evaluate_any_cell_into, finalize_group, CampaignError, CampaignSpec, CellContext, CellPlan,
    SeriesKey,
};
use crate::parallel::default_threads;
use std::collections::{BTreeMap, HashMap};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shard workers per campaign run (`0` resolves like the CLI:
    /// `FTSCHED_THREADS` or the available parallelism).
    pub threads: usize,
    /// Depth of the bounded ingress queue; a connection arriving while
    /// it is full is answered `503` without blocking the acceptor.
    pub queue: usize,
    /// Connection-handler threads (concurrent in-flight requests).
    pub handlers: usize,
    /// Request body cap in bytes (`413` above it).
    pub max_body: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 0,
            queue: 32,
            handlers: 4,
            max_body: 1 << 20,
        }
    }
}

/// One registered campaign run, keyed by spec content hash.
#[derive(Debug)]
struct RunSlot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

#[derive(Debug)]
enum SlotState {
    /// The first submitter is computing and streaming.
    Running,
    /// Finished: the exact response body, replayed to duplicates.
    Done(Arc<String>),
    /// Halted loudly; duplicates get a `500` with the message.
    Failed(String),
}

#[derive(Default)]
struct Registry {
    runs: Mutex<HashMap<u64, Arc<RunSlot>>>,
}

/// FNV-1a over the canonical spec JSON: the idempotency key.
fn content_hash(canonical_json: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in canonical_json.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// --- incremental rendering --------------------------------------------
//
// The streamed body re-creates `output::campaign_to_json` piecewise:
// a prefix with the id and the opening of the `groups` array, one
// re-indented pretty-printed group per chunk, and a closing suffix.
// `render_pinned_to_batch_json` pins the equivalence byte-for-byte.

fn render_prefix(id: &str) -> String {
    let id_json = serde_json::to_string(&id).expect("strings always serialize");
    format!("{{\n  \"id\": {id_json},\n  \"groups\": [\n")
}

const RENDER_SUFFIX: &str = "\n  ]\n}";

/// Pretty-prints one group at the nesting depth it has inside the
/// campaign document (two levels → four spaces).
fn render_group(group: &crate::campaign::GroupResult) -> String {
    let flat = serde_json::to_string_pretty(group).expect("groups always serialize");
    let mut out = String::with_capacity(flat.len() + 64);
    for (i, line) in flat.lines().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str("    ");
        out.push_str(line);
    }
    out
}

/// Evaluates one group (its full repetition range) and renders it.
/// A pure function of `(spec, plan, group index)` — the sharding
/// invariant rests on exactly this.
fn evaluate_group(
    spec: &CampaignSpec,
    plan: &CellPlan,
    gi: usize,
    ctx: &mut CellContext,
) -> Result<String, CampaignError> {
    let reps = spec.repetitions;
    let mut series: BTreeMap<SeriesKey, Vec<f64>> = BTreeMap::new();
    let mut out = Vec::new();
    for rep in 0..reps {
        out.clear();
        evaluate_any_cell_into(spec, plan, gi * reps + rep, ctx, &mut out)?;
        for &(key, value) in &out {
            series.entry(key).or_default().push(value);
        }
    }
    Ok(render_group(&finalize_group(spec, plan, gi, series)))
}

// --- HTTP plumbing -----------------------------------------------------

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn write_error(stream: &mut TcpStream, status: &str, message: &str) -> io::Result<()> {
    let body = format!(
        "{{\n  \"error\": {}\n}}",
        serde_json::to_string(&message).expect("strings always serialize")
    );
    write_response(stream, status, &[], &body)
}

/// One chunk of a chunked response, tagged with its sequence number as
/// a chunk extension (`<size-hex>;seq=<n>`). De-chunkers ignore the
/// extension; protocol tests assert the numbers are gapless from 0.
fn write_chunk(stream: &mut TcpStream, seq: u64, data: &str) -> io::Result<()> {
    write!(stream, "{:x};seq={}\r\n", data.len(), seq)?;
    stream.write_all(data.as_bytes())?;
    stream.write_all(b"\r\n")
}

fn write_last_chunk(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

struct Request {
    method: String,
    path: String,
    content_length: Option<usize>,
    expect_continue: bool,
}

fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Request> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    let mut content_length = None;
    let mut expect_continue = false;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse::<usize>().ok();
            } else if name.eq_ignore_ascii_case("expect")
                && value.eq_ignore_ascii_case("100-continue")
            {
                expect_continue = true;
            }
        }
    }
    Ok(Request {
        method,
        path,
        content_length,
        expect_continue,
    })
}

/// The streaming campaign server. Bind, then [`Server::run`].
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
    registry: Arc<Registry>,
}

impl Server {
    /// Binds the listener (`127.0.0.1:0` picks an ephemeral port for
    /// tests; read it back with [`Server::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            config,
            registry: Arc::new(Registry::default()),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept loop: never returns under normal operation. Accepted
    /// connections are handed to the bounded ingress queue
    /// non-blockingly; handler threads drain it.
    pub fn run(self) -> io::Result<()> {
        let threads = if self.config.threads == 0 {
            default_threads()
        } else {
            self.config.threads
        };
        let (tx, rx) = sync_channel::<TcpStream>(self.config.queue.max(1));
        let rx = Arc::new(Mutex::new(rx));
        for _ in 0..self.config.handlers.max(1) {
            let rx = Arc::clone(&rx);
            let registry = Arc::clone(&self.registry);
            let max_body = self.config.max_body;
            thread::spawn(move || loop {
                let next = rx.lock().expect("ingress lock").recv();
                match next {
                    Ok(stream) => handle_connection(stream, &registry, threads, max_body),
                    Err(_) => return,
                }
            });
        }
        for conn in self.listener.incoming() {
            let stream = conn?;
            match tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(mut stream)) => {
                    // Non-blocking ingress: shed load immediately.
                    let _ = write_error(
                        &mut stream,
                        "503 Service Unavailable",
                        "campaign queue full, retry later",
                    );
                }
                Err(TrySendError::Disconnected(_)) => return Ok(()),
            }
        }
        Ok(())
    }
}

fn handle_connection(stream: TcpStream, registry: &Registry, threads: usize, max_body: usize) {
    let peer = stream.peer_addr().ok();
    if let Err(e) = try_handle(stream, registry, threads, max_body) {
        // An I/O failure on one connection (client hung up mid-stream,
        // …) must never take the server down.
        eprintln!("serve: connection {peer:?} dropped: {e}");
    }
}

fn try_handle(
    stream: TcpStream,
    registry: &Registry,
    threads: usize,
    max_body: usize,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    let req = read_request(&mut reader)?;
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => write_response(&mut stream, "200 OK", &[], "ok\n"),
        ("POST", "/campaigns") => {
            let Some(len) = req.content_length else {
                return write_error(
                    &mut stream,
                    "411 Length Required",
                    "POST /campaigns needs a Content-Length",
                );
            };
            if len > max_body {
                return write_error(
                    &mut stream,
                    "413 Content Too Large",
                    "campaign spec exceeds the body limit",
                );
            }
            if req.expect_continue {
                stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
                stream.flush()?;
            }
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body)?;
            let body = match String::from_utf8(body) {
                Ok(s) => s,
                Err(_) => return write_error(&mut stream, "400 Bad Request", "body is not UTF-8"),
            };
            handle_submission(&mut stream, registry, threads, &body)
        }
        ("GET" | "POST", _) => write_error(&mut stream, "404 Not Found", "no such resource"),
        _ => write_error(&mut stream, "405 Method Not Allowed", "unsupported method"),
    }
}

fn handle_submission(
    stream: &mut TcpStream,
    registry: &Registry,
    threads: usize,
    body: &str,
) -> io::Result<()> {
    // Every request passes the hardened validator before it can touch a
    // worker: executor error paths are unreachable from the wire.
    let spec = match CampaignSpec::from_json(body) {
        Ok(spec) => spec,
        Err(e) => return write_error(stream, "400 Bad Request", &format!("invalid spec: {e}")),
    };
    if let Err(e) = spec.validate() {
        return write_error(stream, "400 Bad Request", &format!("invalid spec: {e}"));
    }
    let canonical = spec.to_json().expect("validated specs always re-serialize");
    let key = content_hash(&canonical);

    // Idempotency-key reservation: exactly one submitter computes.
    let (slot, is_new) = {
        let mut runs = registry.runs.lock().expect("registry lock");
        match runs.get(&key) {
            Some(slot) => (Arc::clone(slot), false),
            None => {
                let slot = Arc::new(RunSlot {
                    state: Mutex::new(SlotState::Running),
                    ready: Condvar::new(),
                });
                runs.insert(key, Arc::clone(&slot));
                (slot, true)
            }
        }
    };

    if !is_new {
        // Wait for the computing submitter, then replay its bytes.
        let mut state = slot.state.lock().expect("slot lock");
        while matches!(*state, SlotState::Running) {
            state = slot.ready.wait(state).expect("slot lock");
        }
        return match &*state {
            SlotState::Done(body) => {
                let body = Arc::clone(body);
                drop(state);
                stream.write_all(
                    b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                      Transfer-Encoding: chunked\r\nX-Campaign-Run: existing\r\n\
                      Connection: close\r\n\r\n",
                )?;
                write_chunk(stream, 0, &body)?;
                write_last_chunk(stream)
            }
            SlotState::Failed(msg) => {
                let msg = msg.clone();
                drop(state);
                write_error(stream, "500 Internal Server Error", &msg)
            }
            SlotState::Running => unreachable!("loop exits only on a settled state"),
        };
    }

    let outcome = stream_new_run(stream, &spec, threads);
    let mut state = slot.state.lock().expect("slot lock");
    match &outcome {
        Ok(body) => *state = SlotState::Done(Arc::new(body.clone())),
        Err(StreamError::Campaign(e)) => {
            // Lossless sink, halting loudly: the failure is recorded and
            // reported, nothing is silently dropped, the server lives on.
            eprintln!("serve: campaign {} halted: {e}", spec.id);
            *state = SlotState::Failed(format!("campaign halted: {e}"));
        }
        Err(StreamError::Io(e)) => {
            // The run itself did not fail — the client went away. Drop
            // the reservation so a retry can compute.
            drop(state);
            registry.runs.lock().expect("registry lock").remove(&key);
            slot.ready.notify_all();
            return Err(io::Error::new(e.kind(), e.to_string()));
        }
    }
    drop(state);
    slot.ready.notify_all();
    match outcome {
        Err(StreamError::Campaign(_)) => Ok(()), // already reported; stream was cut
        _ => Ok(()),
    }
}

enum StreamError {
    Io(io::Error),
    Campaign(CampaignError),
}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> Self {
        StreamError::Io(e)
    }
}

/// Shards the group range across workers and streams groups in index
/// order as they complete. Returns the full body (for the idempotency
/// replay) on success.
fn stream_new_run(
    stream: &mut TcpStream,
    spec: &CampaignSpec,
    threads: usize,
) -> Result<String, StreamError> {
    let plan = CellPlan::new(spec);
    let groups = spec.num_groups();
    let threads = threads.max(1).min(groups.max(1));

    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
          Transfer-Encoding: chunked\r\nX-Campaign-Run: new\r\n\
          Connection: close\r\n\r\n",
    )?;

    let mut full = render_prefix(&spec.id);
    let mut seq = 0u64;
    write_chunk(stream, seq, &full)?;
    seq += 1;

    let cursor = AtomicUsize::new(0);
    let result: Result<(), StreamError> = thread::scope(|scope| {
        // Lossless result sink: the channel holds every group, no
        // try_send, no drops (ingress is where load is shed).
        let (tx, rx) = sync_channel::<(usize, Result<String, CampaignError>)>(groups.max(1));
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let plan = &plan;
            scope.spawn(move || {
                let mut ctx = CellContext::new();
                loop {
                    let gi = cursor.fetch_add(1, Ordering::Relaxed);
                    if gi >= groups {
                        return;
                    }
                    let rendered = evaluate_group(spec, plan, gi, &mut ctx);
                    let halted = rendered.is_err();
                    if tx.send((gi, rendered)).is_err() || halted {
                        return; // coordinator gone or run halting
                    }
                }
            });
        }
        drop(tx);

        // Coordinator: re-order completions, flush strictly in group
        // index order, one chunk per group.
        let mut pending: BTreeMap<usize, String> = BTreeMap::new();
        let mut next_flush = 0usize;
        for (gi, rendered) in rx {
            pending.insert(gi, rendered.map_err(StreamError::Campaign)?);
            while let Some(body) = pending.remove(&next_flush) {
                let piece = if next_flush == 0 {
                    body
                } else {
                    format!(",\n{body}")
                };
                write_chunk(stream, seq, &piece)?;
                seq += 1;
                full.push_str(&piece);
                next_flush += 1;
            }
        }
        Ok(())
    });
    result?;

    write_chunk(stream, seq, RENDER_SUFFIX)?;
    write_last_chunk(stream)?;
    full.push_str(RENDER_SUFFIX);
    Ok(full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{presets, run_campaign_with_threads};
    use crate::output::campaign_to_json;

    /// The incremental renderer must be byte-identical to the batch
    /// emission — this is the contract the CI `cmp` step and the serve
    /// loopback tests build on.
    #[test]
    fn render_pinned_to_batch_json() {
        let spec = presets::preset("ci-smoke", Some(2)).expect("preset");
        let res = run_campaign_with_threads(&spec, 2).expect("valid spec");
        let batch = campaign_to_json(&res);

        let mut incremental = render_prefix(&spec.id);
        let plan = CellPlan::new(&spec);
        let mut ctx = CellContext::new();
        for gi in 0..spec.num_groups() {
            if gi > 0 {
                incremental.push_str(",\n");
            }
            incremental.push_str(&evaluate_group(&spec, &plan, gi, &mut ctx).expect("valid spec"));
        }
        incremental.push_str(RENDER_SUFFIX);
        assert_eq!(incremental, batch);
    }

    #[test]
    fn content_hash_collapses_formatting_not_content() {
        let a = presets::preset("ci-smoke", Some(2)).expect("preset");
        let mut b = a.clone();
        assert_eq!(
            content_hash(&a.to_json().unwrap()),
            content_hash(&b.to_json().unwrap())
        );
        b.seed ^= 1;
        assert_ne!(
            content_hash(&a.to_json().unwrap()),
            content_hash(&b.to_json().unwrap())
        );
    }
}
