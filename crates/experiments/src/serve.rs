//! `ftsched serve` — a sharded streaming campaign service over raw
//! `std::net`, with optional durable runs under `--data-dir`.
//!
//! # Wire protocol
//!
//! Hand-rolled HTTP/1.1, one request per connection (`Connection:
//! close` on every response; the build environment has no HTTP
//! dependency and needs none):
//!
//! * `GET /healthz` → `200 ok` — liveness probe.
//! * `POST /campaigns` with a [`CampaignSpec`] JSON body → `200` with
//!   `Transfer-Encoding: chunked` and `Content-Type: application/json`.
//!   The de-chunked body is **byte-identical** to the file the CLI
//!   writes for the same spec (`ftsched campaign … --out DIR` →
//!   `<id>.campaign.json`), so `cmp` between the two always passes.
//! * `GET /campaigns` → `200` with a JSON listing of every registered
//!   run (key, campaign id, group count, state, durable group count).
//! * `GET /campaigns/<key>` (16 hex digits, the idempotency key) →
//!   replays a completed run's exact bytes, waits on a running one,
//!   resumes a resumable one from its durable checkpoints (store mode;
//!   `409` without a store, since the spec is gone), `404` for unknown
//!   keys.
//! * Malformed requests never reach a worker: a body that is not valid
//!   JSON, does not decode as a spec, or fails
//!   [`CampaignSpec::validate`] is a `400`; a missing `Content-Length`
//!   is a `411`; a body over [`ServeConfig::max_body`] is a `413`;
//!   unknown paths are `404`, unsupported methods `405`. The hardened
//!   validator makes the executor's [`CampaignError`] paths
//!   structurally unreachable from the wire.
//!
//! Each streamed chunk carries a `;seq=<n>` chunk extension with a
//! strictly increasing sequence number from 0 — standard de-chunkers
//! (curl included) ignore extensions, while protocol tests can assert
//! gapless ordering.
//!
//! # Sharding and determinism
//!
//! A run shards the campaign's **group index range** across
//! [`ServeConfig::threads`] workers: shard *i* is group *i*, covering
//! the row-major cell range `[i·reps, (i+1)·reps)`. Workers pull group
//! indices from a shared atomic cursor and evaluate cells through the
//! same [`evaluate_any_cell_into`] dispatch and indexed per-cell seeds
//! as the batch executor, then render each group with
//! [`finalize_group`] — each group's bytes are a pure function of
//! `(spec, group index)`, so responses are **byte-reproducible at any
//! shard or thread count**. The coordinator re-orders out-of-order
//! completions and flushes groups strictly in index order.
//!
//! # Idempotency
//!
//! Specs are keyed by a content hash (FNV-1a of the canonical spec
//! JSON, re-serialized after parse + validate so formatting differences
//! collapse). Resubmitting a spec returns the existing run: the first
//! submission answers `X-Campaign-Run: new` and computes; concurrent or
//! later duplicates answer `X-Campaign-Run: existing` and replay the
//! stored bytes; a submission that picks up an interrupted durable run
//! answers `X-Campaign-Run: resumed` and re-executes only the missing
//! group range. Retries never re-execute a completed group or alter an
//! outcome.
//!
//! # Durability contract
//!
//! With [`ServeConfig::data_dir`] set, every run is backed by the
//! [`crate::store`] module (one live server per data directory):
//!
//! * **Submission is durable before computation.** The canonical spec
//!   and a `running` idempotency record are committed via atomic
//!   write-rename — tmp file, `fsync`, `rename`, directory `fsync` — so
//!   a record is always either absent or complete, never torn.
//! * **A group is durable before it is visible.** The coordinator
//!   appends each rendered group to the run's checksummed WAL and
//!   `fsync`s **before** writing the group's chunk to the socket; a
//!   client can never observe bytes a crash could un-happen.
//! * **Completion is a single record flip.** After the last group frame
//!   is durable, the record moves `running → completed` with the result
//!   fingerprint (rolling FNV-1a over the group payloads); that atomic
//!   rename is the commit point of the whole run.
//! * **Recovery trusts only persisted state.** On bind the server scans
//!   the data dir: orphaned tmp files are deleted, torn WAL tails are
//!   truncated back to the last whole checksummed frame, `running`
//!   records are demoted to `resumable` (the process died mid-run), and
//!   `completed` records are re-verified against the replayed WAL —
//!   a fingerprint mismatch demotes to `resumable` rather than serving
//!   wrong bytes. No in-memory state survives; nothing else is needed.
//! * **`resumable` means bit-exact continuation.** A resumable run
//!   holds a valid WAL prefix of groups `0..k` and its spec; resuming
//!   replays those frames and re-executes only groups `k..n`, and
//!   because group bytes are pure functions of `(spec, group index)`
//!   the final body is byte-identical to an uninterrupted run at any
//!   thread count. A client hangup mid-stream likewise releases the run
//!   slot as `resumable` — completed-group checkpoints are never
//!   discarded with the connection.
//!
//! # Backpressure and failure policy
//!
//! The gateway follows the waiver-exchange queue discipline: ingress is
//! a **non-blocking** bounded handoff (`try_send`; a full queue is an
//! immediate `503` with a `Retry-After` header, the acceptor never
//! blocks), and the per-run result sink is **lossless** — group results
//! are never dropped. If a cell somehow fails mid-run (unreachable for
//! validated specs), or the durable store fails a persistence
//! operation ([`CampaignError::Store`]), the run halts loudly: the
//! error is logged, the chunked stream is cut without its terminating
//! chunk (clients see a transfer error, never silently truncated
//! data), the run slot is marked failed — and the server itself stays
//! alive.

use crate::campaign::{
    evaluate_any_cell_into, finalize_group, CampaignError, CampaignSpec, CellContext, CellPlan,
    SeriesKey, StoreIoError,
};
use crate::parallel::default_threads;
use crate::store::{key_hex, Fingerprint, RunState, Store, WalWriter};
use std::collections::{BTreeMap, HashMap};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shard workers per campaign run (`0` resolves like the CLI:
    /// `FTSCHED_THREADS` or the available parallelism).
    pub threads: usize,
    /// Depth of the bounded ingress queue; a connection arriving while
    /// it is full is answered `503` without blocking the acceptor.
    pub queue: usize,
    /// Connection-handler threads (concurrent in-flight requests).
    pub handlers: usize,
    /// Request body cap in bytes (`413` above it).
    pub max_body: usize,
    /// Durable run store directory (`None` keeps PR 7's in-memory-only
    /// registry). At most one live server per directory.
    pub data_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 0,
            queue: 32,
            handlers: 4,
            max_body: 1 << 20,
            data_dir: None,
        }
    }
}

/// One registered campaign run, keyed by spec content hash.
#[derive(Debug)]
struct RunSlot {
    /// The spec's campaign id (for listings and replayed prefixes).
    campaign: String,
    /// Total group count of the run.
    groups: usize,
    state: Mutex<SlotState>,
    ready: Condvar,
}

#[derive(Debug)]
enum SlotState {
    /// A submitter is computing and streaming.
    Running,
    /// Interrupted (crash recovery or client hangup): `groups_done`
    /// groups are durable, the next claimant resumes from there.
    Resumable {
        /// Number of WAL-committed groups (0 without a store).
        groups_done: usize,
    },
    /// Finished: the exact response body, replayed to duplicates.
    Done(Arc<String>),
    /// Halted loudly; duplicates get a `500` with the message.
    Failed(String),
}

struct Registry {
    runs: Mutex<HashMap<u64, Arc<RunSlot>>>,
    store: Option<Store>,
}

/// FNV-1a over the canonical spec JSON: the idempotency key.
fn content_hash(canonical_json: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in canonical_json.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The idempotency key of a spec: the FNV-1a content hash of its
/// canonical JSON (16 hex digits in URLs and store file names).
pub fn spec_key(spec: &CampaignSpec) -> u64 {
    content_hash(&spec.to_json().expect("validated specs always re-serialize"))
}

// --- incremental rendering --------------------------------------------
//
// The streamed body re-creates `output::campaign_to_json` piecewise:
// a prefix with the id and the opening of the `groups` array, one
// re-indented pretty-printed group per chunk, and a closing suffix.
// `render_pinned_to_batch_json` pins the equivalence byte-for-byte.

fn render_prefix(id: &str) -> String {
    let id_json = serde_json::to_string(&id).expect("strings always serialize");
    format!("{{\n  \"id\": {id_json},\n  \"groups\": [\n")
}

const RENDER_SUFFIX: &str = "\n  ]\n}";

/// Pretty-prints one group at the nesting depth it has inside the
/// campaign document (two levels → four spaces).
fn render_group(group: &crate::campaign::GroupResult) -> String {
    let flat = serde_json::to_string_pretty(group).expect("groups always serialize");
    let mut out = String::with_capacity(flat.len() + 64);
    for (i, line) in flat.lines().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str("    ");
        out.push_str(line);
    }
    out
}

/// Evaluates one group (its full repetition range) and renders it.
/// A pure function of `(spec, plan, group index)` — the sharding
/// invariant rests on exactly this.
fn evaluate_group(
    spec: &CampaignSpec,
    plan: &CellPlan,
    gi: usize,
    ctx: &mut CellContext,
) -> Result<String, CampaignError> {
    let reps = spec.repetitions;
    let mut series: BTreeMap<SeriesKey, Vec<f64>> = BTreeMap::new();
    let mut out = Vec::new();
    for rep in 0..reps {
        out.clear();
        evaluate_any_cell_into(spec, plan, gi * reps + rep, ctx, &mut out)?;
        for &(key, value) in &out {
            series.entry(key).or_default().push(value);
        }
    }
    Ok(render_group(&finalize_group(spec, plan, gi, series)))
}

/// The exact rendered bytes of one group, as the server streams and
/// checkpoints them. Exposed so fault-injection tests can fabricate
/// partial WALs without a live server.
#[doc(hidden)]
pub fn rendered_group(spec: &CampaignSpec, gi: usize) -> Result<String, CampaignError> {
    let plan = CellPlan::new(spec);
    let mut ctx = CellContext::new();
    evaluate_group(spec, &plan, gi, &mut ctx)
}

// --- HTTP plumbing -----------------------------------------------------

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn write_error(stream: &mut TcpStream, status: &str, message: &str) -> io::Result<()> {
    write_error_with(stream, status, &[], message)
}

fn write_error_with(
    stream: &mut TcpStream,
    status: &str,
    extra_headers: &[(&str, &str)],
    message: &str,
) -> io::Result<()> {
    let body = format!(
        "{{\n  \"error\": {}\n}}",
        serde_json::to_string(&message).expect("strings always serialize")
    );
    write_response(stream, status, extra_headers, &body)
}

/// One chunk of a chunked response, tagged with its sequence number as
/// a chunk extension (`<size-hex>;seq=<n>`). De-chunkers ignore the
/// extension; protocol tests assert the numbers are gapless from 0.
fn write_chunk(stream: &mut TcpStream, seq: u64, data: &str) -> io::Result<()> {
    write!(stream, "{:x};seq={}\r\n", data.len(), seq)?;
    stream.write_all(data.as_bytes())?;
    stream.write_all(b"\r\n")
}

fn write_last_chunk(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// Streams a settled run's exact body as a single replayed chunk.
fn replay_existing(stream: &mut TcpStream, body: &str) -> io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
          Transfer-Encoding: chunked\r\nX-Campaign-Run: existing\r\n\
          Connection: close\r\n\r\n",
    )?;
    write_chunk(stream, 0, body)?;
    write_last_chunk(stream)
}

struct Request {
    method: String,
    path: String,
    content_length: Option<usize>,
    expect_continue: bool,
}

fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Request> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    let mut content_length = None;
    let mut expect_continue = false;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse::<usize>().ok();
            } else if name.eq_ignore_ascii_case("expect")
                && value.eq_ignore_ascii_case("100-continue")
            {
                expect_continue = true;
            }
        }
    }
    Ok(Request {
        method,
        path,
        content_length,
        expect_continue,
    })
}

/// The streaming campaign server. Bind, then [`Server::run`].
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
    registry: Arc<Registry>,
}

impl Server {
    /// Binds the listener (`127.0.0.1:0` picks an ephemeral port for
    /// tests; read it back with [`Server::local_addr`]). With a
    /// [`ServeConfig::data_dir`], runs the recovery bootstrap first:
    /// every persisted run is loaded into the registry — completed runs
    /// replay, interrupted ones come back `resumable` — before a single
    /// connection is accepted. A data directory the store cannot make
    /// sense of (unparseable run record) fails the bind loudly rather
    /// than silently shadowing durable state.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> io::Result<Server> {
        let store = match &config.data_dir {
            Some(dir) => Some(Store::open(dir)?),
            None => None,
        };
        let mut runs = HashMap::new();
        if let Some(store) = &store {
            for run in store.recover()? {
                let state = match run.record.state {
                    RunState::Completed => {
                        let mut body = render_prefix(&run.record.campaign);
                        for (i, group) in run.groups.iter().enumerate() {
                            if i > 0 {
                                body.push_str(",\n");
                            }
                            body.push_str(group);
                        }
                        body.push_str(RENDER_SUFFIX);
                        SlotState::Done(Arc::new(body))
                    }
                    RunState::Running | RunState::Resumable => SlotState::Resumable {
                        groups_done: run.groups_done,
                    },
                    RunState::Failed => SlotState::Failed(
                        run.record
                            .error
                            .clone()
                            .unwrap_or_else(|| "persisted failure".to_string()),
                    ),
                };
                runs.insert(
                    run.key,
                    Arc::new(RunSlot {
                        campaign: run.record.campaign.clone(),
                        groups: run.record.groups,
                        state: Mutex::new(state),
                        ready: Condvar::new(),
                    }),
                );
            }
        }
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            config,
            registry: Arc::new(Registry {
                runs: Mutex::new(runs),
                store,
            }),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept loop: never returns under normal operation. Accepted
    /// connections are handed to the bounded ingress queue
    /// non-blockingly; handler threads drain it.
    pub fn run(self) -> io::Result<()> {
        let threads = if self.config.threads == 0 {
            default_threads()
        } else {
            self.config.threads
        };
        let (tx, rx) = sync_channel::<TcpStream>(self.config.queue.max(1));
        let rx = Arc::new(Mutex::new(rx));
        for _ in 0..self.config.handlers.max(1) {
            let rx = Arc::clone(&rx);
            let registry = Arc::clone(&self.registry);
            let max_body = self.config.max_body;
            thread::spawn(move || loop {
                let next = rx.lock().expect("ingress lock").recv();
                match next {
                    Ok(stream) => handle_connection(stream, &registry, threads, max_body),
                    Err(_) => return,
                }
            });
        }
        for conn in self.listener.incoming() {
            let stream = conn?;
            match tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(mut stream)) => {
                    // Non-blocking ingress: shed load immediately, tell
                    // the client when to come back. Half-close and drain
                    // whatever request bytes are in flight before
                    // dropping — closing with unread data turns the
                    // close into an RST that can destroy the 503 before
                    // the client reads it. The drain is bounded (8 reads
                    // × 50 ms) so a slow sender can't pin the acceptor.
                    let _ = write_error_with(
                        &mut stream,
                        "503 Service Unavailable",
                        &[("Retry-After", "1")],
                        "campaign queue full, retry later",
                    );
                    let _ = stream.shutdown(std::net::Shutdown::Write);
                    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(50)));
                    let mut sink = [0u8; 4096];
                    for _ in 0..8 {
                        match stream.read(&mut sink) {
                            Ok(n) if n > 0 => {}
                            _ => break,
                        }
                    }
                }
                Err(TrySendError::Disconnected(_)) => return Ok(()),
            }
        }
        Ok(())
    }
}

fn handle_connection(stream: TcpStream, registry: &Registry, threads: usize, max_body: usize) {
    let peer = stream.peer_addr().ok();
    if let Err(e) = try_handle(stream, registry, threads, max_body) {
        // An I/O failure on one connection (client hung up mid-stream,
        // …) must never take the server down.
        eprintln!("serve: connection {peer:?} dropped: {e}");
    }
}

fn try_handle(
    stream: TcpStream,
    registry: &Registry,
    threads: usize,
    max_body: usize,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    let req = read_request(&mut reader)?;
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => write_response(&mut stream, "200 OK", &[], "ok\n"),
        ("GET", "/campaigns") => handle_listing(&mut stream, registry),
        ("GET", path) if path.starts_with("/campaigns/") => {
            let key_text = &path["/campaigns/".len()..];
            match u64::from_str_radix(key_text, 16) {
                Ok(key) if key_text.len() == 16 => {
                    handle_lookup(&mut stream, registry, threads, key)
                }
                _ => write_error(
                    &mut stream,
                    "404 Not Found",
                    "campaign keys are 16 hex digits",
                ),
            }
        }
        ("POST", "/campaigns") => {
            let Some(len) = req.content_length else {
                return write_error(
                    &mut stream,
                    "411 Length Required",
                    "POST /campaigns needs a Content-Length",
                );
            };
            if len > max_body {
                return write_error(
                    &mut stream,
                    "413 Content Too Large",
                    "campaign spec exceeds the body limit",
                );
            }
            if req.expect_continue {
                stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
                stream.flush()?;
            }
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body)?;
            let body = match String::from_utf8(body) {
                Ok(s) => s,
                Err(_) => return write_error(&mut stream, "400 Bad Request", "body is not UTF-8"),
            };
            handle_submission(&mut stream, registry, threads, &body)
        }
        ("GET" | "POST", _) => write_error(&mut stream, "404 Not Found", "no such resource"),
        _ => write_error(&mut stream, "405 Method Not Allowed", "unsupported method"),
    }
}

/// `GET /campaigns`: a point-in-time JSON listing of the registry,
/// sorted by key.
fn handle_listing(stream: &mut TcpStream, registry: &Registry) -> io::Result<()> {
    let mut entries: Vec<(u64, String, usize, &'static str, usize)> = {
        let runs = registry.runs.lock().expect("registry lock");
        runs.iter()
            .map(|(&key, slot)| {
                let (state, groups_done) = match &*slot.state.lock().expect("slot lock") {
                    SlotState::Running => ("running", 0),
                    SlotState::Resumable { groups_done } => ("resumable", *groups_done),
                    SlotState::Done(_) => ("completed", slot.groups),
                    SlotState::Failed(_) => ("failed", 0),
                };
                (key, slot.campaign.clone(), slot.groups, state, groups_done)
            })
            .collect()
    };
    entries.sort_unstable_by_key(|e| e.0);
    let mut body = String::from("{\n  \"runs\": [");
    for (i, (key, campaign, groups, state, groups_done)) in entries.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "\n    {{\n      \"key\": \"{}\",\n      \"campaign\": {},\n      \
             \"groups\": {},\n      \"state\": \"{}\",\n      \"groups_done\": {}\n    }}",
            key_hex(*key),
            serde_json::to_string(campaign).expect("strings always serialize"),
            groups,
            state,
            groups_done
        ));
    }
    if !entries.is_empty() {
        body.push_str("\n  ");
    }
    body.push_str("]\n}");
    write_response(stream, "200 OK", &[], &body)
}

/// What a connection holding a run slot is entitled to do with it.
enum Claim {
    /// This connection owns the computation; the slot is `Running`.
    /// `groups_done` counts durable groups to replay first (0 fresh).
    Compute {
        groups_done: usize,
    },
    Replay(Arc<String>),
    Failed(String),
}

/// Waits out a running computation and claims the slot's settled state:
/// a `Resumable` slot is atomically flipped back to `Running` — exactly
/// one waiter wins and re-computes, the rest keep waiting on it.
fn claim_slot(slot: &RunSlot) -> Claim {
    let mut state = slot.state.lock().expect("slot lock");
    loop {
        match &*state {
            SlotState::Running => state = slot.ready.wait(state).expect("slot lock"),
            SlotState::Resumable { groups_done } => {
                let groups_done = *groups_done;
                *state = SlotState::Running;
                return Claim::Compute { groups_done };
            }
            SlotState::Done(body) => return Claim::Replay(Arc::clone(body)),
            SlotState::Failed(msg) => return Claim::Failed(msg.clone()),
        }
    }
}

fn settle(slot: &RunSlot, state: SlotState) {
    *slot.state.lock().expect("slot lock") = state;
    slot.ready.notify_all();
}

fn handle_submission(
    stream: &mut TcpStream,
    registry: &Registry,
    threads: usize,
    body: &str,
) -> io::Result<()> {
    // Every request passes the hardened validator before it can touch a
    // worker: executor error paths are unreachable from the wire.
    let spec = match CampaignSpec::from_json(body) {
        Ok(spec) => spec,
        Err(e) => return write_error(stream, "400 Bad Request", &format!("invalid spec: {e}")),
    };
    if let Err(e) = spec.validate() {
        return write_error(stream, "400 Bad Request", &format!("invalid spec: {e}"));
    }
    let canonical = spec.to_json().expect("validated specs always re-serialize");
    let key = content_hash(&canonical);

    // Idempotency-key reservation: exactly one submitter computes.
    let (slot, claim) = {
        let mut runs = registry.runs.lock().expect("registry lock");
        match runs.get(&key) {
            Some(slot) => (Arc::clone(slot), None),
            None => {
                let slot = Arc::new(RunSlot {
                    campaign: spec.id.clone(),
                    groups: spec.num_groups(),
                    state: Mutex::new(SlotState::Running),
                    ready: Condvar::new(),
                });
                runs.insert(key, Arc::clone(&slot));
                (slot, Some(Claim::Compute { groups_done: 0 }))
            }
        }
    };
    let (claim, fresh) = match claim {
        Some(c) => (c, true),
        None => (claim_slot(&slot), false),
    };

    match claim {
        Claim::Replay(body) => replay_existing(stream, &body),
        Claim::Failed(msg) => write_error(stream, "500 Internal Server Error", &msg),
        Claim::Compute { groups_done } => compute_run(
            stream,
            registry,
            &slot,
            key,
            &spec,
            &canonical,
            threads,
            !fresh,
            groups_done,
        ),
    }
}

/// `GET /campaigns/<key>`: replay, wait, or resume a registered run.
fn handle_lookup(
    stream: &mut TcpStream,
    registry: &Registry,
    threads: usize,
    key: u64,
) -> io::Result<()> {
    let slot = {
        let runs = registry.runs.lock().expect("registry lock");
        runs.get(&key).cloned()
    };
    let Some(slot) = slot else {
        return write_error(stream, "404 Not Found", "no campaign run under this key");
    };
    match claim_slot(&slot) {
        Claim::Replay(body) => replay_existing(stream, &body),
        Claim::Failed(msg) => write_error(stream, "500 Internal Server Error", &msg),
        Claim::Compute { groups_done } => {
            let Some(store) = &registry.store else {
                // No durable spec to recompute from — hand the slot
                // back exactly as claimed.
                settle(&slot, SlotState::Resumable { groups_done });
                return write_error(
                    stream,
                    "409 Conflict",
                    "run is resumable but the server has no data dir; \
                     resubmit the spec to POST /campaigns",
                );
            };
            let parsed = store
                .load_spec(key)
                .map_err(|e| format!("persisted spec unreadable: {e}"))
                .and_then(|json| {
                    CampaignSpec::from_json(&json)
                        .map(|spec| (spec, json))
                        .map_err(|e| format!("persisted spec unparseable: {e}"))
                });
            match parsed {
                Ok((spec, canonical)) => compute_run(
                    stream,
                    registry,
                    &slot,
                    key,
                    &spec,
                    &canonical,
                    threads,
                    true,
                    groups_done,
                ),
                Err(msg) => {
                    settle(&slot, SlotState::Resumable { groups_done });
                    write_error(stream, "500 Internal Server Error", &msg)
                }
            }
        }
    }
}

/// Runs (or resumes) a claimed computation and settles the slot. The
/// caller has already flipped the slot to `Running`.
#[allow(clippy::too_many_arguments)]
fn compute_run(
    stream: &mut TcpStream,
    registry: &Registry,
    slot: &RunSlot,
    key: u64,
    spec: &CampaignSpec,
    canonical: &str,
    threads: usize,
    resuming: bool,
    groups_done: usize,
) -> io::Result<()> {
    // Durable setup happens before the response header: a store that
    // cannot even register the run is a clean 500, not a cut stream.
    let mut replayed: Vec<String> = Vec::new();
    let mut wal: Option<WalWriter> = None;
    if let Some(store) = &registry.store {
        let (setup, operation) = if resuming {
            (
                store.resume_run(key).map(|(groups, writer)| {
                    replayed = groups;
                    writer
                }),
                "resuming the run",
            )
        } else {
            (
                store.begin_run(key, &spec.id, canonical, spec.num_groups()),
                "registering the run",
            )
        };
        match setup {
            Ok(writer) => wal = Some(writer),
            Err(e) => {
                let err = CampaignError::Store {
                    campaign: spec.id.clone(),
                    operation,
                    source: StoreIoError::new(e),
                };
                let msg = format!("campaign halted: {err}");
                eprintln!("serve: campaign {} halted: {err}", spec.id);
                settle(slot, SlotState::Failed(msg.clone()));
                return write_error(stream, "500 Internal Server Error", &msg);
            }
        }
    } else if resuming {
        // Without a store there are no checkpoints to replay: the
        // "resume" is a full, fresh recomputation.
        debug_assert_eq!(groups_done, 0);
    }

    let mode = if replayed.is_empty() {
        "new"
    } else {
        "resumed"
    };
    match stream_run(stream, spec, threads, &replayed, wal.as_mut(), mode) {
        Ok(run) => {
            if let Some(store) = &registry.store {
                if let Err(e) = store.complete_run(key, run.fingerprint) {
                    // Best-effort: every group frame is already durable,
                    // and recovery re-verifies completion from the WAL.
                    eprintln!(
                        "serve: campaign {}: completion record not persisted: {e}",
                        spec.id
                    );
                }
            }
            settle(slot, SlotState::Done(Arc::new(run.body)));
            Ok(())
        }
        Err((StreamError::Campaign(e), _)) => {
            // Lossless sink, halting loudly: the failure is recorded and
            // reported, nothing is silently dropped, the server lives on.
            let msg = format!("campaign halted: {e}");
            eprintln!("serve: campaign {} halted: {e}", spec.id);
            if let Some(store) = &registry.store {
                let _ = store.fail_run(key, &msg);
            }
            settle(slot, SlotState::Failed(msg));
            Ok(())
        }
        Err((StreamError::Io(e), durable)) => {
            // The run itself did not fail — the client went away. The
            // slot goes back to resumable with its durable checkpoints
            // intact; a retry resumes instead of starting over.
            if let Some(store) = &registry.store {
                let _ = store.mark_resumable(key);
            }
            settle(
                slot,
                SlotState::Resumable {
                    groups_done: durable,
                },
            );
            Err(io::Error::new(e.kind(), e.to_string()))
        }
    }
}

enum StreamError {
    Io(io::Error),
    Campaign(CampaignError),
}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> Self {
        StreamError::Io(e)
    }
}

/// Attaches the durable-group count to a stream failure so the caller
/// can settle the slot as `Resumable { groups_done }`.
fn staged(res: Result<(), StreamError>, durable: usize) -> Result<(), (StreamError, usize)> {
    res.map_err(|e| (e, durable))
}

struct RunOutcome {
    /// The complete response body (for idempotency replays).
    body: String,
    /// Rolling FNV-1a over the raw group payloads (the store's result
    /// fingerprint).
    fingerprint: u64,
}

/// Streams a run: replays durable groups, shards the missing group
/// range across workers, flushes strictly in index order — appending
/// each new group to the WAL (fsync) **before** its chunk hits the
/// socket. On error, also reports how many groups are durable.
fn stream_run(
    stream: &mut TcpStream,
    spec: &CampaignSpec,
    threads: usize,
    replayed: &[String],
    mut wal: Option<&mut WalWriter>,
    mode: &str,
) -> Result<RunOutcome, (StreamError, usize)> {
    let plan = CellPlan::new(spec);
    let groups = spec.num_groups();
    let start = replayed.len().min(groups);
    let threads = threads.max(1).min(groups.max(1));
    let mut durable = start;
    let mut fingerprint = Fingerprint::new();

    staged(
        write!(
            stream,
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
             Transfer-Encoding: chunked\r\nX-Campaign-Run: {mode}\r\n\
             Connection: close\r\n\r\n"
        )
        .map_err(StreamError::Io),
        durable,
    )?;

    let mut full = render_prefix(&spec.id);
    let mut seq = 0u64;
    staged(
        write_chunk(stream, seq, &full).map_err(StreamError::Io),
        durable,
    )?;
    seq += 1;

    // Replay the durable prefix: groups 0..start come from the WAL,
    // byte-identical to what the interrupted run streamed (and what an
    // uninterrupted run would compute).
    for (gi, group) in replayed.iter().take(start).enumerate() {
        let piece = if gi == 0 {
            group.clone()
        } else {
            format!(",\n{group}")
        };
        staged(
            write_chunk(stream, seq, &piece).map_err(StreamError::Io),
            durable,
        )?;
        seq += 1;
        full.push_str(&piece);
        fingerprint.push_group(group);
    }

    let cursor = AtomicUsize::new(start);
    let result: Result<(), StreamError> = thread::scope(|scope| {
        // Lossless result sink: the channel holds every group, no
        // try_send, no drops (ingress is where load is shed).
        let (tx, rx) = sync_channel::<(usize, Result<String, CampaignError>)>(groups.max(1));
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let plan = &plan;
            scope.spawn(move || {
                let mut ctx = CellContext::new();
                loop {
                    let gi = cursor.fetch_add(1, Ordering::Relaxed);
                    if gi >= groups {
                        return;
                    }
                    let rendered = evaluate_group(spec, plan, gi, &mut ctx);
                    let halted = rendered.is_err();
                    if tx.send((gi, rendered)).is_err() || halted {
                        return; // coordinator gone or run halting
                    }
                }
            });
        }
        drop(tx);

        // Coordinator: re-order completions, flush strictly in group
        // index order — WAL first, then the wire — one chunk per group.
        let mut pending: BTreeMap<usize, String> = BTreeMap::new();
        let mut next_flush = start;
        for (gi, rendered) in rx {
            pending.insert(gi, rendered.map_err(StreamError::Campaign)?);
            while let Some(body) = pending.remove(&next_flush) {
                if let Some(writer) = wal.as_deref_mut() {
                    writer.append(body.as_bytes()).map_err(|e| {
                        StreamError::Campaign(CampaignError::Store {
                            campaign: spec.id.clone(),
                            operation: "appending a group frame",
                            source: StoreIoError::new(e),
                        })
                    })?;
                    durable = writer.next_group();
                }
                fingerprint.push_group(&body);
                let piece = if next_flush == 0 {
                    body
                } else {
                    format!(",\n{body}")
                };
                write_chunk(stream, seq, &piece)?;
                seq += 1;
                full.push_str(&piece);
                next_flush += 1;
            }
        }
        Ok(())
    });
    staged(result, durable)?;

    staged(
        write_chunk(stream, seq, RENDER_SUFFIX).map_err(StreamError::Io),
        durable,
    )?;
    staged(write_last_chunk(stream).map_err(StreamError::Io), durable)?;
    full.push_str(RENDER_SUFFIX);
    Ok(RunOutcome {
        body: full,
        fingerprint: fingerprint.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{presets, run_campaign_with_threads};
    use crate::output::campaign_to_json;

    /// The incremental renderer must be byte-identical to the batch
    /// emission — this is the contract the CI `cmp` step and the serve
    /// loopback tests build on.
    #[test]
    fn render_pinned_to_batch_json() {
        let spec = presets::preset("ci-smoke", Some(2)).expect("preset");
        let res = run_campaign_with_threads(&spec, 2).expect("valid spec");
        let batch = campaign_to_json(&res);

        let mut incremental = render_prefix(&spec.id);
        let plan = CellPlan::new(&spec);
        let mut ctx = CellContext::new();
        for gi in 0..spec.num_groups() {
            if gi > 0 {
                incremental.push_str(",\n");
            }
            incremental.push_str(&evaluate_group(&spec, &plan, gi, &mut ctx).expect("valid spec"));
        }
        incremental.push_str(RENDER_SUFFIX);
        assert_eq!(incremental, batch);
    }

    #[test]
    fn content_hash_collapses_formatting_not_content() {
        let a = presets::preset("ci-smoke", Some(2)).expect("preset");
        let mut b = a.clone();
        assert_eq!(
            content_hash(&a.to_json().unwrap()),
            content_hash(&b.to_json().unwrap())
        );
        assert_eq!(spec_key(&a), content_hash(&a.to_json().unwrap()));
        b.seed ^= 1;
        assert_ne!(
            content_hash(&a.to_json().unwrap()),
            content_hash(&b.to_json().unwrap())
        );
    }

    /// The store's fingerprint (over raw group payloads) must be
    /// reproducible from `rendered_group` alone — recovery relies on
    /// re-deriving it without a live run.
    #[test]
    fn fingerprint_reproducible_from_rendered_groups() {
        let spec = presets::preset("ci-smoke", Some(2)).expect("preset");
        let mut a = Fingerprint::new();
        let mut b = Fingerprint::new();
        for gi in 0..spec.num_groups() {
            let g = rendered_group(&spec, gi).expect("valid spec");
            a.push_group(&g);
            b.push_group(&g);
        }
        assert_eq!(a.finish(), b.finish());
    }
}
