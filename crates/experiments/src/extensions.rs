//! Extension experiments beyond the paper's figures: the Section 7
//! future-work directions, quantified.
//!
//! * [`run_contention`] — one-port / bounded multi-port penalties of
//!   FTSA vs MC-FTSA ("we expect MC-FTSA to be superior to other
//!   scheduling algorithms, since it already accounts for reduced
//!   communications").
//! * [`run_reliability`] — survival probability under iid processor
//!   failure probabilities ("account for the failure probability of the
//!   application").
//!
//! Both are campaign presets since the refactor
//! ([`crate::campaign::presets::spec_from_contention`] /
//! [`spec_from_reliability`](crate::campaign::presets::spec_from_reliability));
//! this module converts the group statistics back into the historical
//! row shapes, bit-identical to the pre-campaign drivers
//! (`tests/campaign_parity.rs`).

use crate::campaign::{
    presets::{spec_from_contention, spec_from_reliability},
    run_campaign, run_campaign_with_threads, CampaignError,
};
use crate::parallel::default_threads;

/// One row of the contention experiment.
#[derive(Debug, Clone)]
pub struct ContentionRow {
    /// Tolerated failures ε.
    pub epsilon: usize,
    /// Mean one-port latency penalty of FTSA (one-port / unbounded).
    pub ftsa_penalty: f64,
    /// Mean one-port latency penalty of MC-FTSA.
    pub mc_penalty: f64,
    /// Mean FTSA transfers per instance.
    pub ftsa_transfers: f64,
    /// Mean MC-FTSA transfers per instance.
    pub mc_transfers: f64,
}

/// Measures the one-port latency penalty of FTSA vs MC-FTSA across ε.
///
/// Fine-grain instances (low granularity) are used: communication
/// dominates there, so port contention has the most room to bite.
pub fn run_contention(
    epsilons: &[usize],
    repetitions: usize,
    granularity: f64,
    seed: u64,
) -> Result<Vec<ContentionRow>, CampaignError> {
    run_contention_with_threads(epsilons, repetitions, granularity, seed, default_threads())
}

/// [`run_contention`] with an explicit worker count (results are
/// bit-identical at any thread count).
pub fn run_contention_with_threads(
    epsilons: &[usize],
    repetitions: usize,
    granularity: f64,
    seed: u64,
    threads: usize,
) -> Result<Vec<ContentionRow>, CampaignError> {
    let spec = spec_from_contention(epsilons, repetitions, granularity, seed);
    let res = run_campaign_with_threads(&spec, threads)?;
    epsilons
        .iter()
        .enumerate()
        .map(|(ei, &eps)| {
            let g = &res.groups[ei];
            Ok(ContentionRow {
                epsilon: eps,
                ftsa_penalty: g.require_mean("OnePortPenalty: FTSA")?,
                mc_penalty: g.require_mean("OnePortPenalty: MC-FTSA")?,
                ftsa_transfers: g.require_mean("Transfers: FTSA")?,
                mc_transfers: g.require_mean("Transfers: MC-FTSA")?,
            })
        })
        .collect()
}

/// Formats the contention rows as an aligned table.
pub fn format_contention(rows: &[ContentionRow]) -> String {
    let mut out = String::from(
        "  eps   FTSA 1-port penalty   MC-FTSA 1-port penalty   FTSA msgs   MC msgs\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>5} {:>21.3} {:>24.3} {:>11.0} {:>9.0}\n",
            r.epsilon, r.ftsa_penalty, r.mc_penalty, r.ftsa_transfers, r.mc_transfers
        ));
    }
    out
}

/// One row of the reliability experiment.
#[derive(Debug, Clone)]
pub struct ReliabilityRow {
    /// Tolerated failures ε.
    pub epsilon: usize,
    /// Per-processor failure probability.
    pub p: f64,
    /// Exact survival probability of the FTSA schedule.
    pub survival: f64,
    /// The `P(≤ ε failures)` design point (a guaranteed lower bound).
    pub design_point: f64,
}

/// Exact survival probabilities of FTSA schedules over a sweep of ε and
/// per-processor failure probabilities, on a small platform where the
/// `2^m` enumeration is instant.
pub fn run_reliability(
    epsilons: &[usize],
    probabilities: &[f64],
    procs: usize,
    seed: u64,
) -> Result<Vec<ReliabilityRow>, CampaignError> {
    let spec = spec_from_reliability(epsilons, probabilities, procs, seed);
    let res = run_campaign(&spec)?;
    let mut rows = Vec::new();
    for (ei, &eps) in epsilons.iter().enumerate() {
        let g = &res.groups[ei];
        for &p in probabilities {
            rows.push(ReliabilityRow {
                epsilon: eps,
                p,
                survival: g.require_mean(&format!("P(survive) p={p}"))?,
                design_point: g.require_mean(&format!("DesignPoint p={p}"))?,
            });
        }
    }
    Ok(rows)
}

/// Formats the reliability rows as an aligned table.
pub fn format_reliability(rows: &[ReliabilityRow]) -> String {
    let mut out = String::from("  eps      p    P(survive)   P(<=eps failures)   headroom\n");
    for r in rows {
        out.push_str(&format!(
            "{:>5} {:>6.2} {:>12.6} {:>19.6} {:>10.6}\n",
            r.epsilon,
            r.p,
            r.survival,
            r.design_point,
            r.survival - r.design_point
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_rows_report_mc_advantage() {
        let rows = run_contention(&[2], 4, 0.4, 77).unwrap();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.mc_penalty <= r.ftsa_penalty + 1e-9);
        assert!(r.mc_transfers < r.ftsa_transfers);
        let s = format_contention(&rows);
        assert!(s.contains("penalty"));
        // The explicit worker count is honoured and thread-invariant.
        let seq = run_contention_with_threads(&[2], 4, 0.4, 77, 1).unwrap();
        let par = run_contention_with_threads(&[2], 4, 0.4, 77, 4).unwrap();
        assert_eq!(seq[0].ftsa_penalty.to_bits(), par[0].ftsa_penalty.to_bits());
        assert_eq!(seq[0].ftsa_penalty.to_bits(), r.ftsa_penalty.to_bits());
    }

    #[test]
    fn reliability_rows_respect_theorem() {
        let rows = run_reliability(&[0, 2], &[0.1, 0.4], 8, 5).unwrap();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.survival >= r.design_point - 1e-9,
                "Theorem 4.1 lower bound"
            );
            assert!((0.0..=1.0).contains(&r.survival));
        }
        let s = format_reliability(&rows);
        assert!(s.contains("P(survive)"));
    }
}
