//! Extension experiments beyond the paper's figures: the Section 7
//! future-work directions, quantified.
//!
//! * [`run_contention`] — one-port / bounded multi-port penalties of
//!   FTSA vs MC-FTSA ("we expect MC-FTSA to be superior to other
//!   scheduling algorithms, since it already accounts for reduced
//!   communications").
//! * [`run_reliability`] — survival probability under iid processor
//!   failure probabilities ("account for the failure probability of the
//!   application").

use crate::mean;
use crate::parallel::{default_threads, parallel_map};
use ftsched_core::{schedule, Algorithm};
use platform::gen::{paper_instance, PaperInstanceConfig};
use platform::FailureScenario;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simulator::contention::{simulate_contention, PortModel};
use simulator::reliability::{design_point_probability, survival_probability_exact};

/// One row of the contention experiment.
#[derive(Debug, Clone)]
pub struct ContentionRow {
    /// Tolerated failures ε.
    pub epsilon: usize,
    /// Mean one-port latency penalty of FTSA (one-port / unbounded).
    pub ftsa_penalty: f64,
    /// Mean one-port latency penalty of MC-FTSA.
    pub mc_penalty: f64,
    /// Mean FTSA transfers per instance.
    pub ftsa_transfers: f64,
    /// Mean MC-FTSA transfers per instance.
    pub mc_transfers: f64,
}

/// Measures the one-port latency penalty of FTSA vs MC-FTSA across ε.
///
/// Fine-grain instances (low granularity) are used: communication
/// dominates there, so port contention has the most room to bite.
pub fn run_contention(
    epsilons: &[usize],
    repetitions: usize,
    granularity: f64,
    seed: u64,
) -> Vec<ContentionRow> {
    epsilons
        .iter()
        .map(|&eps| {
            let cells = parallel_map(repetitions, default_threads(), |rep| {
                let cell_seed = seed ^ (eps as u64) << 32 | rep as u64;
                let mut g = StdRng::seed_from_u64(cell_seed);
                let inst = paper_instance(
                    &mut g,
                    &PaperInstanceConfig {
                        granularity,
                        ..Default::default()
                    },
                );
                let mut tie = StdRng::seed_from_u64(cell_seed ^ 0xBEEF);
                let f = schedule(&inst, eps, Algorithm::Ftsa, &mut tie).unwrap();
                let mc = schedule(&inst, eps, Algorithm::McFtsaGreedy, &mut tie).unwrap();
                let measure = |s: &ftsched_core::Schedule| {
                    let unb = simulate_contention(
                        &inst,
                        s,
                        &FailureScenario::none(),
                        PortModel::Unbounded,
                    );
                    let one =
                        simulate_contention(&inst, s, &FailureScenario::none(), PortModel::OnePort);
                    (one.latency / unb.latency, one.transfers as f64)
                };
                let (fp, ft) = measure(&f);
                let (mp, mt) = measure(&mc);
                (fp, mp, ft, mt)
            });
            ContentionRow {
                epsilon: eps,
                ftsa_penalty: mean(&cells.iter().map(|c| c.0).collect::<Vec<_>>()),
                mc_penalty: mean(&cells.iter().map(|c| c.1).collect::<Vec<_>>()),
                ftsa_transfers: mean(&cells.iter().map(|c| c.2).collect::<Vec<_>>()),
                mc_transfers: mean(&cells.iter().map(|c| c.3).collect::<Vec<_>>()),
            }
        })
        .collect()
}

/// Formats the contention rows as an aligned table.
pub fn format_contention(rows: &[ContentionRow]) -> String {
    let mut out = String::from(
        "  eps   FTSA 1-port penalty   MC-FTSA 1-port penalty   FTSA msgs   MC msgs\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>5} {:>21.3} {:>24.3} {:>11.0} {:>9.0}\n",
            r.epsilon, r.ftsa_penalty, r.mc_penalty, r.ftsa_transfers, r.mc_transfers
        ));
    }
    out
}

/// One row of the reliability experiment.
#[derive(Debug, Clone)]
pub struct ReliabilityRow {
    /// Tolerated failures ε.
    pub epsilon: usize,
    /// Per-processor failure probability.
    pub p: f64,
    /// Exact survival probability of the FTSA schedule.
    pub survival: f64,
    /// The `P(≤ ε failures)` design point (a guaranteed lower bound).
    pub design_point: f64,
}

/// Exact survival probabilities of FTSA schedules over a sweep of ε and
/// per-processor failure probabilities, on a small platform where the
/// `2^m` enumeration is instant.
pub fn run_reliability(
    epsilons: &[usize],
    probabilities: &[f64],
    procs: usize,
    seed: u64,
) -> Vec<ReliabilityRow> {
    let mut g = StdRng::seed_from_u64(seed);
    let inst = paper_instance(
        &mut g,
        &PaperInstanceConfig {
            tasks_lo: 60,
            tasks_hi: 60,
            procs,
            granularity: 1.0,
            ..Default::default()
        },
    );
    let mut rows = Vec::new();
    for &eps in epsilons {
        let mut tie = StdRng::seed_from_u64(seed ^ eps as u64);
        let sched = schedule(&inst, eps, Algorithm::Ftsa, &mut tie).unwrap();
        for &p in probabilities {
            rows.push(ReliabilityRow {
                epsilon: eps,
                p,
                survival: survival_probability_exact(&inst, &sched, p),
                design_point: design_point_probability(procs, eps, p),
            });
        }
    }
    rows
}

/// Formats the reliability rows as an aligned table.
pub fn format_reliability(rows: &[ReliabilityRow]) -> String {
    let mut out = String::from("  eps      p    P(survive)   P(<=eps failures)   headroom\n");
    for r in rows {
        out.push_str(&format!(
            "{:>5} {:>6.2} {:>12.6} {:>19.6} {:>10.6}\n",
            r.epsilon,
            r.p,
            r.survival,
            r.design_point,
            r.survival - r.design_point
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_rows_report_mc_advantage() {
        let rows = run_contention(&[2], 4, 0.4, 77);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.mc_penalty <= r.ftsa_penalty + 1e-9);
        assert!(r.mc_transfers < r.ftsa_transfers);
        let s = format_contention(&rows);
        assert!(s.contains("penalty"));
    }

    #[test]
    fn reliability_rows_respect_theorem() {
        let rows = run_reliability(&[0, 2], &[0.1, 0.4], 8, 5);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.survival >= r.design_point - 1e-9,
                "Theorem 4.1 lower bound"
            );
            assert!((0.0..=1.0).contains(&r.survival));
        }
        let s = format_reliability(&rows);
        assert!(s.contains("P(survive)"));
    }
}
