//! Table 1: running times of FTSA, MC-FTSA and FTBAR.
//!
//! Paper setup: 50 processors, ε = 5, task counts 100–5000, wall-clock
//! seconds of the scheduling algorithms themselves (no simulation). The
//! reproducible claim is the *scaling shape*: FTSA and MC-FTSA stay
//! near-linear in `v` while FTBAR's per-step sweep over all free tasks ×
//! processors blows up (`O(P·N³)` in the paper).
//!
//! Since the campaign refactor a [`Table1Config`] maps onto a
//! [`crate::campaign::CampaignSpec`] (one fixed-size workload per row,
//! `PaperTable` seeding, timing measures, FTBAR capped — see
//! [`crate::campaign::presets::spec_from_table1`]); this module folds
//! the group statistics back into [`Table1Row`]s. The deterministic
//! latency columns are pinned bit-identical to the pre-campaign driver
//! by `tests/campaign_parity.rs`; the seconds columns measure the
//! machine and are not pinned.

use crate::campaign::{
    presets::spec_from_table1, run_campaign_with_threads, CampaignError, CampaignResult,
};
use ftsched_core::Algorithm;

/// Configuration of the timing experiment.
#[derive(Debug, Clone)]
pub struct Table1Config {
    /// Task counts to measure (paper: 100, 500, 1000, 2000, 3000, 5000).
    pub sizes: Vec<usize>,
    /// Processor count (paper: 50).
    pub procs: usize,
    /// Tolerated failures (paper: 5).
    pub epsilon: usize,
    /// Cap above which FTBAR is skipped (its cubic growth makes the
    /// largest paper sizes take minutes; `usize::MAX` measures all).
    pub ftbar_size_cap: usize,
    /// Additional pipeline configurations timed alongside the paper's
    /// three; each contributes one extra column named after
    /// [`Algorithm::name`].
    pub extra_algorithms: Vec<Algorithm>,
    /// Base RNG seed.
    pub seed: u64,
}

impl Table1Config {
    /// The paper's full configuration.
    pub fn paper() -> Self {
        Table1Config {
            sizes: vec![100, 500, 1000, 2000, 3000, 5000],
            procs: 50,
            epsilon: 5,
            ftbar_size_cap: usize::MAX,
            extra_algorithms: Vec::new(),
            seed: 0x7AB1E1,
        }
    }

    /// A minutes-friendly subset used by default runs and benches.
    pub fn quick() -> Self {
        Table1Config {
            sizes: vec![100, 500, 1000, 2000],
            procs: 50,
            epsilon: 5,
            ftbar_size_cap: 2000,
            extra_algorithms: Vec::new(),
            seed: 0x7AB1E1,
        }
    }
}

/// One measured row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Number of tasks `v`.
    pub tasks: usize,
    /// FTSA wall-clock seconds.
    pub ftsa_secs: f64,
    /// MC-FTSA (greedy) wall-clock seconds.
    pub mc_ftsa_secs: f64,
    /// FTBAR wall-clock seconds (`None` when skipped by the cap).
    pub ftbar_secs: Option<f64>,
    /// Latency lower bound `M*` of the FTSA schedule — deterministic in
    /// `(cfg.seed, tasks)` alone, so it is identical whatever the thread
    /// count or machine (unlike the wall-clock columns).
    pub ftsa_latency: f64,
    /// Latency lower bound of the MC-FTSA (greedy) schedule.
    pub mc_ftsa_latency: f64,
    /// Latency lower bound of the FTBAR schedule (`None` when skipped).
    pub ftbar_latency: Option<f64>,
    /// One `(name, wall-clock seconds, latency lower bound)` triple per
    /// requested extra algorithm, in [`Table1Config::extra_algorithms`]
    /// order.
    pub extra: Vec<(String, f64, f64)>,
}

/// Runs the timing experiment sequentially (one row at a time), keeping
/// the wall-clock columns free of co-scheduling noise.
pub fn run_table1(cfg: &Table1Config) -> Result<Vec<Table1Row>, CampaignError> {
    run_table1_with_threads(cfg, 1)
}

/// Runs the timing experiment with rows fanned out over `threads`
/// workers through the campaign executor. The latency columns are
/// unaffected by the worker count; the seconds columns measure
/// algorithms that now run concurrently, so absolute timings are only
/// comparable within a run at the same thread count (the scaling
/// *shape* — Table 1's claim — is preserved).
pub fn run_table1_with_threads(
    cfg: &Table1Config,
    threads: usize,
) -> Result<Vec<Table1Row>, CampaignError> {
    let spec = spec_from_table1(cfg);
    let res = run_campaign_with_threads(&spec, threads)?;
    rows_from_campaign(cfg, &res)
}

fn rows_from_campaign(
    cfg: &Table1Config,
    res: &CampaignResult,
) -> Result<Vec<Table1Row>, CampaignError> {
    cfg.sizes
        .iter()
        .enumerate()
        .map(|(wi, &v)| {
            // One platform point and one ε: group index == workload index.
            let g = &res.groups[wi];
            let secs = |alg: Algorithm| g.mean(&format!("Seconds: {}", alg.name()));
            let latency = |alg: Algorithm| g.mean(&format!("{}-LowerBound", alg.name()));
            let extra = cfg
                .extra_algorithms
                .iter()
                .filter_map(|&alg| Some((alg.name().to_string(), secs(alg)?, latency(alg)?)))
                .collect();
            Ok(Table1Row {
                tasks: v,
                ftsa_secs: g.require_mean(&format!("Seconds: {}", Algorithm::Ftsa.name()))?,
                mc_ftsa_secs: g
                    .require_mean(&format!("Seconds: {}", Algorithm::McFtsaGreedy.name()))?,
                ftbar_secs: secs(Algorithm::Ftbar),
                ftsa_latency: g.require_mean(&format!("{}-LowerBound", Algorithm::Ftsa.name()))?,
                mc_ftsa_latency: g
                    .require_mean(&format!("{}-LowerBound", Algorithm::McFtsaGreedy.name()))?,
                ftbar_latency: latency(Algorithm::Ftbar),
                extra,
            })
        })
        .collect()
}

/// Formats the rows like the paper's Table 1 (extra algorithm columns
/// appended after FTBAR).
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str("Number of tasks    FTSA     MC-FTSA    FTBAR");
    if let Some(first) = rows.first() {
        for (name, _, _) in &first.extra {
            out.push_str(&format!(" {name:>10}"));
        }
    }
    out.push('\n');
    for r in rows {
        let fb = r
            .ftbar_secs
            .map_or_else(|| "   (skipped)".into(), |s| format!("{s:>9.2}"));
        out.push_str(&format!(
            "{:>14} {:>8.2} {:>10.2} {}",
            r.tasks, r.ftsa_secs, r.mc_ftsa_secs, fb
        ));
        for &(_, secs, _) in &r.extra {
            out.push_str(&format!(" {secs:>10.2}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table_runs_and_orders() {
        let cfg = Table1Config {
            sizes: vec![100, 300],
            procs: 20,
            epsilon: 2,
            ftbar_size_cap: 300,
            extra_algorithms: vec![],
            seed: 1,
        };
        let rows = run_table1(&cfg).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.ftsa_secs >= 0.0);
            assert!(r.ftbar_secs.is_some());
        }
        // FTBAR must be slower than FTSA at the larger size — this is the
        // paper's central Table 1 claim (debug builds keep the ordering).
        let last = &rows[1];
        assert!(
            last.ftbar_secs.unwrap() > last.ftsa_secs,
            "FTBAR ({}s) should be slower than FTSA ({}s)",
            last.ftbar_secs.unwrap(),
            last.ftsa_secs
        );
    }

    #[test]
    fn cap_skips_ftbar() {
        let cfg = Table1Config {
            sizes: vec![200],
            procs: 10,
            epsilon: 1,
            ftbar_size_cap: 100,
            extra_algorithms: vec![],
            seed: 2,
        };
        let rows = run_table1(&cfg).unwrap();
        assert!(rows[0].ftbar_secs.is_none());
        assert!(rows[0].ftbar_latency.is_none());
        let s = format_table1(&rows);
        assert!(s.contains("skipped"));
    }

    #[test]
    fn formatting_contains_header_and_sizes() {
        let rows = vec![Table1Row {
            tasks: 100,
            ftsa_secs: 0.01,
            mc_ftsa_secs: 0.02,
            ftbar_secs: Some(0.15),
            ftsa_latency: 12.5,
            mc_ftsa_latency: 13.0,
            ftbar_latency: Some(20.0),
            extra: vec![("P-FTSA".into(), 0.03, 14.0)],
        }];
        let s = format_table1(&rows);
        assert!(s.contains("Number of tasks"));
        assert!(s.contains("100"));
    }

    #[test]
    fn extra_algorithm_columns_measured_and_formatted() {
        let cfg = Table1Config {
            sizes: vec![80],
            procs: 10,
            epsilon: 1,
            ftbar_size_cap: 80,
            extra_algorithms: vec![Algorithm::FtsaPressure, Algorithm::FtbarMatched],
            seed: 9,
        };
        let rows = run_table1(&cfg).unwrap();
        assert_eq!(rows[0].extra.len(), 2);
        assert_eq!(rows[0].extra[0].0, "P-FTSA");
        assert_eq!(rows[0].extra[1].0, "MC-FTBAR");
        for &(_, secs, latency) in &rows[0].extra {
            assert!(secs >= 0.0 && latency > 0.0);
        }
        let s = format_table1(&rows);
        assert!(s.contains("P-FTSA") && s.contains("MC-FTBAR"), "{s}");
    }

    #[test]
    fn latency_columns_are_thread_invariant() {
        let cfg = Table1Config {
            sizes: vec![60, 120],
            procs: 10,
            epsilon: 1,
            ftbar_size_cap: 120,
            extra_algorithms: vec![],
            seed: 3,
        };
        let seq = run_table1_with_threads(&cfg, 1).unwrap();
        let par = run_table1_with_threads(&cfg, 4).unwrap();
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.tasks, b.tasks);
            assert_eq!(a.ftsa_latency.to_bits(), b.ftsa_latency.to_bits());
            assert_eq!(a.mc_ftsa_latency.to_bits(), b.mc_ftsa_latency.to_bits());
            assert_eq!(
                a.ftbar_latency.map(f64::to_bits),
                b.ftbar_latency.map(f64::to_bits)
            );
        }
    }
}
