//! Extension experiment (paper Section 7, future work): application
//! failure probability. Exact survival probability of FTSA schedules
//! under iid per-processor failure probabilities, against the
//! `P(≤ ε failures)` design point that Theorem 4.1 guarantees. A thin
//! wrapper over the `reliability` campaign preset.
//!
//! Usage: `reliability [--procs M]`

mod common;

use experiments::extensions::{format_reliability, run_reliability};

fn main() {
    let opts = common::options();
    let procs: usize = opts.num_or_exit("procs", 10);

    println!("== exact schedule survival probability ({procs} processors) ==\n");
    let rows = common::run_or_exit(run_reliability(
        &[0, 1, 2, 4],
        &[0.01, 0.05, 0.1, 0.25, 0.5],
        procs,
        0x8E11,
    ));
    print!("{}", format_reliability(&rows));
    println!(
        "\nheadroom = survival beyond the guaranteed P(<=eps failures): active\n\
         replication often masks MORE failure patterns than it promises,\n\
         because distinct tasks' replica sets rarely all align on the same\n\
         failed processors."
    );
}
