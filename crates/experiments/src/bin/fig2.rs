//! Regenerates Figure 2 of the paper: average normalized latency and
//! overhead comparison between FTSA, MC-FTSA and FTBAR (bound and crash
//! cases, ε = 2, 20 processors). A thin wrapper over the `fig2`
//! campaign preset.
//!
//! Usage: `fig2 [--reps N | --quick] [--out DIR] [--threads T]`

mod common;

fn main() {
    let opts = common::options();
    let cfg = common::figure_config("fig2", &opts);
    common::run_comparison_figure(&cfg, &opts);
}
