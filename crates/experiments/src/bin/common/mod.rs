#![allow(dead_code)] // each binary uses a subset of these helpers

//! Shared glue for the experiment binaries, built on the campaign
//! preset layer and the one shared argument parser
//! (`experiments::args`): every binary honours the same
//! `--quick/--reps/--out/--threads` contract, builds its grid through
//! `campaign::presets`, and prints the historical panels.

use experiments::args::RunOptions;
use experiments::campaign::CampaignError;
use experiments::figures::{run_figure_with_threads, FigureConfig, FigureResult};
use experiments::output::{figure_to_table, write_figure_csv};
use experiments::table1::{format_table1, run_table1_with_threads, Table1Config};

/// Parses the shared experiment options from the process arguments.
pub fn options() -> RunOptions {
    RunOptions::from_env()
}

/// Unwraps a campaign-backed driver result, exiting with a message
/// instead of panicking (these presets are internally valid, so this
/// only fires on a genuine regression).
pub fn run_or_exit<T>(res: Result<T, CampaignError>) -> T {
    res.unwrap_or_else(|e| {
        eprintln!("experiment failed: {e}");
        std::process::exit(1);
    })
}

/// The figure preset configuration for `fig1`–`fig4` at the requested
/// repetitions (the paper's 60 by default, `--quick` = 10).
pub fn figure_config(name: &str, opts: &RunOptions) -> FigureConfig {
    let reps = opts.repetitions(60);
    match name {
        "fig1" => FigureConfig::comparison("fig1", 1, reps),
        "fig2" => FigureConfig::comparison("fig2", 2, reps),
        "fig3" => FigureConfig::comparison("fig3", 5, reps),
        "fig4" => FigureConfig::small_platform(reps),
        other => panic!("unknown figure preset `{other}`"),
    }
}

/// The Table 1 preset configuration (`--full` = the paper's complete
/// size list including FTBAR at 5000 tasks).
pub fn table1_config(opts: &RunOptions) -> Table1Config {
    if opts.full() {
        Table1Config::paper()
    } else {
        Table1Config::quick()
    }
}

/// Runs a comparison figure (Figures 1–3) and prints its three panels.
pub fn run_comparison_figure(cfg: &FigureConfig, opts: &RunOptions) {
    let eps = cfg.epsilon;
    println!(
        "== {} — ε = {eps}, {} processors, {} graphs/point ==\n",
        cfg.id, cfg.procs, cfg.repetitions
    );
    let fig = run_or_exit(run_figure_with_threads(cfg, opts.threads()));

    println!("--- ({}a) normalized latency bounds ---", cfg.id);
    println!(
        "{}",
        figure_to_table(
            &fig,
            &[
                "FTSA-LowerBound",
                "FTSA-UpperBound",
                "FTBAR-LowerBound",
                "FTBAR-UpperBound",
                "MC-FTSA-LowerBound",
                "MC-FTSA-UpperBound",
                "FaultFree-FTSA",
                "FaultFree-FTBAR",
            ],
        )
    );

    let mut crash_series: Vec<String> = vec![
        format!("FTSA with {eps} Crash"),
        format!("MC-FTSA with {eps} Crash"),
        format!("FTBAR with {eps} Crash"),
        "FTSA with 0 Crash".to_string(),
    ];
    for &k in &cfg.extra_crash_counts {
        crash_series.push(format!("FTSA with {k} Crash"));
    }
    crash_series.push("FaultFree-FTSA".to_string());
    let refs: Vec<&str> = crash_series.iter().map(String::as_str).collect();
    println!("--- ({}b) crash-case normalized latency ---", cfg.id);
    println!("{}", figure_to_table(&fig, &refs));

    let mut ov_series: Vec<String> = vec![
        format!("Overhead: FTSA with {eps} Crash"),
        format!("Overhead: MC-FTSA with {eps} Crash"),
        format!("Overhead: FTBAR with {eps} Crash"),
        "Overhead: FTSA with 0 Crash".to_string(),
    ];
    for &k in &cfg.extra_crash_counts {
        ov_series.push(format!("Overhead: FTSA with {k} Crash"));
    }
    let refs: Vec<&str> = ov_series.iter().map(String::as_str).collect();
    println!("--- ({}c) average overhead (%) ---", cfg.id);
    println!("{}", figure_to_table(&fig, &refs));

    write_csv(&fig, opts);
}

/// Runs the Table 1 preset and prints it.
pub fn run_table1_main(opts: &RunOptions) {
    let cfg = table1_config(opts);
    println!(
        "== Table 1 — running times in seconds ({} processors, ε = {}) ==",
        cfg.procs, cfg.epsilon
    );
    if !opts.full() {
        println!("(quick subset; pass --full for the paper's complete size list)");
    }
    println!();
    // Sequential by default: the seconds columns measure the algorithms,
    // and co-scheduled rows would contend for cores.
    let threads = opts.num_or_exit("threads", 1).max(1);
    let rows = run_or_exit(run_table1_with_threads(&cfg, threads));
    print!("{}", format_table1(&rows));
}

/// Writes the figure CSV and reports where it went.
pub fn write_csv(fig: &FigureResult, opts: &RunOptions) {
    match write_figure_csv(fig, &opts.out_dir()) {
        Ok(path) => println!("[csv] {}", path.display()),
        Err(e) => eprintln!("[csv] failed to write: {e}"),
    }
}
