#![allow(dead_code)] // each binary uses a subset of these helpers

//! Shared glue for the figure binaries: argument parsing, printing the
//! three sub-figures (bounds / crash latency / overhead) and CSV output.

use experiments::figures::{run_figure, FigureConfig, FigureResult};
use experiments::output::{figure_to_table, write_figure_csv};
use std::path::PathBuf;

/// Repetitions from `--reps N` (default: the paper's 60; `--quick` = 10).
pub fn repetitions_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--quick") {
        return 10;
    }
    args.iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(60)
}

/// Output directory from `--out DIR` (default `results/`).
pub fn out_dir_from_args() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or_else(|| PathBuf::from("results"), PathBuf::from)
}

/// Runs a comparison figure (Figures 1–3) and prints its three panels.
pub fn run_comparison_figure(cfg: &FigureConfig) {
    let eps = cfg.epsilon;
    println!(
        "== {} — ε = {eps}, {} processors, {} graphs/point ==\n",
        cfg.id, cfg.procs, cfg.repetitions
    );
    let fig = run_figure(cfg);

    println!("--- ({}a) normalized latency bounds ---", cfg.id);
    println!(
        "{}",
        figure_to_table(
            &fig,
            &[
                "FTSA-LowerBound",
                "FTSA-UpperBound",
                "FTBAR-LowerBound",
                "FTBAR-UpperBound",
                "MC-FTSA-LowerBound",
                "MC-FTSA-UpperBound",
                "FaultFree-FTSA",
                "FaultFree-FTBAR",
            ],
        )
    );

    let mut crash_series: Vec<String> = vec![
        format!("FTSA with {eps} Crash"),
        format!("MC-FTSA with {eps} Crash"),
        format!("FTBAR with {eps} Crash"),
        "FTSA with 0 Crash".to_string(),
    ];
    for &k in &cfg.extra_crash_counts {
        crash_series.push(format!("FTSA with {k} Crash"));
    }
    crash_series.push("FaultFree-FTSA".to_string());
    let refs: Vec<&str> = crash_series.iter().map(String::as_str).collect();
    println!("--- ({}b) crash-case normalized latency ---", cfg.id);
    println!("{}", figure_to_table(&fig, &refs));

    let mut ov_series: Vec<String> = vec![
        format!("Overhead: FTSA with {eps} Crash"),
        format!("Overhead: MC-FTSA with {eps} Crash"),
        format!("Overhead: FTBAR with {eps} Crash"),
        "Overhead: FTSA with 0 Crash".to_string(),
    ];
    for &k in &cfg.extra_crash_counts {
        ov_series.push(format!("Overhead: FTSA with {k} Crash"));
    }
    let refs: Vec<&str> = ov_series.iter().map(String::as_str).collect();
    println!("--- ({}c) average overhead (%) ---", cfg.id);
    println!("{}", figure_to_table(&fig, &refs));

    write_csv(&fig);
}

/// Writes the figure CSV and reports where it went.
pub fn write_csv(fig: &FigureResult) {
    let dir = out_dir_from_args();
    match write_figure_csv(fig, &dir) {
        Ok(path) => println!("[csv] {}", path.display()),
        Err(e) => eprintln!("[csv] failed to write: {e}"),
    }
}
