//! Extension experiment (paper Section 7, future work): one-port
//! communication contention. Quantifies the prediction that MC-FTSA's
//! `e(ε+1)` messages pay a smaller serialization penalty than FTSA's
//! `e(ε+1)²`. A thin wrapper over the `contention` campaign preset.
//!
//! Usage: `contention [--reps N | --quick] [--granularity G] [--threads T]`

mod common;

use experiments::extensions::{format_contention, run_contention_with_threads};

fn main() {
    let opts = common::options();
    let reps = opts.repetitions(30);
    let granularity: f64 = opts.num_or_exit("granularity", 0.4);

    println!(
        "== one-port contention, fine-grain instances (g = {granularity}), \
         {reps} graphs/point =="
    );
    println!("(penalty = one-port latency / unbounded latency, fault-free)\n");
    let rows = common::run_or_exit(run_contention_with_threads(
        &[1, 2, 3, 5],
        reps,
        granularity,
        0xC0417,
        opts.threads(),
    ));
    print!("{}", format_contention(&rows));
}
