//! Extension experiment (paper Section 7, future work): one-port
//! communication contention. Quantifies the prediction that MC-FTSA's
//! `e(ε+1)` messages pay a smaller serialization penalty than FTSA's
//! `e(ε+1)²`.
//!
//! Usage: `contention [--reps N] [--granularity G]`

use experiments::extensions::{format_contention, run_contention};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let reps = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let granularity = args
        .iter()
        .position(|a| a == "--granularity")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.4);

    println!(
        "== one-port contention, fine-grain instances (g = {granularity}), \
         {reps} graphs/point =="
    );
    println!("(penalty = one-port latency / unbounded latency, fault-free)\n");
    let rows = run_contention(&[1, 2, 3, 5], reps, granularity, 0xC0417);
    print!("{}", format_contention(&rows));
}
