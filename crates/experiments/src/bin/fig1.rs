//! Regenerates Figure 1 of the paper: average normalized latency and
//! overhead comparison between FTSA, MC-FTSA and FTBAR (bound and crash
//! cases, ε = 1, 20 processors).
//!
//! Usage: `fig1 [--reps N | --quick] [--out DIR]`

mod common;

use experiments::figures::FigureConfig;

fn main() {
    let reps = common::repetitions_from_args();
    let cfg = FigureConfig::comparison("fig1", 1, reps);
    common::run_comparison_figure(&cfg);
}
