//! Regenerates Figure 4 of the paper: average normalized latency and
//! overhead for FTSA with 0, 1 and 2 crashes on a *small* platform
//! (5 processors, ε = 2) — where the latency increase with the number of
//! failures becomes clearly visible. A thin wrapper over the `fig4`
//! campaign preset.
//!
//! Usage: `fig4 [--reps N | --quick] [--out DIR] [--threads T]`

mod common;

use experiments::figures::run_figure_with_threads;
use experiments::output::figure_to_table;

fn main() {
    let opts = common::options();
    let cfg = common::figure_config("fig4", &opts);
    println!(
        "== fig4 — ε = 2, {} processors, {} graphs/point ==\n",
        cfg.procs, cfg.repetitions
    );
    let fig = common::run_or_exit(run_figure_with_threads(&cfg, opts.threads()));

    println!("--- (fig4a) normalized latency, FTSA with 0/1/2 crashes ---");
    println!(
        "{}",
        figure_to_table(
            &fig,
            &[
                "FTSA with 2 Crash",
                "FTSA with 1 Crash",
                "FTSA with 0 Crash",
                "FaultFree-FTSA",
            ],
        )
    );

    println!("--- (fig4b) average overhead (%) ---");
    println!(
        "{}",
        figure_to_table(
            &fig,
            &[
                "Overhead: FTSA with 2 Crash",
                "Overhead: FTSA with 1 Crash",
                "Overhead: FTSA with 0 Crash",
            ],
        )
    );

    common::write_csv(&fig, &opts);
}
