//! Regenerates Figure 3 of the paper: average normalized latency and
//! overhead comparison between FTSA, MC-FTSA and FTBAR (bound and crash
//! cases, ε = 5, 20 processors). A thin wrapper over the `fig3`
//! campaign preset.
//!
//! Usage: `fig3 [--reps N | --quick] [--out DIR] [--threads T]`

mod common;

fn main() {
    let opts = common::options();
    let cfg = common::figure_config("fig3", &opts);
    common::run_comparison_figure(&cfg, &opts);
}
