//! Regenerates Figure 3 of the paper: average normalized latency and
//! overhead comparison between FTSA, MC-FTSA and FTBAR (bound and crash
//! cases, ε = 5, 20 processors).
//!
//! Usage: `fig3 [--reps N | --quick] [--out DIR]`

mod common;

use experiments::figures::FigureConfig;

fn main() {
    let reps = common::repetitions_from_args();
    let cfg = FigureConfig::comparison("fig3", 5, reps);
    common::run_comparison_figure(&cfg);
}
