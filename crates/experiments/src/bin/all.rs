//! Regenerates every figure and table of the paper in one run, through
//! the campaign presets.
//!
//! Usage: `all [--reps N | --quick] [--out DIR] [--threads T] [--full]`

mod common;

use experiments::figures::run_figure_with_threads;
use experiments::output::figure_to_table;

fn main() {
    let opts = common::options();
    for id in ["fig1", "fig2", "fig3"] {
        let cfg = common::figure_config(id, &opts);
        common::run_comparison_figure(&cfg, &opts);
        println!();
    }

    // Figure 4 (small platform).
    let cfg = common::figure_config("fig4", &opts);
    println!(
        "== fig4 — ε = 2, 5 processors, {} graphs/point ==",
        cfg.repetitions
    );
    let fig = common::run_or_exit(run_figure_with_threads(&cfg, opts.threads()));
    println!(
        "{}",
        figure_to_table(
            &fig,
            &[
                "FTSA with 2 Crash",
                "FTSA with 1 Crash",
                "FTSA with 0 Crash",
                "Overhead: FTSA with 2 Crash",
                "Overhead: FTSA with 1 Crash",
            ],
        )
    );
    common::write_csv(&fig, &opts);
    println!();

    common::run_table1_main(&opts);
}
