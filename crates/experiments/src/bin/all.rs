//! Regenerates every figure and table of the paper in one run.
//!
//! Usage: `all [--reps N | --quick] [--out DIR] [--full]`

mod common;

use experiments::figures::FigureConfig;
use experiments::table1::{format_table1, run_table1, Table1Config};

fn main() {
    let reps = common::repetitions_from_args();
    for (id, eps) in [("fig1", 1usize), ("fig2", 2), ("fig3", 5)] {
        let cfg = FigureConfig::comparison(id, eps, reps);
        common::run_comparison_figure(&cfg);
        println!();
    }

    // Figure 4 (small platform).
    let cfg = FigureConfig::small_platform(reps);
    println!("== fig4 — ε = 2, 5 processors, {reps} graphs/point ==");
    let fig = experiments::figures::run_figure(&cfg);
    println!(
        "{}",
        experiments::output::figure_to_table(
            &fig,
            &[
                "FTSA with 2 Crash",
                "FTSA with 1 Crash",
                "FTSA with 0 Crash",
                "Overhead: FTSA with 2 Crash",
                "Overhead: FTSA with 1 Crash",
            ],
        )
    );
    common::write_csv(&fig);
    println!();

    let full = std::env::args().any(|a| a == "--full");
    let tcfg = if full {
        Table1Config::paper()
    } else {
        Table1Config::quick()
    };
    println!("== Table 1 — running times in seconds ==");
    print!("{}", format_table1(&run_table1(&tcfg)));
}
