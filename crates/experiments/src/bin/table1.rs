//! Regenerates Table 1 of the paper: running times (seconds) of FTSA,
//! MC-FTSA and FTBAR for task graphs of 100–5000 tasks on 50 processors
//! with ε = 5. A thin wrapper over the `table1` campaign preset.
//!
//! Usage: `table1 [--full] [--threads T]`
//!
//! By default the quick subset (up to 2000 tasks) runs; `--full` measures
//! the paper's complete size list including FTBAR at 5000 tasks, which
//! takes a while by design — that blow-up *is* the table's claim.

mod common;

fn main() {
    let opts = common::options();
    common::run_table1_main(&opts);
}
