//! Regenerates Table 1 of the paper: running times (seconds) of FTSA,
//! MC-FTSA and FTBAR for task graphs of 100–5000 tasks on 50 processors
//! with ε = 5.
//!
//! Usage: `table1 [--full]`
//!
//! By default the quick subset (up to 2000 tasks) runs; `--full` measures
//! the paper's complete size list including FTBAR at 5000 tasks, which
//! takes a while by design — that blow-up *is* the table's claim.

use experiments::table1::{format_table1, run_table1, Table1Config};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let cfg = if full {
        Table1Config::paper()
    } else {
        Table1Config::quick()
    };
    println!(
        "== Table 1 — running times in seconds ({} processors, ε = {}) ==",
        cfg.procs, cfg.epsilon
    );
    if !full {
        println!("(quick subset; pass --full for the paper's complete size list)");
    }
    println!();
    let rows = run_table1(&cfg);
    print!("{}", format_table1(&rows));
}
