//! CSV/JSON emission and ASCII plotting of experiment series.

use crate::campaign::CampaignResult;
use crate::figures::FigureResult;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::Path;

/// Escapes one CSV field: fields containing commas, quotes or newlines
/// are wrapped in double quotes with embedded quotes doubled (RFC 4180);
/// everything else passes through untouched.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders a figure as CSV: one row per granularity, one column per
/// series, columns sorted by name for stable diffs.
///
/// The series-name union is built in a single pass over the points into
/// an ordered set (the pre-campaign version re-collected every point's
/// full key list into one flat vector and sorted that — quadratic-ish in
/// points × series for no benefit).
pub fn figure_to_csv(fig: &FigureResult) -> String {
    let mut names: BTreeSet<&str> = BTreeSet::new();
    for p in &fig.points {
        for k in p.series.keys() {
            names.insert(k.as_str());
        }
    }

    let mut out = String::new();
    out.push_str("granularity");
    for n in &names {
        let _ = write!(out, ",{}", csv_field(n));
    }
    out.push('\n');
    for p in &fig.points {
        let _ = write!(out, "{:.3}", p.granularity);
        for n in &names {
            match p.series.get(*n) {
                Some(v) => {
                    let _ = write!(out, ",{v:.6}");
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

/// Writes the figure CSV under `dir/<id>.csv`, creating `dir`.
pub fn write_figure_csv(fig: &FigureResult, dir: &Path) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.csv", fig.id));
    std::fs::write(&path, figure_to_csv(fig))?;
    Ok(path)
}

/// Renders a campaign as long-format CSV: one row per (group, series)
/// with the axis coordinates and the full statistics. Deterministic
/// (groups in grid order, series sorted by name), so thread-matrix runs
/// diff byte-for-byte.
pub fn campaign_to_csv(res: &CampaignResult) -> String {
    let mut out = String::from(
        "workload,procs,granularity,epsilon,series,count,mean,stddev,min,max,p50,p90\n",
    );
    for g in &res.groups {
        for s in &g.series {
            let _ = writeln!(
                out,
                "{},{},{:.6},{},{},{},{:.9},{:.9},{:.9},{:.9},{:.9},{:.9}",
                csv_field(&g.workload),
                g.procs,
                g.granularity,
                g.epsilon,
                csv_field(&s.name),
                s.count,
                s.mean,
                s.stddev,
                s.min,
                s.max,
                s.p50,
                s.p90,
            );
        }
    }
    out
}

/// Renders a campaign as pretty JSON (serde round-trippable, fully
/// deterministic — the CI thread matrix compares these byte-for-byte).
pub fn campaign_to_json(res: &CampaignResult) -> String {
    serde_json::to_string_pretty(res).expect("campaign results are always serializable")
}

/// Writes `<dir>/<id>.campaign.csv` and `<dir>/<id>.campaign.json`,
/// creating `dir`; returns the two paths.
pub fn write_campaign_outputs(
    res: &CampaignResult,
    dir: &Path,
) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let csv = dir.join(format!("{}.campaign.csv", res.id));
    std::fs::write(&csv, campaign_to_csv(res))?;
    let json = dir.join(format!("{}.campaign.json", res.id));
    std::fs::write(&json, campaign_to_json(res))?;
    Ok((csv, json))
}

/// Prints selected series of a figure as an aligned text table (the
/// "rows the paper reports").
pub fn figure_to_table(fig: &FigureResult, series: &[&str]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:>11}", "granularity");
    for s in series {
        let _ = write!(out, "  {s:>24}");
    }
    out.push('\n');
    for p in &fig.points {
        let _ = write!(out, "{:>11.1}", p.granularity);
        for s in series {
            match p.series.get(*s) {
                Some(v) => {
                    let _ = write!(out, "  {v:>24.3}");
                }
                None => {
                    let _ = write!(out, "  {:>24}", "-");
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Prints a campaign as aligned text: one block per group, mean ± stddev
/// per series.
pub fn campaign_to_table(res: &CampaignResult) -> String {
    let mut out = String::new();
    for g in &res.groups {
        let _ = writeln!(
            out,
            "== {} | {} procs | g = {:.2} | eps = {} ==",
            g.workload, g.procs, g.granularity, g.epsilon
        );
        for s in &g.series {
            let _ = writeln!(
                out,
                "  {:<42} {:>14.4} ± {:>10.4}  (n = {})",
                s.name, s.mean, s.stddev, s.count
            );
        }
    }
    out
}

/// Minimal ASCII line plot of one series against granularity.
pub fn ascii_plot(fig: &FigureResult, series: &str, height: usize) -> String {
    let values: Vec<(f64, f64)> = fig
        .points
        .iter()
        .filter_map(|p| p.series.get(series).map(|&v| (p.granularity, v)))
        .collect();
    if values.is_empty() {
        return format!("(no data for series {series})\n");
    }
    let ymax = values
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::NEG_INFINITY, f64::max);
    let ymin = values.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
    let span = (ymax - ymin).max(1e-12);
    let height = height.max(3);

    let mut rows = vec![vec![' '; values.len() * 6]; height];
    for (i, &(_, v)) in values.iter().enumerate() {
        let level = ((v - ymin) / span * (height - 1) as f64).round() as usize;
        let row = height - 1 - level;
        rows[row][i * 6 + 2] = '*';
    }
    let mut out = format!("{series}  [{ymin:.2} .. {ymax:.2}]\n");
    for r in rows {
        out.push('|');
        out.extend(r);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(values.len() * 6));
    out.push('\n');
    out.push_str(" g: ");
    for &(g, _) in &values {
        let _ = write!(out, "{g:>5.1} ");
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::FigurePoint;
    use std::collections::BTreeMap;

    fn fig() -> FigureResult {
        let mut s1 = BTreeMap::new();
        s1.insert("A".to_string(), 1.0);
        s1.insert("B".to_string(), 2.0);
        let mut s2 = BTreeMap::new();
        s2.insert("A".to_string(), 3.0);
        s2.insert("B".to_string(), 4.0);
        FigureResult {
            id: "figtest".into(),
            points: vec![
                FigurePoint {
                    granularity: 0.2,
                    series: s1,
                },
                FigurePoint {
                    granularity: 0.4,
                    series: s2,
                },
            ],
        }
    }

    #[test]
    fn csv_shape() {
        let csv = figure_to_csv(&fig());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "granularity,A,B");
        assert!(lines[1].starts_with("0.200,1.000000,2.000000"));
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn csv_column_order_is_stable_and_commas_escaped() {
        // Points with disjoint, unordered key sets — including names
        // containing commas and quotes — must produce one sorted header
        // with RFC 4180 quoting, identical across renders.
        let mut s1 = BTreeMap::new();
        s1.insert("Z series".to_string(), 1.0);
        s1.insert("With, comma".to_string(), 2.0);
        let mut s2 = BTreeMap::new();
        s2.insert("A first".to_string(), 3.0);
        s2.insert("Has \"quote\"".to_string(), 4.0);
        let f = FigureResult {
            id: "esc".into(),
            points: vec![
                FigurePoint {
                    granularity: 0.2,
                    series: s1,
                },
                FigurePoint {
                    granularity: 0.4,
                    series: s2,
                },
            ],
        };
        let csv = figure_to_csv(&f);
        let header = csv.lines().next().unwrap();
        assert_eq!(
            header,
            "granularity,A first,\"Has \"\"quote\"\"\",\"With, comma\",Z series"
        );
        assert_eq!(csv, figure_to_csv(&f), "render must be deterministic");
        // Every row has header-many fields once quotes are respected:
        // the comma inside the quoted name must not add a column.
        assert_eq!(header.matches("\"With, comma\"").count(), 1);
        // Missing cells render as empty fields, preserving column count.
        let row1 = csv.lines().nth(1).unwrap();
        assert!(row1.starts_with("0.200,"));
    }

    #[test]
    fn table_includes_headers_and_dashes() {
        let t = figure_to_table(&fig(), &["A", "missing"]);
        assert!(t.contains("granularity"));
        assert!(t.contains('A'));
        assert!(t.contains('-'));
    }

    #[test]
    fn csv_written_to_disk() {
        let dir = std::env::temp_dir().join("ftsched_csv_test");
        let path = write_figure_csv(&fig(), &dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("granularity"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn ascii_plot_marks_points() {
        let p = ascii_plot(&fig(), "A", 5);
        assert!(p.contains('*'));
        assert!(p.contains("0.2"));
        let missing = ascii_plot(&fig(), "Z", 5);
        assert!(missing.contains("no data"));
    }

    #[test]
    fn campaign_emission_round_trip_and_csv_shape() {
        use crate::campaign::{GroupResult, SeriesStats};
        let res = CampaignResult {
            id: "emit".into(),
            groups: vec![GroupResult {
                workload_index: 0,
                workload: "paper-layered[100..150]".into(),
                platform_index: 0,
                procs: 20,
                granularity: 0.4,
                epsilon: 2,
                series: vec![SeriesStats {
                    name: "FTSA with 2 Crash".into(),
                    count: 3,
                    mean: 1.5,
                    stddev: 0.1,
                    min: 1.4,
                    max: 1.6,
                    p50: 1.5,
                    p90: 1.6,
                }],
            }],
        };
        let csv = campaign_to_csv(&res);
        assert!(csv.starts_with("workload,procs,granularity,epsilon,series"));
        assert!(csv.contains("FTSA with 2 Crash"));
        let json = campaign_to_json(&res);
        let back: CampaignResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, res);
        let table = campaign_to_table(&res);
        assert!(table.contains("eps = 2"));

        let dir = std::env::temp_dir().join("ftsched_campaign_out_test");
        let (csv_path, json_path) = write_campaign_outputs(&res, &dir).unwrap();
        assert!(csv_path.ends_with("emit.campaign.csv"));
        assert!(std::fs::read_to_string(&json_path)
            .unwrap()
            .contains("emit"));
        let _ = std::fs::remove_file(csv_path);
        let _ = std::fs::remove_file(json_path);
    }
}
