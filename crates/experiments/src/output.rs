//! CSV emission and ASCII plotting of experiment series.

use crate::figures::FigureResult;
use std::fmt::Write as _;
use std::path::Path;

/// Renders a figure as CSV: one row per granularity, one column per
/// series (sorted by name for stable diffs).
pub fn figure_to_csv(fig: &FigureResult) -> String {
    let mut names: Vec<&str> = fig
        .points
        .iter()
        .flat_map(|p| p.series.keys().map(String::as_str))
        .collect();
    names.sort_unstable();
    names.dedup();

    let mut out = String::new();
    out.push_str("granularity");
    for n in &names {
        let _ = write!(out, ",{}", n.replace(',', ";"));
    }
    out.push('\n');
    for p in &fig.points {
        let _ = write!(out, "{:.3}", p.granularity);
        for n in &names {
            match p.series.get(*n) {
                Some(v) => {
                    let _ = write!(out, ",{v:.6}");
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

/// Writes the figure CSV under `dir/<id>.csv`, creating `dir`.
pub fn write_figure_csv(fig: &FigureResult, dir: &Path) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.csv", fig.id));
    std::fs::write(&path, figure_to_csv(fig))?;
    Ok(path)
}

/// Prints selected series of a figure as an aligned text table (the
/// "rows the paper reports").
pub fn figure_to_table(fig: &FigureResult, series: &[&str]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:>11}", "granularity");
    for s in series {
        let _ = write!(out, "  {s:>24}");
    }
    out.push('\n');
    for p in &fig.points {
        let _ = write!(out, "{:>11.1}", p.granularity);
        for s in series {
            match p.series.get(*s) {
                Some(v) => {
                    let _ = write!(out, "  {v:>24.3}");
                }
                None => {
                    let _ = write!(out, "  {:>24}", "-");
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Minimal ASCII line plot of one series against granularity.
pub fn ascii_plot(fig: &FigureResult, series: &str, height: usize) -> String {
    let values: Vec<(f64, f64)> = fig
        .points
        .iter()
        .filter_map(|p| p.series.get(series).map(|&v| (p.granularity, v)))
        .collect();
    if values.is_empty() {
        return format!("(no data for series {series})\n");
    }
    let ymax = values
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::NEG_INFINITY, f64::max);
    let ymin = values.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
    let span = (ymax - ymin).max(1e-12);
    let height = height.max(3);

    let mut rows = vec![vec![' '; values.len() * 6]; height];
    for (i, &(_, v)) in values.iter().enumerate() {
        let level = ((v - ymin) / span * (height - 1) as f64).round() as usize;
        let row = height - 1 - level;
        rows[row][i * 6 + 2] = '*';
    }
    let mut out = format!("{series}  [{ymin:.2} .. {ymax:.2}]\n");
    for r in rows {
        out.push('|');
        out.extend(r);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(values.len() * 6));
    out.push('\n');
    out.push_str(" g: ");
    for &(g, _) in &values {
        let _ = write!(out, "{g:>5.1} ");
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::FigurePoint;
    use std::collections::BTreeMap;

    fn fig() -> FigureResult {
        let mut s1 = BTreeMap::new();
        s1.insert("A".to_string(), 1.0);
        s1.insert("B".to_string(), 2.0);
        let mut s2 = BTreeMap::new();
        s2.insert("A".to_string(), 3.0);
        s2.insert("B".to_string(), 4.0);
        FigureResult {
            id: "figtest".into(),
            points: vec![
                FigurePoint {
                    granularity: 0.2,
                    series: s1,
                },
                FigurePoint {
                    granularity: 0.4,
                    series: s2,
                },
            ],
        }
    }

    #[test]
    fn csv_shape() {
        let csv = figure_to_csv(&fig());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "granularity,A,B");
        assert!(lines[1].starts_with("0.200,1.000000,2.000000"));
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn table_includes_headers_and_dashes() {
        let t = figure_to_table(&fig(), &["A", "missing"]);
        assert!(t.contains("granularity"));
        assert!(t.contains('A'));
        assert!(t.contains('-'));
    }

    #[test]
    fn csv_written_to_disk() {
        let dir = std::env::temp_dir().join("ftsched_csv_test");
        let path = write_figure_csv(&fig(), &dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("granularity"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn ascii_plot_marks_points() {
        let p = ascii_plot(&fig(), "A", 5);
        assert!(p.contains('*'));
        assert!(p.contains("0.2"));
        let missing = ascii_plot(&fig(), "Z", 5);
        assert!(missing.contains("no data"));
    }
}
