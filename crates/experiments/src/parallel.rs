//! Deterministic parallel map built on the `rayon` shim's work-stealing
//! executor.
//!
//! The figure experiments evaluate hundreds of independent (granularity,
//! repetition) cells; this module fans them out over a pinned-size
//! thread pool. Each cell derives its own RNG seed from its index, so
//! results are identical whatever the thread count — the
//! **index-derived-seed determinism contract** every sweep in this crate
//! relies on, and which `tests/parallel_determinism.rs` (repo root)
//! enforces end to end.
//!
//! Results travel through the executor's disjoint per-task slots and are
//! recombined in index order — no lock is held while a result is stored
//! (the earlier crossbeam implementation serialized every write-back
//! through a `Mutex<&mut Vec<Option<T>>>`).

use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

/// Applies `f` to every index `0..n` in parallel, returning the results
/// in index order. `f` must be deterministic in its index argument for
/// reproducible experiments.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync + Send,
{
    assert!(threads >= 1);
    let pool = ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool handle");
    pool.install(|| (0..n).into_par_iter().map(f).collect())
}

/// Number of worker threads to use: the `FTSCHED_THREADS` environment
/// variable when set to a positive integer (the CI thread matrix uses
/// this to pin both the sequential and parallel paths), otherwise the
/// available parallelism.
pub fn default_threads() -> usize {
    if let Some(n) = std::env::var("FTSCHED_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = parallel_map(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let a = parallel_map(37, 1, |i| i as f64 * 1.5);
        let b = parallel_map(37, 8, |i| i as f64 * 1.5);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(3, 16, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn index_order_survives_skewed_work() {
        // Regression test for the write-back path: early indices get the
        // most work, so late (cheap) results land first — they must still
        // come back in index order through the disjoint slots.
        let out = parallel_map(64, 8, |i| {
            let mut acc = i as u64;
            for _ in 0..(64 - i) * 2000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        });
        assert_eq!(out.len(), 64);
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(idx, *i);
        }
        let again = parallel_map(64, 3, |i| {
            let mut acc = i as u64;
            for _ in 0..(64 - i) * 2000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        });
        assert_eq!(out, again);
    }

    #[test]
    fn env_override_controls_default_threads() {
        // Only meaningful when the harness hasn't set the variable.
        if std::env::var("FTSCHED_THREADS").is_err() {
            assert!(default_threads() >= 1);
        } else {
            let n: usize = std::env::var("FTSCHED_THREADS").unwrap().parse().unwrap();
            assert_eq!(default_threads(), n);
        }
    }
}
