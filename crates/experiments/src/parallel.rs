//! Deterministic parallel map built on the `rayon` shim's work-stealing
//! executor.
//!
//! The figure experiments evaluate hundreds of independent (granularity,
//! repetition) cells; this module fans them out over a pinned-size
//! thread pool. Each cell derives its own RNG seed from its index, so
//! results are identical whatever the thread count — the
//! **index-derived-seed determinism contract** every sweep in this crate
//! relies on, and which `tests/parallel_determinism.rs` (repo root)
//! enforces end to end.
//!
//! Results travel through the executor's disjoint per-task slots and are
//! recombined in index order — no lock is held while a result is stored
//! (the earlier crossbeam implementation serialized every write-back
//! through a `Mutex<&mut Vec<Option<T>>>`).

use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

/// Applies `f` to every index `0..n` in parallel, returning the results
/// in index order. `f` must be deterministic in its index argument for
/// reproducible experiments.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync + Send,
{
    assert!(threads >= 1);
    let pool = ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool handle");
    pool.install(|| (0..n).into_par_iter().map(f).collect())
}

/// Deterministic chunk size for [`parallel_map_with`]: a function of the
/// cell count alone (never the worker count), so chunk boundaries — and
/// therefore which cells share a state — are identical at any thread
/// count. Mirrors the rayon shim's own task-splitting constant.
fn state_chunk(n: usize) -> usize {
    n.div_ceil(64).max(1)
}

/// [`parallel_map`] with **per-chunk reusable state**: `init` builds one
/// `S` per deterministic chunk of indices (at most 64 chunks per call,
/// never one per cell), and `f` receives `&mut S` alongside the index.
/// Chunks are contiguous index ranges whose boundaries depend only on
/// `n`, each folded sequentially by one worker of the work-stealing
/// pool — so as long as `f(state, i)` returns the same value regardless
/// of the state's history (the workspace-reuse contract of
/// `ScheduleWorkspace` / `CrashWorkspace`), results are **bit-identical
/// at any thread count**, exactly like [`parallel_map`].
///
/// This is what lets the campaign executor run thousands of cells while
/// touching the allocator a bounded number of times: each chunk's state
/// warms up on its first cell and every later cell of the chunk reuses
/// the buffers.
pub fn parallel_map_with<T, S, I, F>(n: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    S: Send,
    I: Fn() -> S + Sync + Send,
    F: Fn(&mut S, usize) -> T + Sync + Send,
{
    assert!(threads >= 1);
    if n == 0 {
        return Vec::new();
    }
    let pool = ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool handle");
    let idx: Vec<usize> = (0..n).collect();
    let nested: Vec<Vec<T>> = pool.install(|| {
        idx.par_chunks(state_chunk(n))
            .map(|chunk| {
                let mut state = init();
                chunk.iter().map(|&i| f(&mut state, i)).collect()
            })
            .collect()
    });
    let mut out = Vec::with_capacity(n);
    for part in nested {
        out.extend(part);
    }
    out
}

/// Number of worker threads to use: the `FTSCHED_THREADS` environment
/// variable when set to a positive integer (the CI thread matrix uses
/// this to pin both the sequential and parallel paths), otherwise the
/// available parallelism.
pub fn default_threads() -> usize {
    if let Some(n) = std::env::var("FTSCHED_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = parallel_map(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let a = parallel_map(37, 1, |i| i as f64 * 1.5);
        let b = parallel_map(37, 8, |i| i as f64 * 1.5);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(3, 16, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn index_order_survives_skewed_work() {
        // Regression test for the write-back path: early indices get the
        // most work, so late (cheap) results land first — they must still
        // come back in index order through the disjoint slots.
        let out = parallel_map(64, 8, |i| {
            let mut acc = i as u64;
            for _ in 0..(64 - i) * 2000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        });
        assert_eq!(out.len(), 64);
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(idx, *i);
        }
        let again = parallel_map(64, 3, |i| {
            let mut acc = i as u64;
            for _ in 0..(64 - i) * 2000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        });
        assert_eq!(out, again);
    }

    #[test]
    fn map_with_state_matches_stateless_map_at_any_thread_count() {
        // Per-worker state must be invisible in the output: same values
        // as the stateless map, in index order, at every worker count.
        let plain = parallel_map(150, 1, |i| (i * 31) % 17);
        for threads in [1, 2, 8] {
            let with_state = parallel_map_with(150, threads, Vec::<usize>::new, |scratch, i| {
                // Use the state in a way that depends on chunk
                // history; the *returned* value must not.
                scratch.push(i);
                (i * 31) % 17
            });
            assert_eq!(with_state, plain, "threads = {threads}");
        }
    }

    #[test]
    fn map_with_reuses_state_within_chunks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let n = 200;
        let out = parallel_map_with(
            n,
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |calls, i| {
                *calls += 1;
                i
            },
        );
        assert_eq!(out, (0..n).collect::<Vec<_>>());
        // One state per chunk, not per cell: far fewer inits than cells.
        let states = inits.load(Ordering::Relaxed);
        assert!(states <= n.div_ceil(super::state_chunk(n)));
        assert!(states >= 1);
    }

    #[test]
    fn map_with_empty_input() {
        let out: Vec<u8> = parallel_map_with(0, 4, || (), |_, _| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn env_override_controls_default_threads() {
        // Only meaningful when the harness hasn't set the variable.
        if std::env::var("FTSCHED_THREADS").is_err() {
            assert!(default_threads() >= 1);
        } else {
            let n: usize = std::env::var("FTSCHED_THREADS").unwrap().parse().unwrap();
            assert_eq!(default_threads(), n);
        }
    }
}
