//! Deterministic parallel map built on crossbeam scoped threads.
//!
//! The figure experiments evaluate hundreds of independent (granularity,
//! repetition) cells; this module fans them out over the available cores
//! with a shared atomic work index. Each cell derives its own RNG seed
//! from its index, so results are identical whatever the thread count.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every index `0..n` in parallel, returning the results
/// in index order. `f` must be deterministic in its index argument for
/// reproducible experiments.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads >= 1);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    if n == 0 {
        return Vec::new();
    }
    let next = AtomicUsize::new(0);
    let slots = Mutex::new(&mut out);

    crossbeam::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                // Store under the lock; cells are disjoint but a plain
                // &mut Vec cannot be shared across threads without it.
                slots.lock()[i] = Some(value);
            });
        }
    })
    .expect("experiment worker panicked");

    out.into_iter()
        .map(|v| v.expect("all cells computed"))
        .collect()
}

/// Number of worker threads to use: the available parallelism, capped so
/// small sweeps don't spawn idle threads.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = parallel_map(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let a = parallel_map(37, 1, |i| i as f64 * 1.5);
        let b = parallel_map(37, 8, |i| i as f64 * 1.5);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(3, 16, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }
}
