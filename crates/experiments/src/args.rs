//! Minimal `--key value` / `--flag` argument scanner — the one parser
//! shared by the `ftsched` CLI and every experiment binary.
//!
//! The sanctioned dependency set has no CLI parser and the surface is
//! small, so this hand-rolled scanner is the single home of argument
//! handling: the experiment binaries' `--quick/--reps/--out/--threads`
//! contract lives in [`RunOptions`], and `ftsched-cli` re-exports
//! [`Args`] for its subcommands.

use std::collections::HashMap;
use std::path::PathBuf;

/// Parsed command-line arguments: `--key value` pairs and bare flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `argv` (without the command word). Keys must start with
    /// `--`; a key followed by another key (or nothing) is a flag.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --option, got `{}`", argv[i]))?;
            match argv.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    values.insert(key.to_string(), v.clone());
                    i += 2;
                }
                _ => {
                    flags.push(key.to_string());
                    i += 1;
                }
            }
        }
        Ok(Args { values, flags })
    }

    /// Parses the process arguments (skipping the binary name),
    /// reporting errors on stderr and exiting — the experiment binaries'
    /// entry point.
    pub fn from_env() -> Args {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        match Args::parse(&argv) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Parsed numeric option with default.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| format!("option --{key}: cannot parse `{s}`")),
        }
    }

    /// Required numeric option.
    pub fn require_num<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.require(key)?
            .parse()
            .map_err(|_| format!("option --{key}: cannot parse `{}`", self.get(key).unwrap()))
    }

    /// Bare-flag presence.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

/// The shared option contract of the experiment binaries:
/// `[--quick | --reps N] [--out DIR] [--threads T] [--full]`.
///
/// Every binary routes through this one struct, so the flags mean the
/// same thing everywhere (the pre-campaign binaries each re-implemented
/// a subset of this parsing by scanning `std::env::args()` directly).
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// The remaining parsed arguments (binary-specific extras like
    /// `--granularity` stay accessible).
    pub args: Args,
}

impl RunOptions {
    /// Parses the process arguments.
    pub fn from_env() -> RunOptions {
        RunOptions {
            args: Args::from_env(),
        }
    }

    /// Wraps already-parsed arguments (tests).
    pub fn new(args: Args) -> RunOptions {
        RunOptions { args }
    }

    /// Reports a malformed option on stderr and exits — a typo like
    /// `--reps 3O` must not silently fall back to a default and burn
    /// minutes of compute at the wrong scale.
    pub fn num_or_exit<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.args.get_num(key, default) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    /// Repetitions: `--quick` = 10, else `--reps N`, else `default`.
    pub fn repetitions(&self, default: usize) -> usize {
        if self.args.has_flag("quick") {
            return 10;
        }
        self.num_or_exit("reps", default)
    }

    /// Output directory from `--out DIR` (default `results/`).
    pub fn out_dir(&self) -> PathBuf {
        self.args
            .get("out")
            .map_or_else(|| PathBuf::from("results"), PathBuf::from)
    }

    /// Worker count: `--threads T` when positive, else the
    /// `FTSCHED_THREADS` / available-parallelism default.
    pub fn threads(&self) -> usize {
        match self.num_or_exit::<usize>("threads", 0) {
            t if t > 0 => t,
            _ => crate::parallel::default_threads(),
        }
    }

    /// The `--full` flag (paper-complete sweeps, e.g. Table 1's 5000-task
    /// row).
    pub fn full(&self) -> bool {
        self.args.has_flag("full")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_pairs_and_flags() {
        let a = Args::parse(&argv("--tasks 120 --gantt --out x.json")).unwrap();
        assert_eq!(a.get("tasks"), Some("120"));
        assert_eq!(a.get("out"), Some("x.json"));
        assert!(a.has_flag("gantt"));
        assert!(!a.has_flag("tasks"));
    }

    #[test]
    fn numeric_helpers() {
        let a = Args::parse(&argv("--epsilon 2")).unwrap();
        assert_eq!(a.require_num::<usize>("epsilon").unwrap(), 2);
        assert_eq!(a.get_num::<usize>("procs", 20).unwrap(), 20);
        assert!(a.require_num::<usize>("missing").is_err());
    }

    #[test]
    fn rejects_bare_words() {
        assert!(Args::parse(&argv("tasks 120")).is_err());
    }

    #[test]
    fn bad_number_reported() {
        let a = Args::parse(&argv("--tasks many")).unwrap();
        let err = a.get_num::<usize>("tasks", 1).unwrap_err();
        assert!(err.contains("cannot parse"));
    }

    #[test]
    fn run_options_contract() {
        let o = RunOptions::new(Args::parse(&argv("--quick --out /tmp/r --threads 3")).unwrap());
        assert_eq!(o.repetitions(60), 10);
        assert_eq!(o.out_dir(), PathBuf::from("/tmp/r"));
        assert_eq!(o.threads(), 3);
        assert!(!o.full());

        let o = RunOptions::new(Args::parse(&argv("--reps 25 --full")).unwrap());
        assert_eq!(o.repetitions(60), 25);
        assert_eq!(o.out_dir(), PathBuf::from("results"));
        assert!(o.full());

        let o = RunOptions::new(Args::parse(&argv("")).unwrap());
        assert_eq!(o.repetitions(60), 60);
        assert!(o.threads() >= 1);
    }
}
