//! Durable campaign-run store: persistent idempotency records plus a
//! write-ahead log of rendered groups, the substrate of `ftsched
//! serve --data-dir`.
//!
//! The store follows the execution-queue discipline the serving layer
//! already uses in memory — explicit states, idempotency keys, result
//! fingerprints — and makes it survive process death. Per run (keyed by
//! the FNV-1a content hash of the canonical spec JSON) it keeps three
//! files in one flat data directory:
//!
//! * `<key>.spec.json` — the canonical spec, so a run is resumable from
//!   persisted state **only** (no client has to re-send anything);
//! * `<key>.run.json` — the [`RunRecord`]: state machine
//!   (`running → resumable → completed | failed`), group count, result
//!   fingerprint. Written via atomic write-rename (tmp file, `fsync`,
//!   `rename`, directory `fsync`), so a record is always either the old
//!   or the new version, never a torn mix;
//! * `<key>.wal` — the checksummed, length-prefixed group WAL
//!   ([`wal`]): frame *i* is the rendered bytes of group *i*, `fsync`ed
//!   before the group is exposed to any client.
//!
//! # Recovery
//!
//! [`Store::recover`] (run once at server bind) deletes orphaned tmp
//! files, truncates every WAL back to its valid frame prefix, demotes
//! in-flight `running` records to `resumable`, and re-verifies the
//! result fingerprint of `completed` runs against the replayed WAL —
//! a completed run whose WAL no longer reproduces its fingerprint is
//! demoted to `resumable` and recomputed rather than served wrong.
//! Because group bytes are pure functions of `(spec, group index)`, a
//! resumed run re-executes **only** the missing group range and its
//! final body is byte-identical to an uninterrupted run.
//!
//! An unparseable run record is a hard [`recover`](Store::recover)
//! error, not a skip: ignoring it would let a resubmission silently
//! overwrite durable state that an operator may still want.

pub mod wal;

pub use wal::{fnv1a, WalWriter};

use serde::{Deserialize, Serialize};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Lifecycle state of a persisted run (`running → resumable →
/// completed | failed`; `running` only ever appears in a live process —
/// recovery demotes it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunState {
    /// A live process is computing and appending to the WAL.
    Running,
    /// The run was interrupted (crash or client hangup); its WAL prefix
    /// is intact and the missing group range can be re-executed.
    Resumable,
    /// All groups are in the WAL and the fingerprint is recorded.
    Completed,
    /// The run halted on a typed campaign/store error; sticky.
    Failed,
}

/// The persisted idempotency record of one campaign run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Idempotency key: FNV-1a content hash of the canonical spec JSON,
    /// as 16 lowercase hex digits (duplicated in the file name).
    pub key: String,
    /// The spec's campaign id (`CampaignSpec::id`).
    pub campaign: String,
    /// Total number of groups the run must produce.
    pub groups: usize,
    /// Current lifecycle state.
    pub state: RunState,
    /// Result fingerprint over the rendered group payloads (see
    /// [`Fingerprint`]); `Some` exactly for completed runs.
    pub fingerprint: Option<String>,
    /// Failure message; `Some` exactly for failed runs.
    pub error: Option<String>,
}

/// Rolling FNV-1a digest over a run's rendered groups, in group order —
/// the result fingerprint of a [`RunRecord`]. Group boundaries are
/// folded in as a separator byte so reframed payload bytes cannot
/// collide.
#[derive(Debug, Clone)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// Starts a digest (FNV-1a offset basis).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Fingerprint {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one group payload (and a boundary marker) into the digest.
    pub fn push_group(&mut self, payload: &str) {
        let mut h = self.0;
        for b in payload.bytes().chain(std::iter::once(0x1E)) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.0 = h;
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

fn fingerprint_of(groups: &[String]) -> u64 {
    let mut fp = Fingerprint::new();
    for g in groups {
        fp.push_group(g);
    }
    fp.finish()
}

/// One run as found by [`Store::recover`], after WAL truncation and
/// state demotion.
#[derive(Debug)]
pub struct PersistedRun {
    /// Idempotency key (numeric form of [`RunRecord::key`]).
    pub key: u64,
    /// The (possibly demoted) record as it now stands on disk.
    pub record: RunRecord,
    /// Number of valid WAL frames (groups `0..groups_done` replay).
    pub groups_done: usize,
    /// Replayed group payloads — populated for completed runs (the
    /// server rebuilds the response body from them); empty otherwise
    /// (resumable runs re-read their WAL at claim time).
    pub groups: Vec<String>,
}

/// The durable run store over one data directory. One live server per
/// directory; the store itself does no cross-process locking.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
}

/// Hex form of an idempotency key, as used in file names and URLs.
pub fn key_hex(key: u64) -> String {
    format!("{key:016x}")
}

impl Store {
    /// Opens (creating if needed) a data directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Store> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Store { dir })
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn run_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{}.run.json", key_hex(key)))
    }

    fn spec_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{}.spec.json", key_hex(key)))
    }

    /// Path of a run's WAL file (exposed for fault-injection tests and
    /// operational tooling).
    pub fn wal_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{}.wal", key_hex(key)))
    }

    fn write_record(&self, record: &RunRecord) -> io::Result<()> {
        let key = u64::from_str_radix(&record.key, 16)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "malformed record key"))?;
        let json = serde_json::to_string_pretty(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        write_atomic(&self.dir, &self.run_path(key), json.as_bytes())
    }

    fn read_record(&self, key: u64) -> io::Result<RunRecord> {
        let path = self.run_path(key);
        let json = fs::read_to_string(&path)?;
        let record: RunRecord = serde_json::from_str(&json).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unparseable run record {}: {e}", path.display()),
            )
        })?;
        if record.key != key_hex(key) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "run record {} names key {} (expected {})",
                    path.display(),
                    record.key,
                    key_hex(key)
                ),
            ));
        }
        Ok(record)
    }

    fn update_record(&self, key: u64, f: impl FnOnce(&mut RunRecord)) -> io::Result<()> {
        let mut record = self.read_record(key)?;
        f(&mut record);
        self.write_record(&record)
    }

    /// Registers a brand-new run: persists the canonical spec, a
    /// `running` record, and a fresh WAL (in that order — the WAL never
    /// exists without its record). Returns the WAL append handle.
    pub fn begin_run(
        &self,
        key: u64,
        campaign: &str,
        canonical_spec: &str,
        groups: usize,
    ) -> io::Result<WalWriter> {
        write_atomic(&self.dir, &self.spec_path(key), canonical_spec.as_bytes())?;
        self.write_record(&RunRecord {
            key: key_hex(key),
            campaign: campaign.to_string(),
            groups,
            state: RunState::Running,
            fingerprint: None,
            error: None,
        })?;
        WalWriter::create(&self.wal_path(key))
    }

    /// The persisted canonical spec of a run.
    pub fn load_spec(&self, key: u64) -> io::Result<String> {
        fs::read_to_string(self.spec_path(key))
    }

    /// Claims a resumable run: re-reads and re-truncates the WAL (a
    /// second crash may have torn it again since recovery), marks the
    /// record `running`, and returns the replayed group payloads plus a
    /// writer positioned at the first missing group.
    pub fn resume_run(&self, key: u64) -> io::Result<(Vec<String>, WalWriter)> {
        let contents = wal::read(&self.wal_path(key))?;
        if contents.truncated_tail {
            wal::truncate_to(&self.wal_path(key), contents.valid_len)?;
        }
        self.update_record(key, |r| {
            r.state = RunState::Running;
            r.fingerprint = None;
            r.error = None;
        })?;
        let writer = WalWriter::open_at(&self.wal_path(key), contents.groups.len())?;
        Ok((contents.groups, writer))
    }

    /// Marks a run completed, recording its result fingerprint. Every
    /// group frame is already `fsync`ed by this point, so the record
    /// flip is the commit point of the whole run.
    pub fn complete_run(&self, key: u64, fingerprint: u64) -> io::Result<()> {
        self.update_record(key, |r| {
            r.state = RunState::Completed;
            r.fingerprint = Some(key_hex(fingerprint));
            r.error = None;
        })
    }

    /// Marks an interrupted run resumable (client hangup, shutdown).
    pub fn mark_resumable(&self, key: u64) -> io::Result<()> {
        self.update_record(key, |r| r.state = RunState::Resumable)
    }

    /// Marks a run failed with a sticky error message.
    pub fn fail_run(&self, key: u64, error: &str) -> io::Result<()> {
        self.update_record(key, |r| {
            r.state = RunState::Failed;
            r.error = Some(error.to_string());
        })
    }

    /// Recovery bootstrap: scans the data directory, cleans orphaned
    /// tmp files, truncates torn WAL tails, demotes `running` records
    /// to `resumable`, verifies completed runs' fingerprints (demoting
    /// on mismatch), and returns every persisted run sorted by key.
    pub fn recover(&self) -> io::Result<Vec<PersistedRun>> {
        let mut keys = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp") {
                // Never-committed atomic-write leftovers.
                fs::remove_file(entry.path())?;
                continue;
            }
            if let Some(hex) = name.strip_suffix(".run.json") {
                let key = u64::from_str_radix(hex, 16).map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("run record with malformed key name: {name}"),
                    )
                })?;
                keys.push(key);
            }
        }
        keys.sort_unstable();

        let mut runs = Vec::with_capacity(keys.len());
        for key in keys {
            let mut record = self.read_record(key)?;
            let wal_path = self.wal_path(key);
            let contents = if wal_path.exists() {
                let c = wal::read(&wal_path)?;
                if c.truncated_tail {
                    wal::truncate_to(&wal_path, c.valid_len)?;
                }
                c
            } else {
                // A record committed before its WAL creation crashed:
                // materialize the empty WAL it promises.
                WalWriter::create(&wal_path)?;
                wal::WalContents {
                    groups: Vec::new(),
                    valid_len: wal::MAGIC.len() as u64,
                    truncated_tail: false,
                }
            };
            let groups_done = contents.groups.len().min(record.groups);

            let demote = match record.state {
                RunState::Running => true,
                RunState::Completed => {
                    let fp = Some(key_hex(fingerprint_of(&contents.groups)));
                    groups_done != record.groups || fp != record.fingerprint
                }
                RunState::Resumable | RunState::Failed => false,
            };
            if demote {
                record.state = RunState::Resumable;
                record.fingerprint = None;
                self.write_record(&record)?;
            }

            let groups = if record.state == RunState::Completed {
                contents.groups
            } else {
                Vec::new()
            };
            runs.push(PersistedRun {
                key,
                record,
                groups_done,
                groups,
            });
        }
        Ok(runs)
    }
}

/// Atomic write-rename with explicit `fsync` points: the tmp file is
/// synced before the rename, the directory after it, so the committed
/// path always holds either the previous contents or the new ones.
fn write_atomic(dir: &Path, path: &Path, contents: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    sync_dir(dir)
}

#[cfg(unix)]
fn sync_dir(dir: &Path) -> io::Result<()> {
    fs::File::open(dir)?.sync_all()
}

#[cfg(not(unix))]
fn sync_dir(_dir: &Path) -> io::Result<()> {
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ftsched_store_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn lifecycle_round_trip() {
        let dir = tmp_dir("lifecycle");
        let store = Store::open(&dir).unwrap();
        let key = 0xABCD_EF01;
        let mut w = store
            .begin_run(key, "demo", "{\"id\": \"demo\"}", 2)
            .unwrap();
        w.append(b"g0").unwrap();
        w.append(b"g1").unwrap();
        let fp = fingerprint_of(&["g0".into(), "g1".into()]);
        store.complete_run(key, fp).unwrap();

        let runs = store.recover().unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].key, key);
        assert_eq!(runs[0].record.state, RunState::Completed);
        assert_eq!(runs[0].record.fingerprint, Some(key_hex(fp)));
        assert_eq!(runs[0].groups, vec!["g0", "g1"]);
        assert_eq!(store.load_spec(key).unwrap(), "{\"id\": \"demo\"}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_demotes_running_and_cleans_tmp() {
        let dir = tmp_dir("demote");
        let store = Store::open(&dir).unwrap();
        let key = 7;
        let mut w = store.begin_run(key, "demo", "{}", 3).unwrap();
        w.append(b"g0").unwrap();
        drop(w); // crash: record still `running`
        fs::write(dir.join("orphan.tmp"), b"half-written").unwrap();

        let runs = store.recover().unwrap();
        assert_eq!(runs[0].record.state, RunState::Resumable);
        assert_eq!(runs[0].groups_done, 1);
        assert!(runs[0].groups.is_empty(), "resumable runs replay lazily");
        assert!(!dir.join("orphan.tmp").exists());
        // The demotion is durable: a second recovery sees the same.
        assert_eq!(
            store.recover().unwrap()[0].record.state,
            RunState::Resumable
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn completed_run_with_bad_fingerprint_is_demoted() {
        let dir = tmp_dir("fp");
        let store = Store::open(&dir).unwrap();
        let key = 9;
        let mut w = store.begin_run(key, "demo", "{}", 1).unwrap();
        w.append(b"genuine").unwrap();
        store.complete_run(key, 0xDEAD).unwrap(); // wrong fingerprint
        let runs = store.recover().unwrap();
        assert_eq!(runs[0].record.state, RunState::Resumable);
        assert_eq!(runs[0].record.fingerprint, None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_run_replays_and_continues() {
        let dir = tmp_dir("resume");
        let store = Store::open(&dir).unwrap();
        let key = 11;
        let mut w = store.begin_run(key, "demo", "{}", 3).unwrap();
        w.append(b"g0").unwrap();
        drop(w);
        store.recover().unwrap();

        let (replayed, mut w) = store.resume_run(key).unwrap();
        assert_eq!(replayed, vec!["g0"]);
        assert_eq!(w.next_group(), 1);
        assert_eq!(store.read_record(key).unwrap().state, RunState::Running);
        w.append(b"g1").unwrap();
        w.append(b"g2").unwrap();
        let fp = fingerprint_of(&["g0".into(), "g1".into(), "g2".into()]);
        store.complete_run(key, fp).unwrap();
        let runs = store.recover().unwrap();
        assert_eq!(runs[0].record.state, RunState::Completed);
        assert_eq!(runs[0].groups, vec!["g0", "g1", "g2"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unparseable_record_fails_recovery_loudly() {
        let dir = tmp_dir("loud");
        let store = Store::open(&dir).unwrap();
        fs::write(dir.join("0000000000000001.run.json"), b"not json").unwrap();
        let err = store.recover().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_separates_group_boundaries() {
        let a = fingerprint_of(&["ab".into(), "c".into()]);
        let b = fingerprint_of(&["a".into(), "bc".into()]);
        assert_ne!(a, b, "reframing the same bytes must change the digest");
    }
}
