//! Checksummed, length-prefixed write-ahead log of rendered group
//! frames.
//!
//! A WAL file is an 8-byte magic header ([`MAGIC`]) followed by frames:
//!
//! ```text
//! [u32 LE payload length][u64 LE group index][u64 LE FNV-1a digest][payload]
//! ```
//!
//! The digest covers the group-index bytes *and* the payload, so a bit
//! flip anywhere in a frame is caught either by the length failing to
//! line up or by the checksum. Frames are appended strictly in group
//! order — frame *i* carries group *i*, enforced on both the write side
//! ([`WalWriter::append`] numbers frames itself) and the read side
//! ([`read`] stops at the first out-of-sequence frame). A recovered WAL
//! therefore can never replay a group twice or skip one: its valid
//! prefix is exactly groups `0..k`.
//!
//! # Durability
//!
//! [`WalWriter::append`] encodes the frame into a reusable scratch
//! buffer (zero steady-state heap allocations once the buffer is sized
//! — pinned by `tests/alloc_counter.rs`), writes it with a single
//! `write_all`, and `fsync`s the file before returning: a frame is
//! **committed** exactly when `append` returns. A crash mid-write
//! leaves a torn tail; [`read`] reports the length of the valid prefix
//! and [`truncate_to`] cuts the file back to it, after which appends
//! continue from the first missing group.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

/// File magic: identifies (and versions) the frame format.
pub const MAGIC: &[u8; 8] = b"FTSWAL1\n";

const FRAME_HEADER: usize = 4 + 8 + 8;

/// FNV-1a over a byte stream — the same digest the serve layer uses for
/// spec content hashes.
pub fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn frame_digest(group_index: u64, payload: &[u8]) -> u64 {
    fnv1a(
        group_index
            .to_le_bytes()
            .into_iter()
            .chain(payload.iter().copied()),
    )
}

/// Append handle over a WAL file. Frames are numbered by the writer —
/// callers supply payloads only, so a frame's group index can never
/// diverge from its position.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    buf: Vec<u8>,
    next_group: usize,
}

impl WalWriter {
    /// Creates a fresh WAL (truncating any previous file) and commits
    /// the magic header.
    pub fn create(path: &Path) -> io::Result<WalWriter> {
        let mut file = File::create(path)?;
        file.write_all(MAGIC)?;
        file.sync_all()?;
        Ok(WalWriter {
            file,
            buf: Vec::new(),
            next_group: 0,
        })
    }

    /// Opens an existing WAL for appending after recovery: the file must
    /// already be truncated to a valid prefix of `next_group` frames
    /// (see [`read`] / [`truncate_to`]).
    pub fn open_at(path: &Path, next_group: usize) -> io::Result<WalWriter> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(WalWriter {
            file,
            buf: Vec::new(),
            next_group,
        })
    }

    /// The group index the next [`WalWriter::append`] will commit.
    pub fn next_group(&self) -> usize {
        self.next_group
    }

    /// Appends one group frame and `fsync`s: the frame is durable when
    /// this returns. Steady-state appends reuse the encode buffer and
    /// perform no heap allocation once it is sized.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let gi = self.next_group as u64;
        self.buf.clear();
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&gi.to_le_bytes());
        self.buf
            .extend_from_slice(&frame_digest(gi, payload).to_le_bytes());
        self.buf.extend_from_slice(payload);
        self.file.write_all(&self.buf)?;
        self.file.sync_data()?;
        self.next_group += 1;
        Ok(())
    }
}

/// The valid prefix of a WAL file, as recovered by [`read`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalContents {
    /// Frame payloads in group order: `groups[i]` is group `i`.
    pub groups: Vec<String>,
    /// Byte length of the valid prefix (magic + whole valid frames).
    pub valid_len: u64,
    /// Whether bytes past the valid prefix were present (a torn or
    /// corrupt tail that [`truncate_to`] should drop).
    pub truncated_tail: bool,
}

/// Reads the valid frame prefix of a WAL file. A missing or mangled
/// magic header yields an empty contents with `valid_len == 0` (the
/// whole file is condemned); scanning stops at the first frame that is
/// incomplete, fails its checksum, is out of sequence, or is not UTF-8.
pub fn read(path: &Path) -> io::Result<WalContents> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Ok(WalContents {
            groups: Vec::new(),
            valid_len: 0,
            truncated_tail: !bytes.is_empty(),
        });
    }
    let mut groups = Vec::new();
    let mut off = MAGIC.len();
    loop {
        let rest = &bytes[off..];
        if rest.len() < FRAME_HEADER {
            break;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
        let gi = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
        let digest = u64::from_le_bytes(rest[12..20].try_into().expect("8 bytes"));
        if rest.len() < FRAME_HEADER + len {
            break; // torn payload
        }
        let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
        if gi != groups.len() as u64 || digest != frame_digest(gi, payload) {
            break; // out of sequence or corrupt
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        groups.push(text.to_string());
        off += FRAME_HEADER + len;
    }
    Ok(WalContents {
        groups,
        valid_len: off as u64,
        truncated_tail: off < bytes.len(),
    })
}

/// Truncates a WAL back to a valid prefix reported by [`read`]. With
/// `valid_len == 0` the file is rewritten as a fresh empty WAL (magic
/// only), so a condemned header never survives recovery.
pub fn truncate_to(path: &Path, valid_len: u64) -> io::Result<()> {
    if valid_len < MAGIC.len() as u64 {
        let mut file = File::create(path)?;
        file.write_all(MAGIC)?;
        return file.sync_all();
    }
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(valid_len)?;
    file.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ftsched_wal_{name}_{}", std::process::id()))
    }

    #[test]
    fn append_read_round_trip() {
        let path = tmp("round_trip");
        let mut w = WalWriter::create(&path).unwrap();
        for payload in ["alpha", "beta", "gamma"] {
            w.append(payload.as_bytes()).unwrap();
        }
        let contents = read(&path).unwrap();
        assert_eq!(contents.groups, vec!["alpha", "beta", "gamma"]);
        assert!(!contents.truncated_tail);
        assert_eq!(
            contents.valid_len,
            std::fs::metadata(&path).unwrap().len(),
            "everything written is valid"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_continues_the_sequence() {
        let path = tmp("resume");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"g0").unwrap();
        drop(w);
        let contents = read(&path).unwrap();
        let mut w = WalWriter::open_at(&path, contents.groups.len()).unwrap();
        assert_eq!(w.next_group(), 1);
        w.append(b"g1").unwrap();
        assert_eq!(read(&path).unwrap().groups, vec!["g0", "g1"]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mangled_magic_condemns_the_file() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTAWAL!garbage").unwrap();
        let contents = read(&path).unwrap();
        assert!(contents.groups.is_empty());
        assert_eq!(contents.valid_len, 0);
        assert!(contents.truncated_tail);
        truncate_to(&path, contents.valid_len).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), MAGIC);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_frame_cuts_the_tail() {
        let path = tmp("corrupt");
        let mut w = WalWriter::create(&path).unwrap();
        for payload in ["first", "second", "third"] {
            w.append(payload.as_bytes()).unwrap();
        }
        drop(w);
        // Flip one payload byte of the second frame.
        let mut bytes = std::fs::read(&path).unwrap();
        let second_payload = MAGIC.len() + FRAME_HEADER + 5 + FRAME_HEADER;
        bytes[second_payload] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let contents = read(&path).unwrap();
        assert_eq!(contents.groups, vec!["first"]);
        assert!(contents.truncated_tail);
        truncate_to(&path, contents.valid_len).unwrap();

        // Appends resume from the first missing group; the re-read sees
        // every group exactly once.
        let mut w = WalWriter::open_at(&path, contents.groups.len()).unwrap();
        w.append(b"second'").unwrap();
        w.append(b"third'").unwrap();
        assert_eq!(
            read(&path).unwrap().groups,
            vec!["first", "second'", "third'"]
        );
        let _ = std::fs::remove_file(&path);
    }
}
