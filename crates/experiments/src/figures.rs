//! The figure experiments: normalized-latency bounds, crash-case
//! latencies and replication overheads over the granularity sweep.
//!
//! Since the campaign refactor this module is a thin conversion layer:
//! a [`FigureConfig`] maps onto a [`crate::campaign::CampaignSpec`] (see
//! [`crate::campaign::presets::spec_from_figure`]) whose grid is one
//! platform point per granularity, the figure's ε, the paper algorithms
//! with fault-free baselines, and the ε / 0 / extra crash counts as
//! [`platform::FailureModel`]s. The engine evaluates it through the
//! shared zero-allocation executor, and [`run_figure`] folds the group
//! statistics back into the historical [`FigureResult`] shape.
//!
//! Every series is **bit-identical** to the pre-campaign bespoke driver
//! at the same seeds — `tests/campaign_parity.rs` pins this against a
//! frozen copy of the old implementation. Series names match the paper's
//! legends (`FTSA-LowerBound`, `MC-FTSA with 2 Crash`, …) so the printed
//! tables read like the original plots.

use crate::campaign::{presets::spec_from_figure, run_campaign_with_threads, CampaignError};
use crate::parallel::default_threads;
use ftsched_core::Algorithm;
use std::collections::BTreeMap;

pub use crate::campaign::normalization;

/// Configuration of one figure experiment.
#[derive(Debug, Clone)]
pub struct FigureConfig {
    /// Figure identifier used in logs and CSV names (e.g. `"fig1"`).
    pub id: String,
    /// Tolerated failures ε of the fault-tolerant schedules.
    pub epsilon: usize,
    /// Processor count (20 for Figures 1–3, 5 for Figure 4).
    pub procs: usize,
    /// Granularity sweep.
    pub granularities: Vec<f64>,
    /// Random graphs per point (60 in the paper).
    pub repetitions: usize,
    /// Crash counts simulated on the FTSA schedule (the figure's `ε`
    /// count is always simulated on all three algorithms).
    pub extra_crash_counts: Vec<usize>,
    /// Include FTBAR and MC-FTSA series (Figure 4 plots FTSA only).
    pub compare_algorithms: bool,
    /// Additional pipeline configurations to evaluate alongside the
    /// paper's three — e.g. [`Algorithm::FtsaPressure`] or
    /// [`Algorithm::FtbarMatched`]. Each contributes `-LowerBound` /
    /// `-UpperBound` / crash / overhead series named after
    /// [`Algorithm::name`], under the same crash scenario as the paper
    /// algorithms of the cell.
    pub extra_algorithms: Vec<Algorithm>,
    /// Base RNG seed.
    pub seed: u64,
}

impl FigureConfig {
    /// Figures 1–3: 20 processors, comparison of all algorithms.
    pub fn comparison(id: &str, epsilon: usize, repetitions: usize) -> Self {
        let extra = match epsilon {
            0 | 1 => vec![],
            2 => vec![1],
            _ => vec![2],
        };
        FigureConfig {
            id: id.into(),
            epsilon,
            procs: 20,
            granularities: crate::paper_granularities(),
            repetitions,
            extra_crash_counts: extra,
            compare_algorithms: true,
            extra_algorithms: Vec::new(),
            seed: 0xF16_0000 + epsilon as u64,
        }
    }

    /// Figure 4: 5 processors, ε = 2, FTSA with 0/1/2 crashes.
    pub fn small_platform(repetitions: usize) -> Self {
        FigureConfig {
            id: "fig4".into(),
            epsilon: 2,
            procs: 5,
            granularities: crate::paper_granularities(),
            repetitions,
            extra_crash_counts: vec![1],
            compare_algorithms: false,
            extra_algorithms: Vec::new(),
            seed: 0xF16_4444,
        }
    }
}

/// One aggregated point of a figure: the granularity plus the mean value
/// of every series.
#[derive(Debug, Clone)]
pub struct FigurePoint {
    /// The x-coordinate (granularity).
    pub granularity: f64,
    /// Mean value per series name.
    pub series: BTreeMap<String, f64>,
}

/// A complete figure: its config echo and the per-granularity points.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Which experiment this is.
    pub id: String,
    /// Aggregated points in granularity order.
    pub points: Vec<FigurePoint>,
}

/// Runs a figure experiment, parallelized over all cells.
pub fn run_figure(cfg: &FigureConfig) -> Result<FigureResult, CampaignError> {
    run_figure_with_threads(cfg, default_threads())
}

/// Runs a figure experiment with an explicit worker count (tests use 1).
/// Routes through the campaign engine; results are bit-identical at any
/// thread count. An invalid config surfaces as the underlying
/// [`CampaignError`] instead of aborting the process.
pub fn run_figure_with_threads(
    cfg: &FigureConfig,
    threads: usize,
) -> Result<FigureResult, CampaignError> {
    let spec = spec_from_figure(cfg);
    let res = run_campaign_with_threads(&spec, threads)?;
    // One workload, one ε: groups are exactly the granularity points, in
    // sweep order.
    let points = res
        .groups
        .into_iter()
        .zip(&cfg.granularities)
        .map(|(group, &g)| FigurePoint {
            granularity: g,
            series: group.series.into_iter().map(|s| (s.name, s.mean)).collect(),
        })
        .collect();
    Ok(FigureResult {
        id: cfg.id.clone(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> FigureConfig {
        FigureConfig {
            granularities: vec![0.4, 1.2],
            repetitions: 3,
            ..FigureConfig::comparison("figtest", 1, 3)
        }
    }

    #[test]
    fn figure_run_produces_all_series() {
        let res = run_figure_with_threads(&tiny_config(), 2).unwrap();
        assert_eq!(res.points.len(), 2);
        for p in &res.points {
            for key in [
                "FTSA-LowerBound",
                "FTSA-UpperBound",
                "MC-FTSA-LowerBound",
                "MC-FTSA-UpperBound",
                "FTBAR-LowerBound",
                "FTBAR-UpperBound",
                "FaultFree-FTSA",
                "FaultFree-FTBAR",
                "FTSA with 1 Crash",
                "MC-FTSA with 1 Crash",
                "FTBAR with 1 Crash",
                "FTSA with 0 Crash",
                "Overhead: FTSA with 1 Crash",
            ] {
                assert!(p.series.contains_key(key), "missing series {key}");
            }
        }
    }

    #[test]
    fn bounds_are_ordered_in_aggregates() {
        let res = run_figure_with_threads(&tiny_config(), 2).unwrap();
        for p in &res.points {
            assert!(p.series["FTSA-LowerBound"] <= p.series["FTSA-UpperBound"] + 1e-9);
            assert!(p.series["MC-FTSA-LowerBound"] <= p.series["MC-FTSA-UpperBound"] + 1e-9);
            // Fault-free schedules can't be slower than replicated lower
            // bounds on average.
            assert!(p.series["FaultFree-FTSA"] <= p.series["FTSA-LowerBound"] + 1e-9);
        }
    }

    #[test]
    fn latency_grows_with_granularity() {
        // The paper's headline shape: more computation per communication
        // unit → longer normalized latency.
        let cfg = FigureConfig {
            granularities: vec![0.2, 2.0],
            repetitions: 5,
            ..FigureConfig::comparison("figshape", 1, 5)
        };
        let res = run_figure_with_threads(&cfg, 2).unwrap();
        assert!(res.points[1].series["FTSA-LowerBound"] > res.points[0].series["FTSA-LowerBound"]);
    }

    #[test]
    fn mc_ftsa_ships_fewer_messages() {
        let res = run_figure_with_threads(&tiny_config(), 2).unwrap();
        for p in &res.points {
            assert!(p.series["Messages: MC-FTSA"] <= p.series["Messages: FTSA"] + 1e-9);
        }
    }

    #[test]
    fn small_platform_config_skips_competitors() {
        let cfg = FigureConfig {
            granularities: vec![0.6],
            repetitions: 2,
            ..FigureConfig::small_platform(2)
        };
        let res = run_figure_with_threads(&cfg, 1).unwrap();
        let p = &res.points[0];
        assert!(p.series.contains_key("FTSA with 2 Crash"));
        assert!(p.series.contains_key("FTSA with 1 Crash"));
        assert!(!p.series.contains_key("FTBAR-LowerBound"));
    }

    #[test]
    fn extra_algorithm_axis_adds_series_without_disturbing_paper_series() {
        let base = tiny_config();
        let mut ext = tiny_config();
        // Ftsa duplicates a paper series: it must be skipped, not allowed
        // to overwrite the paper numbers with a different tie stream.
        ext.extra_algorithms = vec![
            Algorithm::FtsaPressure,
            Algorithm::FtbarMatched,
            Algorithm::Ftsa,
        ];
        let a = run_figure_with_threads(&base, 2).unwrap();
        let b = run_figure_with_threads(&ext, 2).unwrap();
        for (pa, pb) in a.points.iter().zip(&b.points) {
            // The paper series are bit-identical with or without extras.
            for (k, v) in &pa.series {
                assert_eq!(pb.series[k].to_bits(), v.to_bits(), "series {k} disturbed");
            }
            for name in ["P-FTSA", "MC-FTBAR"] {
                assert!(pb.series.contains_key(&format!("{name}-LowerBound")));
                assert!(pb.series.contains_key(&format!("{name} with 1 Crash")));
                assert!(
                    pb.series[&format!("{name}-LowerBound")]
                        <= pb.series[&format!("{name}-UpperBound")] + 1e-9
                );
            }
            // MC-FTBAR inherits the matched-communication economy.
            assert!(pb.series["Messages: MC-FTBAR"] <= pb.series["Messages: FTSA"] + 1e-9);
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let cfg = tiny_config();
        let a = run_figure_with_threads(&cfg, 1).unwrap();
        let b = run_figure_with_threads(&cfg, 4).unwrap();
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.series, pb.series);
        }
    }
}
