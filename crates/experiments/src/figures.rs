//! The figure experiments: normalized-latency bounds, crash-case
//! latencies and replication overheads over the granularity sweep.
//!
//! One run evaluates, per (granularity, repetition) cell:
//!
//! * FTSA, MC-FTSA (greedy) and FTBAR schedules at the figure's `ε`,
//!   plus the fault-free (`ε = 0`) FTSA and FTBAR baselines;
//! * the equation-(2)/(4) bounds of each schedule;
//! * crash simulations with the figure's crash counts (the failed
//!   processors are drawn uniformly, identically for every algorithm of
//!   the cell);
//! * the Section 6 overhead
//!   `(X − FTSA*) / FTSA*` where `FTSA*` is the fault-free FTSA latency.
//!
//! Series names match the paper's legends (`FTSA-LowerBound`,
//! `MC-FTSA with 2 Crash`, …) so the printed tables read like the
//! original plots.

use crate::parallel::{default_threads, parallel_map};
use crate::{mean, paper_granularities};
use ftsched_core::{ftbar::ftbar, ftsa::ftsa, mc_ftsa, schedule, Algorithm, Schedule};
use platform::gen::{paper_instance, PaperInstanceConfig};
use platform::{FailureScenario, Instance};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simulator::simulate;
use std::collections::BTreeMap;

/// Configuration of one figure experiment.
#[derive(Debug, Clone)]
pub struct FigureConfig {
    /// Figure identifier used in logs and CSV names (e.g. `"fig1"`).
    pub id: String,
    /// Tolerated failures ε of the fault-tolerant schedules.
    pub epsilon: usize,
    /// Processor count (20 for Figures 1–3, 5 for Figure 4).
    pub procs: usize,
    /// Granularity sweep.
    pub granularities: Vec<f64>,
    /// Random graphs per point (60 in the paper).
    pub repetitions: usize,
    /// Crash counts simulated on the FTSA schedule (the figure's `ε`
    /// count is always simulated on all three algorithms).
    pub extra_crash_counts: Vec<usize>,
    /// Include FTBAR and MC-FTSA series (Figure 4 plots FTSA only).
    pub compare_algorithms: bool,
    /// Additional pipeline configurations to evaluate alongside the
    /// paper's three — e.g. [`Algorithm::FtsaPressure`] or
    /// [`Algorithm::FtbarMatched`]. Each contributes `-LowerBound` /
    /// `-UpperBound` / crash / overhead series named after
    /// [`Algorithm::name`], under the same crash scenario as the paper
    /// algorithms of the cell.
    pub extra_algorithms: Vec<Algorithm>,
    /// Base RNG seed.
    pub seed: u64,
}

impl FigureConfig {
    /// Figures 1–3: 20 processors, comparison of all algorithms.
    pub fn comparison(id: &str, epsilon: usize, repetitions: usize) -> Self {
        let extra = match epsilon {
            0 | 1 => vec![],
            2 => vec![1],
            _ => vec![2],
        };
        FigureConfig {
            id: id.into(),
            epsilon,
            procs: 20,
            granularities: paper_granularities(),
            repetitions,
            extra_crash_counts: extra,
            compare_algorithms: true,
            extra_algorithms: Vec::new(),
            seed: 0xF16_0000 + epsilon as u64,
        }
    }

    /// Figure 4: 5 processors, ε = 2, FTSA with 0/1/2 crashes.
    pub fn small_platform(repetitions: usize) -> Self {
        FigureConfig {
            id: "fig4".into(),
            epsilon: 2,
            procs: 5,
            granularities: paper_granularities(),
            repetitions,
            extra_crash_counts: vec![1],
            compare_algorithms: false,
            extra_algorithms: Vec::new(),
            seed: 0xF16_4444,
        }
    }
}

/// One aggregated point of a figure: the granularity plus the mean value
/// of every series.
#[derive(Debug, Clone)]
pub struct FigurePoint {
    /// The x-coordinate (granularity).
    pub granularity: f64,
    /// Mean value per series name.
    pub series: BTreeMap<String, f64>,
}

/// A complete figure: its config echo and the per-granularity points.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Which experiment this is.
    pub id: String,
    /// Aggregated points in granularity order.
    pub points: Vec<FigurePoint>,
}

/// Normalization constant: the instance's mean edge communication cost
/// `W̄ = mean_e V(e) · d̄` (see the crate docs).
pub fn normalization(inst: &Instance) -> f64 {
    let e = inst.dag.num_edges();
    if e == 0 {
        return 1.0;
    }
    let d = inst.platform.average_delay();
    let total: f64 = inst.dag.edge_list().map(|(_, _, _, v)| v * d).sum();
    (total / e as f64).max(f64::MIN_POSITIVE)
}

fn crash_latency(inst: &Instance, sched: &Schedule, crashes: usize, rng: &mut StdRng) -> f64 {
    let scen = if crashes == 0 {
        FailureScenario::none()
    } else {
        FailureScenario::uniform(rng, inst.num_procs(), crashes)
    };
    simulate(inst, sched, &scen).latency
}

/// Evaluates one (granularity, repetition) cell; returns the raw series.
fn run_cell(cfg: &FigureConfig, granularity: f64, rep: usize) -> BTreeMap<String, f64> {
    // Cell-local deterministic seed.
    let cell_seed = cfg
        .seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((granularity * 1e6) as u64)
        .wrapping_add(rep as u64);
    let mut gen_rng = StdRng::seed_from_u64(cell_seed);
    let inst = paper_instance(
        &mut gen_rng,
        &PaperInstanceConfig {
            procs: cfg.procs,
            granularity,
            ..Default::default()
        },
    );
    let norm = normalization(&inst);
    let eps = cfg.epsilon;

    let mut tie = StdRng::seed_from_u64(cell_seed ^ 0xA5A5);
    let ftsa_s = ftsa(&inst, eps, &mut tie).expect("enough processors");
    let ff_ftsa = ftsa(&inst, 0, &mut tie).expect("enough processors");

    let mut out = BTreeMap::new();
    let nl = |x: f64| x / norm;
    out.insert("FTSA-LowerBound".into(), nl(ftsa_s.latency_lower_bound()));
    out.insert("FTSA-UpperBound".into(), nl(ftsa_s.latency_upper_bound()));
    out.insert("FaultFree-FTSA".into(), nl(ff_ftsa.latency_lower_bound()));

    let ftsa_star = ff_ftsa.latency_lower_bound();
    let ov = |x: f64| (x - ftsa_star) / ftsa_star * 100.0;

    // Crash cases. One scenario per crash count, shared by algorithms.
    let mut crash_rng = StdRng::seed_from_u64(cell_seed ^ 0xC4A5);
    let l_ftsa_crash = crash_latency(&inst, &ftsa_s, eps, &mut crash_rng);
    out.insert(format!("FTSA with {eps} Crash"), nl(l_ftsa_crash));
    out.insert(format!("Overhead: FTSA with {eps} Crash"), ov(l_ftsa_crash));
    let l_ftsa_0 = crash_latency(&inst, &ftsa_s, 0, &mut crash_rng);
    out.insert("FTSA with 0 Crash".into(), nl(l_ftsa_0));
    out.insert("Overhead: FTSA with 0 Crash".into(), ov(l_ftsa_0));
    for &k in &cfg.extra_crash_counts {
        let l = crash_latency(&inst, &ftsa_s, k, &mut crash_rng);
        out.insert(format!("FTSA with {k} Crash"), nl(l));
        out.insert(format!("Overhead: FTSA with {k} Crash"), ov(l));
    }

    if cfg.compare_algorithms {
        let mc_s = mc_ftsa::mc_ftsa(&inst, eps, mc_ftsa::Selector::Greedy, &mut tie)
            .expect("enough processors");
        let ftbar_s = ftbar(&inst, eps, &mut tie).expect("enough processors");
        let ff_ftbar = ftbar(&inst, 0, &mut tie).expect("enough processors");

        out.insert("MC-FTSA-LowerBound".into(), nl(mc_s.latency_lower_bound()));
        out.insert("MC-FTSA-UpperBound".into(), nl(mc_s.latency_upper_bound()));
        out.insert("FTBAR-LowerBound".into(), nl(ftbar_s.latency_lower_bound()));
        out.insert("FTBAR-UpperBound".into(), nl(ftbar_s.latency_upper_bound()));
        out.insert("FaultFree-FTBAR".into(), nl(ff_ftbar.latency_lower_bound()));

        // Same crash pattern for the competing algorithms.
        let mut crash_rng2 = StdRng::seed_from_u64(cell_seed ^ 0xC4A5);
        let scen = if eps == 0 {
            FailureScenario::none()
        } else {
            FailureScenario::uniform(&mut crash_rng2, inst.num_procs(), eps)
        };
        let l_mc = simulate(&inst, &mc_s, &scen).latency;
        let l_fb = simulate(&inst, &ftbar_s, &scen).latency;
        out.insert(format!("MC-FTSA with {eps} Crash"), nl(l_mc));
        out.insert(format!("Overhead: MC-FTSA with {eps} Crash"), ov(l_mc));
        out.insert(format!("FTBAR with {eps} Crash"), nl(l_fb));
        out.insert(format!("Overhead: FTBAR with {eps} Crash"), ov(l_fb));

        // Message-count economy of Section 4.2 (extra series, not in the
        // paper's plots but underpinning its e(ε+1)² vs e(ε+1) claim).
        out.insert(
            "Messages: FTSA".into(),
            ftsa_s.message_count(&inst.dag) as f64,
        );
        out.insert(
            "Messages: MC-FTSA".into(),
            mc_s.message_count(&inst.dag) as f64,
        );
    }

    // The algorithm axis: extra pipeline configurations ride the same
    // instance and crash pattern, each on its own tie-break stream so
    // the paper series stay bit-identical whether or not extras run.
    // An extra that duplicates a series this cell already produced
    // (e.g. `--algorithms ftsa`) is skipped rather than allowed to
    // overwrite the paper series with a different tie-break stream.
    for (ai, &alg) in cfg.extra_algorithms.iter().enumerate() {
        let name = alg.name();
        if out.contains_key(&format!("{name}-LowerBound")) {
            continue;
        }
        let mut tie2 = StdRng::seed_from_u64(cell_seed ^ (0xA1_6000 + ai as u64));
        let s = schedule(&inst, eps, alg, &mut tie2).expect("enough processors");
        out.insert(format!("{name}-LowerBound"), nl(s.latency_lower_bound()));
        out.insert(format!("{name}-UpperBound"), nl(s.latency_upper_bound()));
        let mut crash_rng3 = StdRng::seed_from_u64(cell_seed ^ 0xC4A5);
        let scen = if eps == 0 {
            FailureScenario::none()
        } else {
            FailureScenario::uniform(&mut crash_rng3, inst.num_procs(), eps)
        };
        let l = simulate(&inst, &s, &scen).latency;
        out.insert(format!("{name} with {eps} Crash"), nl(l));
        out.insert(format!("Overhead: {name} with {eps} Crash"), ov(l));
        out.insert(
            format!("Messages: {name}"),
            s.message_count(&inst.dag) as f64,
        );
    }

    out
}

/// Runs a figure experiment, parallelized over all cells.
pub fn run_figure(cfg: &FigureConfig) -> FigureResult {
    run_figure_with_threads(cfg, default_threads())
}

/// Runs a figure experiment with an explicit worker count (tests use 1).
pub fn run_figure_with_threads(cfg: &FigureConfig, threads: usize) -> FigureResult {
    let cells: Vec<(f64, usize)> = cfg
        .granularities
        .iter()
        .flat_map(|&g| (0..cfg.repetitions).map(move |r| (g, r)))
        .collect();
    let raw = parallel_map(cells.len(), threads, |i| {
        let (g, r) = cells[i];
        (g, run_cell(cfg, g, r))
    });

    let mut points = Vec::with_capacity(cfg.granularities.len());
    for &g in &cfg.granularities {
        let mut acc: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for (gg, cell) in raw.iter().filter(|(gg, _)| (gg - g).abs() < 1e-12) {
            let _ = gg;
            for (k, v) in cell {
                acc.entry(k.clone()).or_default().push(*v);
            }
        }
        let series = acc.into_iter().map(|(k, vs)| (k, mean(&vs))).collect();
        points.push(FigurePoint {
            granularity: g,
            series,
        });
    }
    FigureResult {
        id: cfg.id.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> FigureConfig {
        FigureConfig {
            granularities: vec![0.4, 1.2],
            repetitions: 3,
            ..FigureConfig::comparison("figtest", 1, 3)
        }
    }

    #[test]
    fn figure_run_produces_all_series() {
        let res = run_figure_with_threads(&tiny_config(), 2);
        assert_eq!(res.points.len(), 2);
        for p in &res.points {
            for key in [
                "FTSA-LowerBound",
                "FTSA-UpperBound",
                "MC-FTSA-LowerBound",
                "MC-FTSA-UpperBound",
                "FTBAR-LowerBound",
                "FTBAR-UpperBound",
                "FaultFree-FTSA",
                "FaultFree-FTBAR",
                "FTSA with 1 Crash",
                "MC-FTSA with 1 Crash",
                "FTBAR with 1 Crash",
                "FTSA with 0 Crash",
                "Overhead: FTSA with 1 Crash",
            ] {
                assert!(p.series.contains_key(key), "missing series {key}");
            }
        }
    }

    #[test]
    fn bounds_are_ordered_in_aggregates() {
        let res = run_figure_with_threads(&tiny_config(), 2);
        for p in &res.points {
            assert!(p.series["FTSA-LowerBound"] <= p.series["FTSA-UpperBound"] + 1e-9);
            assert!(p.series["MC-FTSA-LowerBound"] <= p.series["MC-FTSA-UpperBound"] + 1e-9);
            // Fault-free schedules can't be slower than replicated lower
            // bounds on average.
            assert!(p.series["FaultFree-FTSA"] <= p.series["FTSA-LowerBound"] + 1e-9);
        }
    }

    #[test]
    fn latency_grows_with_granularity() {
        // The paper's headline shape: more computation per communication
        // unit → longer normalized latency.
        let cfg = FigureConfig {
            granularities: vec![0.2, 2.0],
            repetitions: 5,
            ..FigureConfig::comparison("figshape", 1, 5)
        };
        let res = run_figure_with_threads(&cfg, 2);
        assert!(res.points[1].series["FTSA-LowerBound"] > res.points[0].series["FTSA-LowerBound"]);
    }

    #[test]
    fn mc_ftsa_ships_fewer_messages() {
        let res = run_figure_with_threads(&tiny_config(), 2);
        for p in &res.points {
            assert!(p.series["Messages: MC-FTSA"] <= p.series["Messages: FTSA"] + 1e-9);
        }
    }

    #[test]
    fn small_platform_config_skips_competitors() {
        let cfg = FigureConfig {
            granularities: vec![0.6],
            repetitions: 2,
            ..FigureConfig::small_platform(2)
        };
        let res = run_figure_with_threads(&cfg, 1);
        let p = &res.points[0];
        assert!(p.series.contains_key("FTSA with 2 Crash"));
        assert!(p.series.contains_key("FTSA with 1 Crash"));
        assert!(!p.series.contains_key("FTBAR-LowerBound"));
    }

    #[test]
    fn extra_algorithm_axis_adds_series_without_disturbing_paper_series() {
        let base = tiny_config();
        let mut ext = tiny_config();
        // Ftsa duplicates a paper series: it must be skipped, not allowed
        // to overwrite the paper numbers with a different tie stream.
        ext.extra_algorithms = vec![
            Algorithm::FtsaPressure,
            Algorithm::FtbarMatched,
            Algorithm::Ftsa,
        ];
        let a = run_figure_with_threads(&base, 2);
        let b = run_figure_with_threads(&ext, 2);
        for (pa, pb) in a.points.iter().zip(&b.points) {
            // The paper series are bit-identical with or without extras.
            for (k, v) in &pa.series {
                assert_eq!(pb.series[k].to_bits(), v.to_bits(), "series {k} disturbed");
            }
            for name in ["P-FTSA", "MC-FTBAR"] {
                assert!(pb.series.contains_key(&format!("{name}-LowerBound")));
                assert!(pb.series.contains_key(&format!("{name} with 1 Crash")));
                assert!(
                    pb.series[&format!("{name}-LowerBound")]
                        <= pb.series[&format!("{name}-UpperBound")] + 1e-9
                );
            }
            // MC-FTBAR inherits the matched-communication economy.
            assert!(pb.series["Messages: MC-FTBAR"] <= pb.series["Messages: FTSA"] + 1e-9);
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let cfg = tiny_config();
        let a = run_figure_with_threads(&cfg, 1);
        let b = run_figure_with_threads(&cfg, 4);
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.series, pb.series);
        }
    }
}
