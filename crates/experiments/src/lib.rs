//! Experiment harness: a declarative **campaign engine** plus the paper
//! presets built on it.
//!
//! Section 6 of the paper evaluates one fixed grid: random layered
//! graphs with `U{100..150}` tasks, granularity swept from 0.2 to 2.0 in
//! steps of 0.2, 20 processors (5 for Figure 4, 50 for Table 1),
//! `ε ∈ {1, 2, 5}`, unit link delays `U[0.5, 1]`, message volumes
//! `U[50, 150]`, 60 random graphs per point. This crate generalizes that
//! into one subsystem:
//!
//! * [`campaign`] — **the engine.** A serde-round-trippable
//!   [`campaign::CampaignSpec`] describes a scenario grid (workload ×
//!   platform × ε × repetitions, algorithm sets, failure models,
//!   measurement plan); the executor enumerates cells with deterministic
//!   per-cell seeds, fans them out over the work-stealing pool with
//!   per-worker reusable workspaces (zero allocations in the
//!   scheduler/simulator hot path), and streams the results into
//!   mean/stddev/percentile group statistics. The paper's evaluations
//!   are named presets ([`campaign::presets`]), pinned bit-identical to
//!   the pre-campaign bespoke drivers.
//! * [`figures`] / [`table1`] / [`extensions`] — the historical result
//!   shapes (figure points, table rows), now thin conversions over
//!   campaign runs.
//! * [`parallel`] — the deterministic parallel maps on the `rayon`
//!   shim's pool ([`parallel::parallel_map`] and the stateful
//!   [`parallel::parallel_map_with`]); `FTSCHED_THREADS` pins the worker
//!   count, results are bit-identical at any thread count.
//! * [`serve`] — the streaming campaign service behind `ftsched serve`:
//!   a hand-rolled HTTP/1.1 gateway accepting `CampaignSpec` JSON,
//!   sharding groups across workers and chunk-streaming statistics as
//!   shards complete, byte-identical to the CLI's file emission.
//! * [`store`] — the durable run store behind `serve --data-dir`:
//!   persistent idempotency records plus a checksummed write-ahead log
//!   of rendered groups, with crash recovery that resumes interrupted
//!   runs bit-exactly from the first missing group.
//! * [`output`] — CSV/JSON emission and ASCII plotting.
//! * [`args`] — the one `--key value` argument scanner shared by the
//!   CLI and the experiment binaries.
//!
//! **Normalization.** The paper plots "normalized latency" without
//! defining the constant. We divide by the instance's mean edge
//! communication cost `W̄ = mean_e V(e) · d̄`, which is independent of
//! the granularity sweep (only execution times are rescaled), so the
//! curve *shapes* match the paper: latency grows with granularity and
//! algorithm orderings are directly comparable. Absolute y-values differ
//! from the paper's unspecified constant.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod campaign;
pub mod extensions;
pub mod figures;
pub mod output;
pub mod parallel;
pub mod serve;
pub mod store;
pub mod table1;

/// Default granularity sweep of the paper: 0.2, 0.4, …, 2.0.
pub fn paper_granularities() -> Vec<f64> {
    (1..=10).map(|i| i as f64 * 0.2).collect()
}

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation of a slice (0 for len < 2).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_sweep_matches_paper() {
        let g = paper_granularities();
        assert_eq!(g.len(), 10);
        assert!((g[0] - 0.2).abs() < 1e-12);
        assert!((g[9] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[1.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
