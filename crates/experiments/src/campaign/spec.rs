//! The declarative side of the campaign engine: serde-round-trippable
//! scenario grids.
//!
//! A [`CampaignSpec`] is the full description of an experiment — the
//! workload/platform/ε/repetition axes, the algorithm sets, the failure
//! models and the measurement plan — as plain data. `ftsched campaign
//! --spec file.json` runs one straight from disk; the named presets in
//! [`crate::campaign::presets`] build the paper's own evaluations as
//! specs.

use ftsched_core::Algorithm;
use platform::FailureModel;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simulator::streaming::ArrivalProcess;
use taskgraph::generators::{
    erdos, fork_join, layered, series_parallel, ErdosConfig, ForkJoinConfig, LayeredConfig,
    SeriesParallelConfig,
};
use taskgraph::{workloads, Dag};

/// Task-count range of a paper-style layered workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayeredRange {
    /// Inclusive lower bound of the task count (paper: 100).
    pub tasks_lo: usize,
    /// Inclusive upper bound of the task count (paper: 150).
    pub tasks_hi: usize,
}

/// Task count of a single-parameter generator workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskCount {
    /// Number of tasks to generate.
    pub tasks: usize,
}

/// Shape of a fork–join generator workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForkJoinShape {
    /// Parallel branches per stage.
    pub width: usize,
    /// Number of fork–join stages.
    pub depth: usize,
}

/// A structured-kernel workload: which kernel at which size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StructuredWorkload {
    /// The kernel.
    pub kernel: StructuredKernel,
    /// Size parameter (matrix dimension, FFT width, grid edge, …).
    pub size: usize,
}

/// The classic structured application kernels of
/// [`taskgraph::workloads`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StructuredKernel {
    /// Tiled Cholesky factorization.
    Cholesky,
    /// Radix-2 FFT butterfly graph.
    Fft,
    /// Gaussian elimination update cascade.
    GaussianElimination,
    /// 1-D stencil sweep (width × steps grid).
    Stencil1d,
    /// Map–shuffle–reduce.
    MapReduce,
    /// 2-D wavefront (dynamic-programming dependence).
    Wavefront,
}

impl StructuredKernel {
    /// Every kernel, in canonical order.
    pub const ALL: [StructuredKernel; 6] = [
        StructuredKernel::Cholesky,
        StructuredKernel::Fft,
        StructuredKernel::GaussianElimination,
        StructuredKernel::Stencil1d,
        StructuredKernel::MapReduce,
        StructuredKernel::Wavefront,
    ];

    /// Stable lower-case identifier (used in labels and spec files).
    pub fn key(self) -> &'static str {
        match self {
            StructuredKernel::Cholesky => "cholesky",
            StructuredKernel::Fft => "fft",
            StructuredKernel::GaussianElimination => "gaussian_elimination",
            StructuredKernel::Stencil1d => "stencil_1d",
            StructuredKernel::MapReduce => "map_reduce",
            StructuredKernel::Wavefront => "wavefront",
        }
    }

    /// Builds the kernel DAG at `size` with the workspace's canonical
    /// cost parameters (the same scales the CLI `generate` command uses).
    pub fn build(self, size: usize) -> Dag {
        match self {
            StructuredKernel::Cholesky => workloads::cholesky(size.max(2), 10.0, 5.0),
            StructuredKernel::Fft => workloads::fft(size.next_power_of_two().max(2), 10.0, 20.0),
            StructuredKernel::GaussianElimination => {
                workloads::gaussian_elimination(size.max(2), 10.0, 1.0)
            }
            StructuredKernel::Stencil1d => workloads::stencil_1d(size, size, 10.0, 15.0),
            StructuredKernel::MapReduce => {
                workloads::map_reduce(size, size / 2 + 1, 20.0, 30.0, 10.0)
            }
            StructuredKernel::Wavefront => workloads::wavefront(size, size, 10.0, 15.0),
        }
    }
}

/// One point of the workload axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// The paper's layered `U{tasks_lo..tasks_hi}` random graphs drawn
    /// through [`platform::gen::paper_instance`] (volumes `U[50, 150]`,
    /// delays `U[0.5, 1]`).
    PaperLayered(LayeredRange),
    /// Random layered graphs at a fixed task count.
    Layered(TaskCount),
    /// Sparse random Erdős–Rényi-style DAGs.
    Erdos(TaskCount),
    /// Fork–join stage graphs.
    ForkJoin(ForkJoinShape),
    /// Random series–parallel graphs.
    SeriesParallel(TaskCount),
    /// A structured application kernel.
    Structured(StructuredWorkload),
}

impl WorkloadSpec {
    /// Human-readable label used in campaign tables and CSV rows.
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::PaperLayered(r) => {
                format!("paper-layered[{}..{}]", r.tasks_lo, r.tasks_hi)
            }
            WorkloadSpec::Layered(t) => format!("layered[{}]", t.tasks),
            WorkloadSpec::Erdos(t) => format!("erdos[{}]", t.tasks),
            WorkloadSpec::ForkJoin(s) => format!("fork-join[{}x{}]", s.width, s.depth),
            WorkloadSpec::SeriesParallel(t) => format!("series-parallel[{}]", t.tasks),
            WorkloadSpec::Structured(s) => format!("{}[{}]", s.kernel.key(), s.size),
        }
    }

    /// Declared task count: the spec-stated bound for the random
    /// families (`tasks_hi` for ranges — actual draws can only be
    /// smaller or equal) and the **exact** task count for structured
    /// kernels (computed by building the kernel graph once — a size
    /// parameter of 50 means ~20k Cholesky tasks, so comparing caps
    /// against the raw parameter would make them silently ineffective).
    /// Timing caps compare against this, and the `PaperTable` seeding
    /// mode derives its per-cell seed from it (matching the pre-campaign
    /// Table 1 driver, which XORed the row's task count into the seed).
    /// Deterministic; O(kernel size) for structured workloads, so cache
    /// it (as [`crate::campaign::CellPlan`] does) rather than calling it
    /// per cell.
    pub fn declared_tasks(&self) -> usize {
        match self {
            WorkloadSpec::PaperLayered(r) => r.tasks_hi,
            WorkloadSpec::Layered(t) | WorkloadSpec::Erdos(t) | WorkloadSpec::SeriesParallel(t) => {
                t.tasks
            }
            WorkloadSpec::ForkJoin(s) => s.width * s.depth + 2,
            WorkloadSpec::Structured(s) => s.kernel.build(s.size).num_tasks(),
        }
    }

    /// Builds the task graph, consuming `rng` only for the random
    /// families (structured kernels are deterministic).
    pub fn build_dag(&self, rng: &mut impl Rng) -> Dag {
        match self {
            // Same single-home draw `paper_instance` starts with, so a
            // standalone `build_dag` reproduces the campaign's graphs
            // at the same seed.
            WorkloadSpec::PaperLayered(r) => platform::gen::paper_dag(rng, r.tasks_lo, r.tasks_hi),
            WorkloadSpec::Layered(t) => layered(rng, &LayeredConfig::paper(t.tasks)),
            WorkloadSpec::Erdos(t) => erdos(rng, &ErdosConfig::sparse(t.tasks)),
            WorkloadSpec::ForkJoin(s) => fork_join(rng, &ForkJoinConfig::new(s.width, s.depth)),
            WorkloadSpec::SeriesParallel(t) => {
                series_parallel(rng, &SeriesParallelConfig::new(t.tasks.max(2)))
            }
            WorkloadSpec::Structured(s) => s.kernel.build(s.size),
        }
    }

    /// Whether this workload goes through
    /// [`platform::gen::paper_instance`] (which draws graph, platform and
    /// execution matrix in one fixed RNG order).
    pub fn is_paper_layered(&self) -> bool {
        matches!(self, WorkloadSpec::PaperLayered(_))
    }

    /// Structural validation: rejects the shapes whose generators would
    /// panic or emit an empty DAG mid-grid (an inverted `PaperLayered`
    /// range aborts `gen_range`; zero-task / zero-shape workloads have no
    /// schedulable graph). Part of [`CampaignSpec::validate`].
    pub fn validate(&self) -> Result<(), String> {
        match self {
            WorkloadSpec::PaperLayered(r) => {
                if r.tasks_lo == 0 {
                    return Err(format!("workload {}: tasks_lo must be >= 1", self.label()));
                }
                if r.tasks_lo > r.tasks_hi {
                    return Err(format!(
                        "workload {}: tasks_lo {} exceeds tasks_hi {}",
                        self.label(),
                        r.tasks_lo,
                        r.tasks_hi
                    ));
                }
            }
            WorkloadSpec::Layered(t) | WorkloadSpec::Erdos(t) | WorkloadSpec::SeriesParallel(t) => {
                if t.tasks == 0 {
                    return Err(format!(
                        "workload {}: needs at least one task",
                        self.label()
                    ));
                }
            }
            WorkloadSpec::ForkJoin(s) => {
                if s.width == 0 || s.depth == 0 {
                    return Err(format!(
                        "workload {}: width and depth must be >= 1",
                        self.label()
                    ));
                }
            }
            WorkloadSpec::Structured(s) => {
                if s.size == 0 {
                    return Err(format!(
                        "workload {}: size parameter must be >= 1",
                        self.label()
                    ));
                }
            }
        }
        Ok(())
    }
}

/// One point of the platform axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Number of fully connected processors.
    pub procs: usize,
    /// Target granularity (computation / communication balance); `<= 0`
    /// leaves the workload's natural costs unscaled.
    pub granularity: f64,
    /// Communication-to-computation ratio; when `> 0` it overrides
    /// `granularity` as `granularity = 1 / ccr` (the two are reciprocal
    /// views of the same rescaling).
    pub ccr: f64,
    /// Unrelated-machines heterogeneity spread of execution times.
    pub heterogeneity: f64,
}

impl Default for PlatformSpec {
    fn default() -> Self {
        PlatformSpec {
            procs: 20,
            granularity: 1.0,
            ccr: 0.0,
            heterogeneity: 0.5,
        }
    }
}

impl PlatformSpec {
    /// A paper-style platform point at `procs` processors and
    /// `granularity`.
    pub fn paper(procs: usize, granularity: f64) -> Self {
        PlatformSpec {
            procs,
            granularity,
            ..Default::default()
        }
    }

    /// The granularity the instance is rescaled to, if any (`ccr` wins
    /// over `granularity`).
    pub fn effective_granularity(&self) -> Option<f64> {
        if self.ccr > 0.0 {
            Some(1.0 / self.ccr)
        } else if self.granularity > 0.0 {
            Some(self.granularity)
        } else {
            None
        }
    }
}

/// A timing cap: skip `algorithm` entirely (no seconds, no bounds) in
/// cells whose workload declares more than `max_tasks` tasks — Table 1's
/// "FTBAR at 5000 tasks takes minutes by design" escape hatch,
/// generalized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingCap {
    /// The algorithm to cap.
    pub algorithm: Algorithm,
    /// Largest declared task count the algorithm still runs at.
    pub max_tasks: usize,
}

/// What to measure in every cell.
///
/// All families compose: a single campaign can record bounds, crash
/// latencies, wall-clock seconds and one-port penalties at once. The
/// legacy drivers are specific combinations (see
/// [`crate::campaign::presets`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasurePlan {
    /// Record the eq. (2)/(4) latency bounds (`{alg}-LowerBound`,
    /// `{alg}-UpperBound`) of every primary and extra algorithm.
    pub bounds: bool,
    /// Divide latency-valued series by the instance's mean edge
    /// communication cost `W̄` (the figures' normalization constant).
    pub normalize: bool,
    /// Algorithms additionally scheduled at `ε = 0` (`FaultFree-{alg}`
    /// series). Must be a subset of the primary algorithm list.
    pub fault_free: Vec<Algorithm>,
    /// Record `Overhead: …` series (percent over the *first* primary
    /// algorithm's fault-free latency) next to each crash series.
    /// Requires `fault_free` to contain that first algorithm.
    pub overhead: bool,
    /// Failure models to inject. The first model's scenario is shared by
    /// **every** algorithm of the cell (the paper's "identical failed
    /// processors for every algorithm" protocol); the remaining models
    /// are evaluated on the first primary algorithm only, drawn
    /// sequentially from the cell's crash stream.
    pub failures: Vec<FailureModel>,
    /// Algorithms whose replication message count is recorded
    /// (`Messages: {alg}`); extra algorithms are always counted.
    pub messages: Vec<Algorithm>,
    /// Record wall-clock scheduling seconds (`Seconds: {alg}`). Timing
    /// columns are *not* covered by the bit-parity guarantees (they
    /// measure the machine, not the algorithm).
    pub timing: bool,
    /// Per-algorithm task-count caps (only meaningful with per-algorithm
    /// seeding modes; rejected with shared-stream seeding, where a
    /// skipped slot would shift every later algorithm's tie stream).
    pub timing_caps: Vec<TimingCap>,
    /// Record one-port contention penalties (`OnePortPenalty: {alg}`,
    /// `Transfers: {alg}`) of every primary algorithm, fault-free.
    pub contention: bool,
    /// Per-processor failure probabilities at which to record the exact
    /// survival probability of the first primary algorithm's schedule
    /// (`P(survive) p={p}`) and the Theorem 4.1 design point
    /// (`DesignPoint p={p}`). Exponential in `procs` — small platforms
    /// only.
    pub reliability: Vec<f64>,
}

impl Default for MeasurePlan {
    fn default() -> Self {
        MeasurePlan {
            bounds: true,
            normalize: true,
            fault_free: Vec::new(),
            overhead: false,
            failures: Vec::new(),
            messages: Vec::new(),
            timing: false,
            timing_caps: Vec::new(),
            contention: false,
            reliability: Vec::new(),
        }
    }
}

/// The online-scheduling axis: when a spec carries an `ArrivalSpec`,
/// every cell is one **DAG stream** instead of one offline instance.
/// The workload spec describes each DAG in the stream, the platform
/// point is drawn once per cell and shared (persistent occupancy), and
/// the cell's series are the per-DAG stream measures — response time,
/// latency, queueing wait, deadline-miss fraction and completion
/// fraction per algorithm (see
/// [`crate::campaign::evaluate_stream_cell_into`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalSpec {
    /// How DAGs arrive (Poisson rate + count, or a recorded trace).
    pub process: ArrivalProcess,
    /// Per-DAG deadline = arrival + stretch × the DAG's isolated
    /// critical-path lower bound
    /// ([`simulator::streaming::isolated_lower_bound_into`]).
    pub deadline_stretch: f64,
    /// Failure model of the stream, drawn once per cell on the absolute
    /// stream clock and shared by every algorithm (the paper's
    /// identical-failures protocol). `TimedRelative` is rejected here —
    /// a stream has no single reference makespan.
    pub failures: FailureModel,
}

/// How per-cell RNG seeds are derived.
///
/// New campaigns use [`Seeding::Indexed`]: every cell's seed is
/// [`simulator::replication_seed`]`(spec.seed, cell_index)` and every
/// schedule slot gets its own stream derived from its slot position.
/// Stability contract: **appending workloads** (the outermost axis) or
/// **appending extra algorithms** (slots at the end, separate streams)
/// leaves every existing series bit-identical. Any edit that renumbers
/// existing cells or slots — adding platform points, ε values,
/// repetitions, primary algorithms or fault-free baselines — reseeds
/// the affected series; treat those as a new experiment. The `Paper*`
/// modes reproduce the exact seed derivations and tie-stream sharing of
/// the pre-campaign drivers; they exist so the pinned presets stay
/// **bit-identical** to the historical figure/table outputs (see
/// `tests/campaign_parity.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Seeding {
    /// `replication_seed(seed, cell_index)`; independent per-slot tie
    /// streams.
    Indexed,
    /// The figure drivers' derivation: granularity/repetition-mixed cell
    /// seed, one tie stream shared across the paper algorithms (extras
    /// independent), crash stream at `cell_seed ^ 0xC4A5`.
    PaperFigure,
    /// The Table 1 driver's derivation: `seed ^ declared_tasks` for the
    /// instance, a fresh `StdRng(seed)` tie stream per algorithm.
    PaperTable,
    /// The contention driver's derivation.
    PaperContention,
    /// The reliability driver's derivation: one instance per spec seed,
    /// tie streams at `seed ^ ε`.
    PaperReliability,
}

/// A declarative scenario grid: the cross product of the workload,
/// platform, ε and repetition axes, evaluated under one measurement
/// plan. See the [module docs](self) and the campaign engine docs
/// ([`crate::campaign`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign identifier (file stem of CSV/JSON outputs).
    pub id: String,
    /// Workload axis.
    pub workloads: Vec<WorkloadSpec>,
    /// Platform axis.
    pub platforms: Vec<PlatformSpec>,
    /// Tolerated-failure axis.
    pub epsilons: Vec<usize>,
    /// Primary algorithms, evaluated on every cell's shared instance and
    /// shared first failure scenario.
    pub algorithms: Vec<Algorithm>,
    /// Additional independently-seeded algorithms: each rides the same
    /// instances and shared scenarios on its **own** tie stream, so
    /// appending one never changes the primary series. An extra that
    /// duplicates a primary (or an earlier extra) is skipped.
    pub extra_algorithms: Vec<Algorithm>,
    /// Random instances per (workload, platform, ε) group.
    pub repetitions: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Per-cell seed derivation.
    pub seeding: Seeding,
    /// Online-scheduling axis: `Some` turns every cell into a DAG
    /// stream on a shared platform (see [`ArrivalSpec`]).
    pub arrivals: Option<ArrivalSpec>,
    /// What to measure.
    pub measures: MeasurePlan,
}

impl CampaignSpec {
    /// Total number of cells in the grid.
    pub fn num_cells(&self) -> usize {
        self.workloads.len() * self.platforms.len() * self.epsilons.len() * self.repetitions
    }

    /// Number of aggregation groups (cells differing only in the
    /// repetition coordinate share a group).
    pub fn num_groups(&self) -> usize {
        self.workloads.len() * self.platforms.len() * self.epsilons.len()
    }

    /// Structural validation: every error a run would otherwise hit
    /// mid-grid, reported up front.
    pub fn validate(&self) -> Result<(), String> {
        if self.workloads.is_empty() {
            return Err("campaign needs at least one workload".into());
        }
        if self.platforms.is_empty() {
            return Err("campaign needs at least one platform point".into());
        }
        if self.epsilons.is_empty() {
            return Err("campaign needs at least one epsilon".into());
        }
        if self.algorithms.is_empty() {
            return Err("campaign needs at least one primary algorithm".into());
        }
        if self.repetitions == 0 {
            return Err("campaign needs at least one repetition".into());
        }
        for w in &self.workloads {
            w.validate()?;
        }
        for p in &self.platforms {
            if p.procs == 0 {
                return Err("platform point with zero processors".into());
            }
            if !p.granularity.is_finite() {
                return Err(format!("platform granularity {} invalid", p.granularity));
            }
            if !p.ccr.is_finite() {
                return Err(format!("platform ccr {} invalid", p.ccr));
            }
            if !(p.heterogeneity.is_finite() && p.heterogeneity >= 0.0) {
                return Err(format!(
                    "platform heterogeneity {} invalid (must be finite and >= 0)",
                    p.heterogeneity
                ));
            }
            for &eps in &self.epsilons {
                if eps + 1 > p.procs {
                    return Err(format!(
                        "epsilon {eps} needs {} processors, platform point has {}",
                        eps + 1,
                        p.procs
                    ));
                }
                for fm in &self.measures.failures {
                    if fm.crashes(eps) > p.procs {
                        return Err(format!(
                            "failure model {fm:?} draws {} distinct processors, \
                             platform point has only {}",
                            fm.crashes(eps),
                            p.procs
                        ));
                    }
                }
            }
        }
        for fm in &self.measures.failures {
            if let FailureModel::Timed(t) = fm {
                if !(t.horizon.is_finite() && t.horizon >= 0.0) {
                    return Err(format!("timed failure horizon {} invalid", t.horizon));
                }
            }
            if let FailureModel::TimedRelative(t) = fm {
                if !(t.fraction.is_finite() && t.fraction >= 0.0) {
                    return Err(format!("timed failure fraction {} invalid", t.fraction));
                }
            }
        }
        if self.measures.overhead {
            let first = self.algorithms[0];
            if !self.measures.fault_free.contains(&first) {
                return Err(format!(
                    "overhead series need the fault-free baseline of the first \
                     primary algorithm ({}) in measures.fault_free",
                    first.name()
                ));
            }
        }
        for alg in &self.measures.fault_free {
            if !self.algorithms.contains(alg) {
                return Err(format!(
                    "fault-free algorithm {} is not in the primary set",
                    alg.name()
                ));
            }
        }
        if !self.measures.timing_caps.is_empty()
            && matches!(
                self.seeding,
                Seeding::PaperFigure | Seeding::PaperContention
            )
        {
            return Err(
                "timing caps cannot combine with shared-tie-stream seeding modes \
                 (a skipped slot would shift later algorithms' streams)"
                    .into(),
            );
        }
        // The first primary algorithm's schedule is the reference for
        // failure injection, contention and reliability; capping it away
        // would leave those measures reading a stale (or empty) slot.
        if (!self.measures.failures.is_empty()
            || self.measures.contention
            || !self.measures.reliability.is_empty())
            && self
                .measures
                .timing_caps
                .iter()
                .any(|c| c.algorithm == self.algorithms[0])
        {
            return Err(format!(
                "the first primary algorithm ({}) cannot carry a timing cap while \
                 failure/contention/reliability measures are requested — its \
                 schedule is every cell's reference",
                self.algorithms[0].name()
            ));
        }
        if matches!(self.seeding, Seeding::PaperFigure) {
            for p in &self.platforms {
                if p.effective_granularity().is_none() {
                    return Err(
                        "PaperFigure seeding derives cell seeds from the granularity; \
                         every platform point needs granularity or ccr set"
                            .into(),
                    );
                }
            }
        }
        for p in &self.measures.reliability {
            if !(0.0..=1.0).contains(p) {
                return Err(format!("reliability probability {p} outside [0, 1]"));
            }
        }
        if let Some(arr) = &self.arrivals {
            self.validate_arrivals(arr)?;
        }
        Ok(())
    }

    /// The arrival-axis half of [`CampaignSpec::validate`].
    fn validate_arrivals(&self, arr: &ArrivalSpec) -> Result<(), String> {
        if self.seeding != Seeding::Indexed {
            return Err("arrival-process campaigns require Indexed seeding \
                 (the Paper* modes encode pre-campaign offline drivers)"
                .into());
        }
        let m = &self.measures;
        if m.bounds
            || m.overhead
            || m.timing
            || m.contention
            || !m.fault_free.is_empty()
            || !m.failures.is_empty()
            || !m.messages.is_empty()
            || !m.reliability.is_empty()
            || !m.timing_caps.is_empty()
        {
            return Err("arrival-process campaigns record only the stream series; \
                 disable bounds/overhead/timing/contention and clear \
                 fault_free/failures/messages/reliability/timing_caps"
                .into());
        }
        match &arr.process {
            ArrivalProcess::Poisson(p) => {
                if p.count == 0 {
                    return Err("arrival process emits zero DAGs".into());
                }
                if !(p.rate.is_finite() && p.rate > 0.0) {
                    return Err(format!("Poisson arrival rate {} invalid", p.rate));
                }
            }
            ArrivalProcess::Trace(t) => {
                if t.times.is_empty() {
                    return Err("arrival process emits zero DAGs".into());
                }
                let mut prev = 0.0;
                for &time in &t.times {
                    if !(time.is_finite() && time >= prev) {
                        return Err(format!(
                            "trace arrivals must be finite, >= 0 and non-decreasing \
                             (got {time} after {prev})"
                        ));
                    }
                    prev = time;
                }
            }
        }
        if !(arr.deadline_stretch.is_finite() && arr.deadline_stretch > 0.0) {
            return Err(format!(
                "deadline stretch {} must be finite and > 0",
                arr.deadline_stretch
            ));
        }
        if arr.failures.needs_reference() {
            return Err(
                "TimedRelative failures are undefined on a stream (no single \
                 reference makespan); use Timed with an absolute horizon"
                    .into(),
            );
        }
        for p in &self.platforms {
            for &eps in &self.epsilons {
                if arr.failures.crashes(eps) > p.procs {
                    return Err(format!(
                        "stream failure model {:?} draws {} distinct processors, \
                         platform point has only {}",
                        arr.failures,
                        arr.failures.crashes(eps),
                        p.procs
                    ));
                }
            }
        }
        Ok(())
    }

    /// Serializes the spec as pretty JSON.
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| e.to_string())
    }

    /// Parses a spec from JSON and validates it.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let spec: CampaignSpec = serde_json::from_str(s).map_err(|e| e.to_string())?;
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::{TimedFailures, UniformFailures};

    fn small_spec() -> CampaignSpec {
        CampaignSpec {
            id: "test".into(),
            workloads: vec![
                WorkloadSpec::PaperLayered(LayeredRange {
                    tasks_lo: 20,
                    tasks_hi: 30,
                }),
                WorkloadSpec::Structured(StructuredWorkload {
                    kernel: StructuredKernel::Wavefront,
                    size: 4,
                }),
            ],
            platforms: vec![PlatformSpec::paper(8, 0.8)],
            epsilons: vec![1, 2],
            algorithms: vec![Algorithm::Ftsa, Algorithm::McFtsaGreedy],
            extra_algorithms: vec![Algorithm::FtsaPressure],
            repetitions: 3,
            seed: 42,
            seeding: Seeding::Indexed,
            arrivals: None,
            measures: MeasurePlan {
                fault_free: vec![Algorithm::Ftsa],
                overhead: true,
                failures: vec![
                    FailureModel::Epsilon,
                    FailureModel::Uniform(UniformFailures { crashes: 0 }),
                ],
                messages: vec![Algorithm::Ftsa],
                ..Default::default()
            },
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = small_spec();
        let json = spec.to_json().unwrap();
        let back = CampaignSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn validation_rejects_structural_errors() {
        let ok = small_spec();
        assert!(ok.validate().is_ok());

        let mut bad = ok.clone();
        bad.epsilons = vec![9]; // 10 > 8 processors
        assert!(bad.validate().unwrap_err().contains("processors"));

        let mut bad = ok.clone();
        bad.measures.failures = vec![FailureModel::Uniform(UniformFailures { crashes: 99 })];
        assert!(bad.validate().unwrap_err().contains("distinct processors"));

        let mut bad = ok.clone();
        bad.measures.fault_free.clear();
        assert!(bad.validate().unwrap_err().contains("fault-free"));

        let mut bad = ok.clone();
        bad.measures.failures = vec![FailureModel::Timed(TimedFailures {
            crashes: 1,
            horizon: f64::NAN,
        })];
        assert!(bad.validate().unwrap_err().contains("horizon"));

        let mut bad = ok.clone();
        bad.seeding = Seeding::PaperFigure;
        bad.measures.timing_caps = vec![TimingCap {
            algorithm: Algorithm::Ftbar,
            max_tasks: 10,
        }];
        assert!(bad.validate().unwrap_err().contains("timing caps"));

        // The first primary is the failure/contention/reliability
        // reference schedule; capping it away must be rejected.
        let mut bad = ok.clone();
        bad.measures.timing_caps = vec![TimingCap {
            algorithm: bad.algorithms[0],
            max_tasks: 10,
        }];
        assert!(bad.validate().unwrap_err().contains("reference"));

        let mut bad = ok;
        bad.repetitions = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn arrival_axis_validates_and_round_trips() {
        use simulator::streaming::{PoissonArrivals, TraceArrivals};

        let mut spec = small_spec();
        spec.measures = MeasurePlan {
            bounds: false,
            normalize: false,
            ..Default::default()
        };
        spec.arrivals = Some(ArrivalSpec {
            process: ArrivalProcess::Poisson(PoissonArrivals {
                rate: 0.01,
                count: 5,
            }),
            deadline_stretch: 3.0,
            failures: FailureModel::Uniform(UniformFailures { crashes: 1 }),
        });
        spec.validate().unwrap();
        let json = spec.to_json().unwrap();
        assert_eq!(CampaignSpec::from_json(&json).unwrap(), spec);

        // Stream cells record only stream series.
        let mut bad = spec.clone();
        bad.measures.bounds = true;
        assert!(bad.validate().unwrap_err().contains("stream series"));

        // Streams need Indexed seeding.
        let mut bad = spec.clone();
        bad.seeding = Seeding::PaperTable;
        assert!(bad.validate().unwrap_err().contains("Indexed"));

        // Degenerate processes are rejected up front.
        let mut bad = spec.clone();
        bad.arrivals.as_mut().unwrap().process = ArrivalProcess::Poisson(PoissonArrivals {
            rate: 0.0,
            count: 5,
        });
        assert!(bad.validate().unwrap_err().contains("rate"));
        let mut bad = spec.clone();
        bad.arrivals.as_mut().unwrap().process = ArrivalProcess::Trace(TraceArrivals {
            times: vec![3.0, 1.0],
        });
        assert!(bad.validate().unwrap_err().contains("non-decreasing"));
        let mut bad = spec.clone();
        bad.arrivals.as_mut().unwrap().deadline_stretch = 0.0;
        assert!(bad.validate().unwrap_err().contains("stretch"));

        // A stream has no reference makespan for TimedRelative.
        let mut bad = spec.clone();
        bad.arrivals.as_mut().unwrap().failures =
            FailureModel::TimedRelative(platform::TimedRelativeFailures {
                crashes: 1,
                fraction: 0.5,
            });
        assert!(bad.validate().unwrap_err().contains("TimedRelative"));

        // Crash counts are still bounded by the platform points.
        let mut bad = spec;
        bad.arrivals.as_mut().unwrap().failures =
            FailureModel::Uniform(UniformFailures { crashes: 99 });
        assert!(bad.validate().unwrap_err().contains("distinct processors"));
    }

    #[test]
    fn workload_labels_and_sizes() {
        assert_eq!(
            WorkloadSpec::PaperLayered(LayeredRange {
                tasks_lo: 100,
                tasks_hi: 150
            })
            .label(),
            "paper-layered[100..150]"
        );
        let w = WorkloadSpec::Structured(StructuredWorkload {
            kernel: StructuredKernel::MapReduce,
            size: 6,
        });
        assert_eq!(w.label(), "map_reduce[6]");
        // Structured workloads declare the *actual* task count (the
        // timing caps compare against it), not the size parameter:
        // map_reduce(6, 4) = 6 mappers + 4 reducers + source + sink.
        assert_eq!(w.declared_tasks(), 12);
        // Every kernel builds a non-empty DAG and declares its exact
        // task count.
        for kernel in StructuredKernel::ALL {
            let dag = kernel.build(4);
            assert!(dag.num_tasks() > 0, "{kernel:?}");
            let w = WorkloadSpec::Structured(StructuredWorkload { kernel, size: 4 });
            assert_eq!(w.declared_tasks(), dag.num_tasks(), "{kernel:?}");
        }
    }

    #[test]
    fn effective_granularity_prefers_ccr() {
        let mut p = PlatformSpec::paper(4, 0.5);
        assert_eq!(p.effective_granularity(), Some(0.5));
        p.ccr = 2.0;
        assert_eq!(p.effective_granularity(), Some(0.5));
        p.ccr = 0.0;
        p.granularity = 0.0;
        assert_eq!(p.effective_granularity(), None);
    }
}
