//! Named campaign presets: the paper's own evaluations (and the CI
//! smoke grid) as [`CampaignSpec`]s.
//!
//! The `fig1`–`fig4`, `table1`, `contention` and `reliability` presets
//! are **pinned bit-identical** to the pre-campaign bespoke drivers by
//! `tests/campaign_parity.rs` (frozen reference implementations): same
//! instances, same tie streams, same crash scenarios, same aggregation
//! order. That is what the `Paper*` [`Seeding`] modes encode. New
//! presets should use [`Seeding::Indexed`].

use super::{
    ArrivalSpec, CampaignSpec, LayeredRange, MeasurePlan, PlatformSpec, Seeding, StructuredKernel,
    StructuredWorkload, TimingCap, WorkloadSpec,
};
use crate::figures::FigureConfig;
use crate::table1::Table1Config;
use ftsched_core::Algorithm;
use platform::{FailureModel, TimedRelativeFailures, UniformFailures};
use simulator::streaming::{ArrivalProcess, PoissonArrivals};

/// Every preset name, in display order.
pub const PRESET_NAMES: [&str; 11] = [
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "table1",
    "table1-full",
    "contention",
    "reliability",
    "timed-crash",
    "online",
    "ci-smoke",
];

/// Builds the named preset. `reps` overrides the preset's repetition
/// count where one applies (figures, contention, ci-smoke).
pub fn preset(name: &str, reps: Option<usize>) -> Option<CampaignSpec> {
    match name {
        "fig1" => Some(spec_from_figure(&FigureConfig::comparison(
            "fig1",
            1,
            reps.unwrap_or(60),
        ))),
        "fig2" => Some(spec_from_figure(&FigureConfig::comparison(
            "fig2",
            2,
            reps.unwrap_or(60),
        ))),
        "fig3" => Some(spec_from_figure(&FigureConfig::comparison(
            "fig3",
            5,
            reps.unwrap_or(60),
        ))),
        "fig4" => Some(spec_from_figure(&FigureConfig::small_platform(
            reps.unwrap_or(60),
        ))),
        "table1" => Some(spec_from_table1(&Table1Config::quick())),
        "table1-full" => Some(spec_from_table1(&Table1Config::paper())),
        "contention" => Some(spec_from_contention(
            &[1, 2, 3, 5],
            reps.unwrap_or(30),
            0.4,
            0xC0417,
        )),
        "reliability" => Some(spec_from_reliability(
            &[0, 1, 2, 4],
            &[0.01, 0.05, 0.1, 0.25, 0.5],
            10,
            0x8E11,
        )),
        "timed-crash" => Some(timed_crash(reps.unwrap_or(30))),
        "online" => Some(online(reps.unwrap_or(5))),
        "ci-smoke" => Some(ci_smoke(reps.unwrap_or(2))),
        _ => None,
    }
}

/// The campaign form of a figure experiment: paper layered workload, one
/// platform point per granularity, the figure's ε, paper algorithms with
/// fault-free baselines, ε-then-extra crash counts, normalized series.
pub fn spec_from_figure(cfg: &FigureConfig) -> CampaignSpec {
    let algorithms = if cfg.compare_algorithms {
        vec![Algorithm::Ftsa, Algorithm::McFtsaGreedy, Algorithm::Ftbar]
    } else {
        vec![Algorithm::Ftsa]
    };
    let fault_free = if cfg.compare_algorithms {
        vec![Algorithm::Ftsa, Algorithm::Ftbar]
    } else {
        vec![Algorithm::Ftsa]
    };
    let messages = if cfg.compare_algorithms {
        vec![Algorithm::Ftsa, Algorithm::McFtsaGreedy]
    } else {
        vec![]
    };
    let mut failures = vec![
        FailureModel::Epsilon,
        FailureModel::Uniform(UniformFailures { crashes: 0 }),
    ];
    failures.extend(
        cfg.extra_crash_counts
            .iter()
            .map(|&k| FailureModel::Uniform(UniformFailures { crashes: k })),
    );
    CampaignSpec {
        id: cfg.id.clone(),
        workloads: vec![WorkloadSpec::PaperLayered(LayeredRange {
            tasks_lo: 100,
            tasks_hi: 150,
        })],
        platforms: cfg
            .granularities
            .iter()
            .map(|&g| PlatformSpec::paper(cfg.procs, g))
            .collect(),
        epsilons: vec![cfg.epsilon],
        algorithms,
        extra_algorithms: cfg.extra_algorithms.clone(),
        repetitions: cfg.repetitions,
        seed: cfg.seed,
        seeding: Seeding::PaperFigure,
        arrivals: None,
        measures: MeasurePlan {
            bounds: true,
            normalize: true,
            fault_free,
            overhead: true,
            failures,
            messages,
            ..Default::default()
        },
    }
}

/// The campaign form of the Table 1 timing experiment: one fixed-size
/// paper workload per row, a single 50-processor point, wall-clock
/// seconds plus raw (un-normalized) latency bounds, FTBAR capped.
pub fn spec_from_table1(cfg: &Table1Config) -> CampaignSpec {
    CampaignSpec {
        id: "table1".into(),
        workloads: cfg
            .sizes
            .iter()
            .map(|&v| {
                WorkloadSpec::PaperLayered(LayeredRange {
                    tasks_lo: v,
                    tasks_hi: v,
                })
            })
            .collect(),
        platforms: vec![PlatformSpec::paper(cfg.procs, 1.0)],
        epsilons: vec![cfg.epsilon],
        algorithms: vec![Algorithm::Ftsa, Algorithm::McFtsaGreedy, Algorithm::Ftbar],
        extra_algorithms: cfg.extra_algorithms.clone(),
        repetitions: 1,
        seed: cfg.seed,
        seeding: Seeding::PaperTable,
        arrivals: None,
        measures: MeasurePlan {
            bounds: true,
            normalize: false,
            timing: true,
            timing_caps: vec![TimingCap {
                algorithm: Algorithm::Ftbar,
                max_tasks: cfg.ftbar_size_cap,
            }],
            ..Default::default()
        },
    }
}

/// The campaign form of the one-port contention extension: fine-grain
/// paper instances, ε axis, FTSA vs MC-FTSA penalties.
pub fn spec_from_contention(
    epsilons: &[usize],
    repetitions: usize,
    granularity: f64,
    seed: u64,
) -> CampaignSpec {
    CampaignSpec {
        id: "contention".into(),
        workloads: vec![WorkloadSpec::PaperLayered(LayeredRange {
            tasks_lo: 100,
            tasks_hi: 150,
        })],
        platforms: vec![PlatformSpec::paper(20, granularity)],
        epsilons: epsilons.to_vec(),
        algorithms: vec![Algorithm::Ftsa, Algorithm::McFtsaGreedy],
        extra_algorithms: vec![],
        repetitions,
        seed,
        seeding: Seeding::PaperContention,
        arrivals: None,
        measures: MeasurePlan {
            bounds: false,
            normalize: false,
            contention: true,
            ..Default::default()
        },
    }
}

/// The campaign form of the exact-reliability extension: one small
/// instance, ε axis, survival probabilities vs the Theorem 4.1 design
/// point over a probability sweep.
pub fn spec_from_reliability(
    epsilons: &[usize],
    probabilities: &[f64],
    procs: usize,
    seed: u64,
) -> CampaignSpec {
    CampaignSpec {
        id: "reliability".into(),
        workloads: vec![WorkloadSpec::PaperLayered(LayeredRange {
            tasks_lo: 60,
            tasks_hi: 60,
        })],
        platforms: vec![PlatformSpec::paper(procs, 1.0)],
        epsilons: epsilons.to_vec(),
        algorithms: vec![Algorithm::Ftsa],
        extra_algorithms: vec![],
        repetitions: 1,
        seed,
        seeding: Seeding::PaperReliability,
        arrivals: None,
        measures: MeasurePlan {
            bounds: false,
            normalize: false,
            reliability: probabilities.to_vec(),
            ..Default::default()
        },
    }
}

/// The mid-execution crash sweep: the paper's fail-at-time-zero
/// protocol (`Epsilon`) side by side with `TimedRelative` horizons at
/// 0.25/0.5/1.0 of each cell's reference makespan `M*` — so one preset
/// answers "how much does *when* the crash lands cost?" across
/// granularities without hand-tuning absolute horizons per instance
/// scale. Crashes landing after the schedule drains are free; crashes
/// at time 0 are the paper's worst case; the fractions interpolate.
pub fn timed_crash(repetitions: usize) -> CampaignSpec {
    CampaignSpec {
        id: "timed-crash".into(),
        workloads: vec![WorkloadSpec::PaperLayered(LayeredRange {
            tasks_lo: 100,
            tasks_hi: 150,
        })],
        platforms: vec![
            PlatformSpec::paper(20, 0.5),
            PlatformSpec::paper(20, 1.0),
            PlatformSpec::paper(20, 2.0),
        ],
        epsilons: vec![2],
        algorithms: vec![Algorithm::Ftsa, Algorithm::McFtsaGreedy],
        extra_algorithms: vec![],
        repetitions,
        seed: 0x71AED,
        seeding: Seeding::Indexed,
        arrivals: None,
        measures: MeasurePlan {
            bounds: true,
            normalize: true,
            failures: vec![
                FailureModel::Epsilon,
                FailureModel::TimedRelative(TimedRelativeFailures {
                    crashes: 2,
                    fraction: 0.25,
                }),
                FailureModel::TimedRelative(TimedRelativeFailures {
                    crashes: 2,
                    fraction: 0.5,
                }),
                FailureModel::TimedRelative(TimedRelativeFailures {
                    crashes: 2,
                    fraction: 1.0,
                }),
            ],
            ..Default::default()
        },
    }
}

/// The online-scheduling preset: Poisson DAG arrivals on a shared
/// 8-processor platform with persistent occupancy, one mid-stream
/// timed crash, and per-DAG response/latency/wait/deadline-miss
/// series. Every emitted number is deterministic (Indexed seeding, no
/// timing columns), so the CI thread matrix `cmp`s its outputs byte
/// for byte — the streaming analogue of `ci-smoke`.
pub fn online(repetitions: usize) -> CampaignSpec {
    CampaignSpec {
        id: "online".into(),
        workloads: vec![WorkloadSpec::PaperLayered(LayeredRange {
            tasks_lo: 20,
            tasks_hi: 30,
        })],
        platforms: vec![PlatformSpec::paper(8, 1.0)],
        epsilons: vec![1],
        algorithms: vec![Algorithm::Ftsa, Algorithm::McFtsaGreedy],
        extra_algorithms: vec![],
        repetitions,
        seed: 0x0A11E,
        seeding: Seeding::Indexed,
        arrivals: Some(ArrivalSpec {
            process: ArrivalProcess::Poisson(PoissonArrivals {
                rate: 0.001,
                count: 10,
            }),
            deadline_stretch: 6.0,
            failures: FailureModel::Timed(platform::TimedFailures {
                crashes: 1,
                horizon: 5000.0,
            }),
        }),
        measures: MeasurePlan {
            bounds: false,
            normalize: false,
            ..Default::default()
        },
    }
}

/// A deliberately tiny mixed-axis grid for CI: two workload families
/// (paper layered + a structured kernel), two granularities, Indexed
/// seeding, no timing columns — every emitted number is deterministic,
/// so the CI thread matrix can `cmp` the JSON outputs byte for byte.
pub fn ci_smoke(repetitions: usize) -> CampaignSpec {
    CampaignSpec {
        id: "ci-smoke".into(),
        workloads: vec![
            WorkloadSpec::PaperLayered(LayeredRange {
                tasks_lo: 30,
                tasks_hi: 40,
            }),
            WorkloadSpec::Structured(StructuredWorkload {
                kernel: StructuredKernel::Wavefront,
                size: 4,
            }),
        ],
        platforms: vec![PlatformSpec::paper(8, 0.6), PlatformSpec::paper(8, 1.4)],
        epsilons: vec![1],
        algorithms: vec![Algorithm::Ftsa, Algorithm::McFtsaGreedy, Algorithm::Ftbar],
        extra_algorithms: vec![],
        repetitions,
        seed: 0xC1_5304E,
        seeding: Seeding::Indexed,
        arrivals: None,
        measures: MeasurePlan {
            bounds: true,
            normalize: true,
            fault_free: vec![Algorithm::Ftsa],
            overhead: true,
            failures: vec![
                FailureModel::Epsilon,
                FailureModel::Uniform(UniformFailures { crashes: 0 }),
            ],
            messages: vec![Algorithm::Ftsa, Algorithm::McFtsaGreedy],
            ..Default::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_builds_and_validates() {
        for name in PRESET_NAMES {
            let spec = preset(name, Some(2)).unwrap_or_else(|| panic!("missing preset {name}"));
            spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!spec.id.is_empty());
        }
        assert!(preset("nope", None).is_none());
    }

    #[test]
    fn preset_reps_override_applies_to_figures() {
        let spec = preset("fig1", Some(5)).unwrap();
        assert_eq!(spec.repetitions, 5);
        let spec = preset("fig1", None).unwrap();
        assert_eq!(spec.repetitions, 60);
    }

    #[test]
    fn figure_spec_mirrors_config_shape() {
        let cfg = FigureConfig::comparison("fig2", 2, 7);
        let spec = spec_from_figure(&cfg);
        assert_eq!(spec.platforms.len(), cfg.granularities.len());
        assert_eq!(spec.epsilons, vec![2]);
        assert_eq!(spec.seeding, Seeding::PaperFigure);
        // ε = 2 figures add the 1-crash comparison series.
        assert_eq!(spec.measures.failures.len(), 3);
        let json = spec.to_json().unwrap();
        assert_eq!(CampaignSpec::from_json(&json).unwrap(), spec);
    }

    #[test]
    fn timed_crash_spec_sweeps_relative_horizons() {
        let spec = preset("timed-crash", Some(3)).unwrap();
        assert_eq!(spec.repetitions, 3);
        assert_eq!(spec.measures.failures.len(), 4);
        let fractions: Vec<f64> = spec
            .measures
            .failures
            .iter()
            .filter_map(|fm| match fm {
                FailureModel::TimedRelative(t) => Some(t.fraction),
                _ => None,
            })
            .collect();
        assert_eq!(fractions, vec![0.25, 0.5, 1.0]);
        let json = spec.to_json().unwrap();
        assert_eq!(CampaignSpec::from_json(&json).unwrap(), spec);
    }

    #[test]
    fn online_spec_is_a_deterministic_stream_grid() {
        let spec = preset("online", None).unwrap();
        let arr = spec.arrivals.as_ref().expect("online preset streams");
        assert_eq!(arr.process.count(), 10);
        // No wall-clock columns: the CI thread matrix byte-compares it.
        assert!(!spec.measures.timing);
        assert_eq!(spec.seeding, Seeding::Indexed);
        let json = spec.to_json().unwrap();
        assert_eq!(CampaignSpec::from_json(&json).unwrap(), spec);
    }

    #[test]
    fn table1_spec_caps_ftbar() {
        let spec = spec_from_table1(&Table1Config::quick());
        assert!(spec.measures.timing);
        assert_eq!(spec.measures.timing_caps.len(), 1);
        assert_eq!(spec.measures.timing_caps[0].algorithm, Algorithm::Ftbar);
        assert_eq!(spec.repetitions, 1);
    }
}
