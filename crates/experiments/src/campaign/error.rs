//! Typed campaign execution errors.
//!
//! Every failure the campaign engine (and the drivers built on it) can
//! hit is a [`CampaignError`] value, never a panic: a spec rejected by
//! [`super::CampaignSpec::validate`], a scheduler run failing inside a
//! cell, a stream cell evaluated without an arrival axis, or a driver
//! asking for a series the aggregation did not produce. A service front
//! end (`experiments::serve`) relies on this — a worker thread must not
//! die on user input, so `validate` rejects every spec shape that could
//! reach the executor-level variants, which then only guard direct
//! library callers.

use ftsched_core::ScheduleError;
use std::fmt;
use std::sync::Arc;

/// A shared, comparable wrapper over [`std::io::Error`] so persistence
/// failures can live inside [`CampaignError`] (which is `Clone +
/// PartialEq` for test ergonomics and result fan-out). Equality compares
/// the error kind and rendered message — good enough for assertions,
/// while [`std::error::Error::source`] still exposes the real chain.
#[derive(Debug, Clone)]
pub struct StoreIoError(pub Arc<std::io::Error>);

impl StoreIoError {
    /// Wraps an io error.
    pub fn new(err: std::io::Error) -> StoreIoError {
        StoreIoError(Arc::new(err))
    }
}

impl PartialEq for StoreIoError {
    fn eq(&self, other: &StoreIoError) -> bool {
        self.0.kind() == other.0.kind() && self.0.to_string() == other.0.to_string()
    }
}

impl fmt::Display for StoreIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for StoreIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.0.source()
    }
}

/// Errors raised by campaign execution and the drivers built on it.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The spec failed [`super::CampaignSpec::validate`].
    InvalidSpec(String),
    /// A scheduler run inside a cell failed.
    Schedule {
        /// The campaign id.
        campaign: String,
        /// Name of the algorithm that failed.
        algorithm: &'static str,
        /// The ε the run was attempted at.
        epsilon: usize,
        /// Processor count of the cell's platform point.
        procs: usize,
        /// The underlying scheduler error.
        source: ScheduleError,
    },
    /// A streaming run inside a stream cell failed.
    Stream {
        /// The campaign id.
        campaign: String,
        /// Name of the algorithm that failed.
        algorithm: &'static str,
        /// The ε the run was attempted at.
        epsilon: usize,
        /// Processor count of the cell's platform point.
        procs: usize,
        /// The underlying scheduler error.
        source: ScheduleError,
    },
    /// A stream cell was evaluated on a spec without an arrival axis.
    MissingArrivals {
        /// The campaign id.
        campaign: String,
    },
    /// A durable-store operation (run record, spec, or WAL persistence)
    /// failed mid-run. The run halts loudly — partial durable state is
    /// kept for resume — and the server stays alive.
    Store {
        /// The campaign id.
        campaign: String,
        /// What the store was doing when it failed.
        operation: &'static str,
        /// The underlying io error.
        source: StoreIoError,
    },
    /// A driver looked up a series absent from the aggregated results
    /// (see [`super::GroupResult::require_mean`]).
    MissingSeries {
        /// The series name that was requested.
        series: String,
        /// Workload label of the group.
        workload: String,
        /// Processor count of the group.
        procs: usize,
        /// ε of the group.
        epsilon: usize,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::InvalidSpec(msg) => write!(f, "invalid campaign spec: {msg}"),
            CampaignError::Schedule {
                campaign,
                algorithm,
                epsilon,
                procs,
                source,
            } => write!(
                f,
                "campaign {campaign}: {algorithm} at eps {epsilon} on {procs} procs \
                 failed: {source}"
            ),
            CampaignError::Stream {
                campaign,
                algorithm,
                epsilon,
                procs,
                source,
            } => write!(
                f,
                "campaign {campaign}: stream of {algorithm} at eps {epsilon} on \
                 {procs} procs failed: {source}"
            ),
            CampaignError::MissingArrivals { campaign } => write!(
                f,
                "campaign {campaign}: stream cell evaluated without an arrival axis"
            ),
            CampaignError::Store {
                campaign,
                operation,
                source,
            } => write!(
                f,
                "campaign {campaign}: durable store failed while {operation}: {source}"
            ),
            CampaignError::MissingSeries {
                series,
                workload,
                procs,
                epsilon,
            } => write!(
                f,
                "series {series:?} missing from group (workload {workload}, \
                 {procs} procs, eps {epsilon})"
            ),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Schedule { source, .. } | CampaignError::Stream { source, .. } => {
                Some(source)
            }
            CampaignError::Store { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CampaignError::InvalidSpec("no workloads".into());
        assert!(e.to_string().contains("no workloads"));
        let e = CampaignError::Schedule {
            campaign: "fig1".into(),
            algorithm: "FTSA",
            epsilon: 3,
            procs: 2,
            source: ScheduleError::NotEnoughProcessors {
                epsilon: 3,
                procs: 2,
            },
        };
        assert!(e.to_string().contains("fig1"));
        assert!(e.to_string().contains("FTSA"));
        assert!(std::error::Error::source(&e).is_some());
        let e = CampaignError::MissingSeries {
            series: "FTSA-LowerBound".into(),
            workload: "layered".into(),
            procs: 10,
            epsilon: 1,
        };
        assert!(e.to_string().contains("FTSA-LowerBound"));
    }

    #[test]
    fn store_variant_chains_and_compares() {
        let make = || CampaignError::Store {
            campaign: "ci-smoke".into(),
            operation: "appending group frame",
            source: StoreIoError::new(std::io::Error::other("disk full")),
        };
        let e = make();
        assert!(e.to_string().contains("appending group frame"));
        assert!(e.to_string().contains("disk full"));
        assert!(std::error::Error::source(&e).is_some());
        assert_eq!(e, make(), "equality by kind + message");
        let _cloned = e.clone();
    }
}
