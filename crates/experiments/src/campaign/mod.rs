//! The declarative campaign engine: one scenario-grid subsystem behind
//! every experiment in this workspace.
//!
//! A campaign is the cross product of four axes — **workload** ×
//! **platform** × **ε** × **repetition** — described by a serde
//! round-trippable [`CampaignSpec`] and evaluated under one
//! [`MeasurePlan`]. The engine replaces the pre-campaign bespoke sweeps
//! (`figures.rs`, `table1.rs`, `extensions.rs` each hard-coded its own
//! grid walk, seeding and aggregation); those modules are now thin
//! conversions over this one.
//!
//! # Pipeline
//!
//! 1. **Enumerate**: cells are indexed row-major (workload, platform, ε,
//!    repetition); [`cell_seed`] derives each cell's RNG seed — by
//!    default [`simulator::replication_seed`]`(spec.seed, index)`, with
//!    legacy modes preserving the pre-campaign derivations (see
//!    [`Seeding`]).
//! 2. **Execute**: [`crate::parallel::parallel_map_with`] fans cells out
//!    over the work-stealing pool with **per-chunk reusable state**
//!    (one state per deterministic chunk of cells, at most 64 per
//!    campaign) — a [`CellContext`] holding one [`ScheduleWorkspace`]
//!    per schedule slot plus a [`CrashWorkspace`] and scenario buffers.
//!    Every
//!    schedule runs through `schedule_into` and every crash simulation
//!    through `simulate_outcome_into`, so steady-state cells perform
//!    **zero heap allocations in the scheduler/simulator hot path**
//!    (pinned by `tests/alloc_counter.rs` at the repo root; the
//!    contention and exact-reliability measures are the documented
//!    exceptions — their simulators allocate internally).
//! 3. **Aggregate**: cell series stream into an [`Aggregator`] in cell
//!    order (mean is the same left-fold sum the legacy drivers used, so
//!    preset means are bit-identical), producing per-group
//!    mean/stddev/min/max/percentile statistics.
//!
//! Chunk boundaries in the executor depend only on the cell count, so a
//! campaign returns **bit-identical results at any thread count** —
//! enforced end to end by `tests/parallel_determinism.rs` and the CI
//! thread matrix.
//!
//! # Cell anatomy
//!
//! Within one cell, the engine generates one instance and then:
//!
//! * schedules every **primary** algorithm at the cell's ε (plus an
//!   `ε = 0` baseline for the `fault_free` set), recording bounds,
//!   wall-clock seconds and message counts as the plan asks;
//! * draws the plan's [`FailureModel`]s from the cell's crash stream —
//!   the first model's scenario is **shared by every algorithm** (the
//!   paper's protocol), later models hit the first primary only — and
//!   replays each schedule through the crash simulator;
//! * optionally measures one-port contention penalties and exact
//!   survival probabilities.
//!
//! **Extra** algorithms ride the same instances and shared scenarios on
//! independent tie streams: appending one never disturbs an existing
//! series (duplicates of already-evaluated algorithms are skipped).
//!
//! # Adding a preset
//!
//! Write a `CampaignSpec` constructor in [`presets`], give it a name in
//! [`presets::preset`], and (if its numbers must stay pinned) add a
//! frozen-reference comparison to `tests/campaign_parity.rs`. The
//! paper presets (`fig1`–`fig4`, `table1`, `contention`, `reliability`)
//! reproduce the historical drivers bit for bit.

mod error;
pub mod presets;
mod spec;

pub use error::{CampaignError, StoreIoError};
pub use spec::{
    ArrivalSpec, CampaignSpec, ForkJoinShape, LayeredRange, MeasurePlan, PlatformSpec, Seeding,
    StructuredKernel, StructuredWorkload, TaskCount, TimingCap, WorkloadSpec,
};

use crate::parallel::{default_threads, parallel_map_with};
use ftsched_core::{schedule_into, Algorithm, ScheduleWorkspace};
use platform::gen::{paper_instance, random_platform, PaperInstanceConfig};
use platform::granularity::scale_to_granularity;
use platform::{ExecutionMatrix, FailureModel, FailureScenario, Instance};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use simulator::contention::{simulate_contention, PortModel};
use simulator::crash::{simulate_outcome_into, CrashWorkspace, FallbackPolicy};
use simulator::reliability::{design_point_probability, survival_probability_exact};
use simulator::replication_seed;
use simulator::streaming::{
    isolated_lower_bound_into, run_stream_into, DagOutcome, StreamWorkspace,
};
use std::collections::BTreeMap;
use std::time::Instant;

/// Coordinates of one cell in the campaign grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellCoord {
    /// Index into [`CampaignSpec::workloads`].
    pub workload: usize,
    /// Index into [`CampaignSpec::platforms`].
    pub platform: usize,
    /// Index into [`CampaignSpec::epsilons`].
    pub eps: usize,
    /// Repetition number (`0..repetitions`).
    pub rep: usize,
}

impl CampaignSpec {
    /// The coordinates of linear cell `index` (row-major: workload,
    /// platform, ε, repetition — repetitions innermost, so a group's
    /// cells are contiguous and repetition order is aggregation order).
    pub fn coord(&self, index: usize) -> CellCoord {
        let r = index % self.repetitions;
        let rest = index / self.repetitions;
        let e = rest % self.epsilons.len();
        let rest = rest / self.epsilons.len();
        let p = rest % self.platforms.len();
        let w = rest / self.platforms.len();
        CellCoord {
            workload: w,
            platform: p,
            eps: e,
            rep: r,
        }
    }

    /// Linear index of `coord` (inverse of [`CampaignSpec::coord`]).
    pub fn cell_index(&self, c: &CellCoord) -> usize {
        ((c.workload * self.platforms.len() + c.platform) * self.epsilons.len() + c.eps)
            * self.repetitions
            + c.rep
    }

    /// Aggregation-group index of `coord` (all repetitions share one).
    pub fn group_index(&self, c: &CellCoord) -> usize {
        (c.workload * self.platforms.len() + c.platform) * self.epsilons.len() + c.eps
    }
}

/// Derives the cell's base RNG seed per the spec's [`Seeding`] mode.
/// Standalone form — recomputes the workload's declared task count for
/// `PaperTable` seeding (which builds the kernel graph for structured
/// workloads); plan-holding callers should use [`CellPlan::cell_seed`],
/// which reads the cached count instead.
pub fn cell_seed(spec: &CampaignSpec, c: &CellCoord) -> u64 {
    let tasks = match spec.seeding {
        Seeding::PaperTable => spec.workloads[c.workload].declared_tasks(),
        _ => 0,
    };
    cell_seed_with_tasks(spec, c, tasks)
}

/// [`cell_seed`] with the workload's declared task count supplied by the
/// caller (only consulted under `PaperTable` seeding).
fn cell_seed_with_tasks(spec: &CampaignSpec, c: &CellCoord, declared_tasks: usize) -> u64 {
    match spec.seeding {
        Seeding::Indexed => replication_seed(spec.seed, spec.cell_index(c) as u64),
        Seeding::PaperFigure => {
            let g = spec.platforms[c.platform]
                .effective_granularity()
                .unwrap_or(1.0);
            spec.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((g * 1e6) as u64)
                .wrapping_add(c.rep as u64)
        }
        Seeding::PaperTable => spec.seed ^ declared_tasks as u64,
        Seeding::PaperContention => {
            (spec.seed ^ ((spec.epsilons[c.eps] as u64) << 32)) | c.rep as u64
        }
        Seeding::PaperReliability => spec.seed,
    }
}

/// Generates the cell's instance (graph + platform + execution matrix)
/// from its seed. Paper-layered workloads go through
/// [`paper_instance`] so the full RNG draw order matches the historical
/// drivers; every other workload builds its DAG first, then the random
/// platform, then the unrelated execution matrix, then the optional
/// granularity rescale.
pub fn instance_for_cell(spec: &CampaignSpec, c: &CellCoord) -> Instance {
    instance_from_seed(spec, c, cell_seed(spec, c))
}

/// [`instance_for_cell`] with the cell seed supplied by the caller (the
/// executor derives it once through [`CellPlan::cell_seed`]).
fn instance_from_seed(spec: &CampaignSpec, c: &CellCoord, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let w = &spec.workloads[c.workload];
    let p = &spec.platforms[c.platform];
    match (w, p.effective_granularity()) {
        (WorkloadSpec::PaperLayered(r), Some(g)) => paper_instance(
            &mut rng,
            &PaperInstanceConfig {
                tasks_lo: r.tasks_lo,
                tasks_hi: r.tasks_hi,
                procs: p.procs,
                granularity: g,
                heterogeneity: p.heterogeneity,
            },
        ),
        // Every other combination — including an *unscaled* paper
        // workload (granularity and ccr both unset): `build_dag`'s
        // PaperLayered arm draws through `paper_dag`, so the RNG
        // consumption below is identical to `paper_instance` minus the
        // (draw-free) granularity rescale.
        (_, eff) => {
            let dag = w.build_dag(&mut rng);
            let platform = random_platform(&mut rng, p.procs, 0.5, 1.0);
            let mut exec =
                ExecutionMatrix::unrelated_with_procs(&dag, p.procs, &mut rng, p.heterogeneity);
            if let Some(g) = eff {
                scale_to_granularity(&dag, &platform, &mut exec, g);
            }
            Instance::new(dag, platform, exec)
        }
    }
}

/// Normalization constant of the latency series: the instance's mean
/// edge communication cost `W̄ = mean_e V(e) · d̄` (independent of the
/// granularity sweep, so curve shapes are comparable across points).
pub fn normalization(inst: &Instance) -> f64 {
    let e = inst.dag.num_edges();
    if e == 0 {
        return 1.0;
    }
    let d = inst.platform.average_delay();
    let total: f64 = inst.dag.edge_list().map(|(_, _, _, v)| v * d).sum();
    (total / e as f64).max(f64::MIN_POSITIVE)
}

/// Compact identity of one measured series within a cell — a `Copy` key
/// so the evaluation hot loop records `(key, value)` pairs without
/// allocating; human-readable names are rendered once per group at
/// aggregation time ([`series_name`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SeriesKey {
    /// Eq. (2) latency lower bound `M*` of algorithm `alg`.
    LowerBound(u8),
    /// Eq. (4) latency upper bound `M` of algorithm `alg`.
    UpperBound(u8),
    /// `M*` of the `ε = 0` baseline schedule of algorithm `alg`.
    FaultFree(u8),
    /// Simulated latency of `alg` under failure model `failure`.
    Crash {
        /// Combined algorithm id (primaries then extras).
        alg: u8,
        /// Index into [`MeasurePlan::failures`].
        failure: u8,
    },
    /// Percent overhead of the matching crash latency over the first
    /// primary algorithm's fault-free latency.
    Overhead {
        /// Combined algorithm id.
        alg: u8,
        /// Index into [`MeasurePlan::failures`].
        failure: u8,
    },
    /// Replication message count of `alg`.
    Messages(u8),
    /// Wall-clock scheduling seconds of `alg`.
    Seconds(u8),
    /// One-port / unbounded latency ratio of `alg` (fault-free).
    OnePortPenalty(u8),
    /// One-port transfer count of `alg` (fault-free).
    Transfers(u8),
    /// Exact survival probability at probability index `p`.
    Survival(u8),
    /// Theorem 4.1 design point `P(≤ ε failures)` at probability index.
    DesignPoint(u8),
    /// Stream cells: mean per-DAG response time (finish − arrival) of
    /// algorithm `alg`.
    StreamResponse(u8),
    /// Stream cells: mean per-DAG execution latency (finish − first
    /// start) of `alg`.
    StreamLatency(u8),
    /// Stream cells: mean per-DAG queueing wait (first start − arrival)
    /// of `alg`.
    StreamWait(u8),
    /// Stream cells: fraction of DAGs finishing after their deadline
    /// (`arrival + stretch × isolated bound`) under `alg`.
    StreamMiss(u8),
    /// Stream cells: fraction of DAGs completing every task under `alg`.
    StreamCompleted(u8),
}

/// One schedule slot of a cell: which algorithm at which ε variant.
#[derive(Debug, Clone, Copy)]
pub struct SlotSpec {
    /// The algorithm to run.
    pub alg: Algorithm,
    /// Combined algorithm id (index into [`CellPlan::alg_names`]).
    pub alg_id: u8,
    /// `true` for the `ε = 0` fault-free baseline run.
    pub baseline: bool,
    /// `Some(original index)` for extra algorithms (drives their
    /// independent tie streams, counting skipped duplicates like the
    /// pre-campaign drivers did).
    pub extra_index: Option<u8>,
    /// Declared-task cap above which this slot is skipped.
    pub cap: Option<usize>,
}

/// The static per-campaign evaluation plan: the schedule slots of every
/// cell, in execution order, plus the combined algorithm name table.
#[derive(Debug, Clone)]
pub struct CellPlan {
    /// Schedule slots in execution order (primary, then its baseline if
    /// requested, …, then extras).
    pub slots: Vec<SlotSpec>,
    /// Display names by combined algorithm id.
    pub alg_names: Vec<&'static str>,
    /// Per ε-index, per failure-model index: whether the model is
    /// skipped because its rendered label duplicates an earlier model's
    /// at that ε (e.g. `Epsilon` next to `Uniform{crashes: ε}` — two
    /// series with one name would silently shadow each other
    /// downstream). Skipped models draw nothing from the crash stream,
    /// mirroring the duplicate-extra-algorithm rule.
    pub failure_skip: Vec<Vec<bool>>,
    /// Declared task count per workload index
    /// ([`WorkloadSpec::declared_tasks`], cached here because it builds
    /// the kernel graph for structured workloads).
    pub workload_tasks: Vec<usize>,
}

impl CellPlan {
    /// Builds the plan for `spec`.
    pub fn new(spec: &CampaignSpec) -> CellPlan {
        let cap_of = |alg: Algorithm| {
            spec.measures
                .timing_caps
                .iter()
                .find(|c| c.algorithm == alg)
                .map(|c| c.max_tasks)
        };
        let mut slots = Vec::new();
        let mut alg_names = Vec::new();
        for &alg in &spec.algorithms {
            let alg_id = alg_names.len() as u8;
            alg_names.push(alg.name());
            slots.push(SlotSpec {
                alg,
                alg_id,
                baseline: false,
                extra_index: None,
                cap: cap_of(alg),
            });
            if spec.measures.fault_free.contains(&alg) {
                slots.push(SlotSpec {
                    alg,
                    alg_id,
                    baseline: true,
                    extra_index: None,
                    cap: cap_of(alg),
                });
            }
        }
        let mut seen: Vec<Algorithm> = spec.algorithms.clone();
        for (ai, &alg) in spec.extra_algorithms.iter().enumerate() {
            if seen.contains(&alg) {
                continue; // duplicate extra: skipped, but `ai` still advances
            }
            seen.push(alg);
            let alg_id = alg_names.len() as u8;
            alg_names.push(alg.name());
            slots.push(SlotSpec {
                alg,
                alg_id,
                baseline: false,
                extra_index: Some(ai as u8),
                cap: cap_of(alg),
            });
        }
        let failure_skip = spec
            .epsilons
            .iter()
            .map(|&eps| {
                let mut seen: Vec<String> = Vec::new();
                spec.measures
                    .failures
                    .iter()
                    .map(|fm| {
                        let label = failure_label(fm, eps);
                        let dup = seen.contains(&label);
                        seen.push(label);
                        dup
                    })
                    .collect()
            })
            .collect();
        CellPlan {
            slots,
            alg_names,
            failure_skip,
            workload_tasks: spec.workloads.iter().map(|w| w.declared_tasks()).collect(),
        }
    }

    /// Whether `slot` is skipped in cells of `workload` (timing cap).
    pub fn capped(&self, slot: &SlotSpec, workload: usize) -> bool {
        slot.cap
            .is_some_and(|cap| self.workload_tasks[workload] > cap)
    }

    /// [`cell_seed`] through the plan's cached task counts — avoids
    /// rebuilding structured kernel graphs per cell under `PaperTable`
    /// seeding.
    pub fn cell_seed(&self, spec: &CampaignSpec, c: &CellCoord) -> u64 {
        cell_seed_with_tasks(spec, c, self.workload_tasks[c.workload])
    }
}

/// Reusable evaluation state (one per executor chunk): one
/// [`ScheduleWorkspace`] per schedule slot (so every slot's schedule
/// stays borrowed in its own workspace through the crash phase), the
/// crash-replay workspace, and the scenario/scratch buffers. After a
/// chunk's first cell, the entire scheduler/simulator hot path runs
/// allocation-free.
#[derive(Debug, Default)]
pub struct CellContext {
    slots: Vec<ScheduleWorkspace>,
    crash: CrashWorkspace,
    scenario: FailureScenario,
    shared: FailureScenario,
    ids: Vec<u32>,
    // --- stream-cell state (arrival-axis campaigns only) ---------------
    stream: StreamWorkspace,
    insts: Vec<Instance>,
    arrivals: Vec<f64>,
    outcomes: Vec<DagOutcome>,
    deadline_bounds: Vec<f64>,
    lb_scratch: Vec<f64>,
}

impl CellContext {
    /// Creates an empty context; buffers are sized by the first cell.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Fresh tie-break stream for a slot under per-slot seeding modes.
fn slot_tie_rng(spec: &CampaignSpec, seed: u64, eps: usize, slot_index: usize) -> StdRng {
    let plan_seed = match spec.seeding {
        // Only extra slots reach this path under the shared-stream
        // modes; their independent streams use the historical constant.
        Seeding::PaperFigure | Seeding::PaperContention => unreachable!("handled by caller"),
        Seeding::PaperTable => spec.seed,
        Seeding::PaperReliability => spec.seed ^ eps as u64,
        Seeding::Indexed => replication_seed(seed, 0x71E0 + slot_index as u64),
    };
    StdRng::seed_from_u64(plan_seed)
}

/// Evaluates one cell on a prebuilt instance, pushing `(key, value)`
/// pairs into `out` (cleared first). This is the campaign hot path: with
/// a warm `ctx` and an `out` at capacity it performs no heap allocation
/// in the scheduler/simulator work (contention and exact-reliability
/// measures excepted — their engines allocate internally).
///
/// A scheduler failure inside the cell surfaces as
/// [`CampaignError::Schedule`]; specs that pass
/// [`CampaignSpec::validate`] cannot reach it.
pub fn evaluate_cell_into(
    spec: &CampaignSpec,
    plan: &CellPlan,
    coord: &CellCoord,
    inst: &Instance,
    ctx: &mut CellContext,
    out: &mut Vec<(SeriesKey, f64)>,
) -> Result<(), CampaignError> {
    let eps = spec.epsilons[coord.eps];
    let m = inst.num_procs();
    let seed = plan.cell_seed(spec, coord);
    let meas = &spec.measures;
    let norm = if meas.normalize {
        normalization(inst)
    } else {
        1.0
    };
    out.clear();

    let CellContext {
        slots,
        crash,
        scenario,
        shared,
        ids,
        ..
    } = ctx;
    if slots.len() < plan.slots.len() {
        slots.resize_with(plan.slots.len(), ScheduleWorkspace::new);
    }

    // --- Phase 1: schedules (tie streams per the seeding mode) ---------
    let mut shared_tie: Option<StdRng> = match spec.seeding {
        Seeding::PaperFigure => Some(StdRng::seed_from_u64(seed ^ 0xA5A5)),
        Seeding::PaperContention => Some(StdRng::seed_from_u64(seed ^ 0xBEEF)),
        _ => None,
    };
    let mut star = f64::NAN;
    let mut lb0 = f64::NAN; // slot 0's un-normalized M* (TimedRelative reference)
    for (si, slot) in plan.slots.iter().enumerate() {
        if plan.capped(slot, coord.workload) {
            continue;
        }
        let run_eps = if slot.baseline { 0 } else { eps };
        let ws = &mut slots[si];
        let t0 = Instant::now();
        let run = match (&mut shared_tie, slot.extra_index) {
            (Some(tie), None) => schedule_into(inst, run_eps, slot.alg, tie, ws),
            (Some(_), Some(ai)) => {
                let mut tie = StdRng::seed_from_u64(seed ^ (0xA1_6000 + ai as u64));
                schedule_into(inst, run_eps, slot.alg, &mut tie, ws)
            }
            (None, _) => {
                let mut tie = slot_tie_rng(spec, seed, eps, si);
                schedule_into(inst, run_eps, slot.alg, &mut tie, ws)
            }
        };
        let secs = t0.elapsed().as_secs_f64();
        let sched = match run {
            Ok(s) => s,
            Err(e) => {
                return Err(CampaignError::Schedule {
                    campaign: spec.id.clone(),
                    algorithm: slot.alg.name(),
                    epsilon: run_eps,
                    procs: m,
                    source: e,
                })
            }
        };
        let lb = sched.latency_lower_bound();
        if slot.baseline {
            out.push((SeriesKey::FaultFree(slot.alg_id), lb / norm));
            if slot.alg_id == 0 {
                star = lb;
            }
        } else {
            if si == 0 {
                lb0 = lb;
            }
            if meas.timing {
                out.push((SeriesKey::Seconds(slot.alg_id), secs));
            }
            if meas.bounds {
                out.push((SeriesKey::LowerBound(slot.alg_id), lb / norm));
                out.push((
                    SeriesKey::UpperBound(slot.alg_id),
                    sched.latency_upper_bound() / norm,
                ));
            }
            if slot.extra_index.is_some() || meas.messages.contains(&slot.alg) {
                out.push((
                    SeriesKey::Messages(slot.alg_id),
                    sched.message_count(&inst.dag) as f64,
                ));
            }
        }
    }
    let ov = |x: f64| (x - star) / star * 100.0;

    // --- Phase 2: failure injection ------------------------------------
    // One crash stream per cell; the first model's scenario is shared by
    // every algorithm, later models are drawn sequentially for the first
    // primary only (the paper's protocol, and bit-compatible with the
    // pre-campaign figure drivers' fresh-same-seed per-algorithm RNGs).
    // A capped slot 0 cannot anchor the shared scenario — `validate`
    // rejects that combination; the guard protects direct callers.
    if !meas.failures.is_empty() && !plan.capped(&plan.slots[0], coord.workload) {
        let crash_seed = match spec.seeding {
            Seeding::Indexed => replication_seed(seed, 0xC4A5),
            _ => seed ^ 0xC4A5,
        };
        let mut crash_rng = StdRng::seed_from_u64(crash_seed);
        for (fi, fm) in meas.failures.iter().enumerate() {
            if plan.failure_skip[coord.eps][fi] {
                continue; // duplicate label at this ε: no draw, no series
            }
            let buf: &mut FailureScenario = if fi == 0 { shared } else { scenario };
            // `lb0` (slot 0's M*) resolves TimedRelative horizons; every
            // other model draws exactly as `sample_into` would.
            fm.sample_into_scaled(&mut crash_rng, m, eps, lb0, buf, ids);
            let l =
                simulate_outcome_into(inst, slots[0].schedule(), buf, policy(fm), crash).latency;
            out.push((
                SeriesKey::Crash {
                    alg: 0,
                    failure: fi as u8,
                },
                l / norm,
            ));
            if meas.overhead {
                out.push((
                    SeriesKey::Overhead {
                        alg: 0,
                        failure: fi as u8,
                    },
                    ov(l),
                ));
            }
        }
        let policy0 = policy(&meas.failures[0]);
        for (si, slot) in plan.slots.iter().enumerate() {
            if si == 0 || slot.baseline || plan.capped(slot, coord.workload) {
                continue;
            }
            let l =
                simulate_outcome_into(inst, slots[si].schedule(), shared, policy0, crash).latency;
            out.push((
                SeriesKey::Crash {
                    alg: slot.alg_id,
                    failure: 0,
                },
                l / norm,
            ));
            if meas.overhead {
                out.push((
                    SeriesKey::Overhead {
                        alg: slot.alg_id,
                        failure: 0,
                    },
                    ov(l),
                ));
            }
        }
    }

    // --- Phase 3: contention (primary algorithms, fault-free) ----------
    if meas.contention {
        for (si, slot) in plan.slots.iter().enumerate() {
            if slot.baseline || slot.extra_index.is_some() || plan.capped(slot, coord.workload) {
                continue;
            }
            let sched = slots[si].schedule();
            let none = FailureScenario::none();
            let unb = simulate_contention(inst, sched, &none, PortModel::Unbounded);
            let one = simulate_contention(inst, sched, &none, PortModel::OnePort);
            out.push((
                SeriesKey::OnePortPenalty(slot.alg_id),
                one.latency / unb.latency,
            ));
            out.push((SeriesKey::Transfers(slot.alg_id), one.transfers as f64));
        }
    }

    // --- Phase 4: exact reliability (first primary's schedule) ---------
    // Like the failure phase, this reads slot 0 as the reference — a
    // capped slot 0 (rejected by `validate`, guarded here for direct
    // callers) would hold a stale or empty schedule.
    if !meas.reliability.is_empty() && !plan.capped(&plan.slots[0], coord.workload) {
        let sched = slots[0].schedule();
        for (pi, &p) in meas.reliability.iter().enumerate() {
            out.push((
                SeriesKey::Survival(pi as u8),
                survival_probability_exact(inst, sched, p),
            ));
            out.push((
                SeriesKey::DesignPoint(pi as u8),
                design_point_probability(m, eps, p),
            ));
        }
    }
    Ok(())
}

/// Builds one stream cell's instances into `insts` (cleared first): the
/// platform point is drawn **once** and shared by every DAG of the
/// stream (the persistent-occupancy premise), then each DAG draws its
/// graph and execution matrix from the same cell RNG stream. Appending
/// DAGs to a stream (a larger arrival count) therefore never redraws
/// the earlier instances.
fn stream_instances_from_seed(
    spec: &CampaignSpec,
    c: &CellCoord,
    count: usize,
    seed: u64,
    insts: &mut Vec<Instance>,
) {
    insts.clear();
    let mut rng = StdRng::seed_from_u64(seed);
    let w = &spec.workloads[c.workload];
    let p = &spec.platforms[c.platform];
    let eff = p.effective_granularity();
    let plat = random_platform(&mut rng, p.procs, 0.5, 1.0);
    for _ in 0..count {
        let dag = w.build_dag(&mut rng);
        let mut exec =
            ExecutionMatrix::unrelated_with_procs(&dag, p.procs, &mut rng, p.heterogeneity);
        if let Some(g) = eff {
            scale_to_granularity(&dag, &plat, &mut exec, g);
        }
        insts.push(Instance::new(dag, plat.clone(), exec));
    }
}

/// Evaluates one **stream cell** of an arrival-axis campaign: the cell's
/// DAGs arrive on a shared platform whose occupancy persists across
/// DAGs, each algorithm replays the identical stream (same DAGs, same
/// arrival instants, same failure scenario on the absolute clock), and
/// the per-DAG outcomes aggregate into the `Stream*` series. Requires
/// `spec.arrivals` to be `Some` (the engine dispatches here in that
/// case) — [`CampaignError::MissingArrivals`] otherwise;
/// `spec.validate()` guarantees the measure plan carries no offline
/// series and that no stream run can fail
/// ([`CampaignError::Stream`] guards direct callers).
pub fn evaluate_stream_cell_into(
    spec: &CampaignSpec,
    plan: &CellPlan,
    coord: &CellCoord,
    ctx: &mut CellContext,
    out: &mut Vec<(SeriesKey, f64)>,
) -> Result<(), CampaignError> {
    let arr = match spec.arrivals.as_ref() {
        Some(arr) => arr,
        None => {
            return Err(CampaignError::MissingArrivals {
                campaign: spec.id.clone(),
            })
        }
    };
    let eps = spec.epsilons[coord.eps];
    let m = spec.platforms[coord.platform].procs;
    let seed = plan.cell_seed(spec, coord);
    out.clear();

    let CellContext {
        scenario,
        ids,
        stream,
        insts,
        arrivals,
        outcomes,
        deadline_bounds,
        lb_scratch,
        ..
    } = ctx;

    stream_instances_from_seed(spec, coord, arr.process.count(), seed, insts);
    let mut arrival_rng = StdRng::seed_from_u64(replication_seed(seed, 0xA221));
    arr.process.sample_into(&mut arrival_rng, arrivals);
    deadline_bounds.clear();
    deadline_bounds.extend(
        insts
            .iter()
            .map(|inst| isolated_lower_bound_into(inst, lb_scratch)),
    );
    // One failure draw per cell, shared by every algorithm — the same
    // identical-failures protocol as the offline phase 2 (and the same
    // crash-stream constant, so offline and stream cells of one seed
    // family stay comparable).
    let crash_seed = replication_seed(seed, 0xC4A5);
    arr.failures.sample_into(
        &mut StdRng::seed_from_u64(crash_seed),
        m,
        eps,
        scenario,
        ids,
    );

    for (si, slot) in plan.slots.iter().enumerate() {
        if slot.baseline {
            continue;
        }
        let stream_seed = replication_seed(seed, 0x71E0 + si as u64);
        if let Err(e) = run_stream_into(
            insts,
            arrivals,
            eps,
            slot.alg,
            scenario,
            policy(&arr.failures),
            stream_seed,
            stream,
            outcomes,
        ) {
            return Err(CampaignError::Stream {
                campaign: spec.id.clone(),
                algorithm: slot.alg.name(),
                epsilon: eps,
                procs: m,
                source: e,
            });
        }

        // Response / latency / wait are conditional on completion (a
        // lost DAG has no finite finish); the loss itself is reported
        // through the miss and completion fractions, which cover every
        // arrival.
        let n = outcomes.len() as f64;
        let (mut resp, mut lat, mut wait) = (0.0f64, 0.0f64, 0.0f64);
        let (mut missed, mut completed) = (0usize, 0usize);
        for (o, &bound) in outcomes.iter().zip(deadline_bounds.iter()) {
            // An infinite finish (lost DAG) always counts as a miss.
            let deadline = o.arrival + arr.deadline_stretch * bound;
            if o.finish > deadline + 1e-9 {
                missed += 1;
            }
            if o.completed {
                completed += 1;
                resp += o.response_time();
                lat += o.latency();
                wait += o.wait_time();
            }
        }
        if completed > 0 {
            let c = completed as f64;
            out.push((SeriesKey::StreamResponse(slot.alg_id), resp / c));
            out.push((SeriesKey::StreamLatency(slot.alg_id), lat / c));
            out.push((SeriesKey::StreamWait(slot.alg_id), wait / c));
        }
        out.push((SeriesKey::StreamMiss(slot.alg_id), missed as f64 / n));
        out.push((
            SeriesKey::StreamCompleted(slot.alg_id),
            completed as f64 / n,
        ));
    }
    Ok(())
}

/// Crash-delivery policy for a failure model: timed scenarios fall back
/// to strict matched delivery (re-routing is only defined for
/// fail-at-time-zero), everything else uses the default re-routed
/// semantics the legacy drivers simulated with.
fn policy(fm: &FailureModel) -> FallbackPolicy {
    if fm.is_timed() {
        FallbackPolicy::Strict
    } else {
        FallbackPolicy::Rerouted
    }
}

/// Renders a series key as its human-readable name, in the naming scheme
/// the paper figures established (`FTSA-LowerBound`,
/// `MC-FTSA with 2 Crash`, `Overhead: …`, `Messages: …`).
pub fn series_name(spec: &CampaignSpec, plan: &CellPlan, eps: usize, key: SeriesKey) -> String {
    let alg = |a: u8| plan.alg_names[a as usize];
    let fail = |f: u8| failure_label(&spec.measures.failures[f as usize], eps);
    match key {
        SeriesKey::LowerBound(a) => format!("{}-LowerBound", alg(a)),
        SeriesKey::UpperBound(a) => format!("{}-UpperBound", alg(a)),
        SeriesKey::FaultFree(a) => format!("FaultFree-{}", alg(a)),
        SeriesKey::Crash { alg: a, failure } => format!("{} with {}", alg(a), fail(failure)),
        SeriesKey::Overhead { alg: a, failure } => {
            format!("Overhead: {} with {}", alg(a), fail(failure))
        }
        SeriesKey::Messages(a) => format!("Messages: {}", alg(a)),
        SeriesKey::Seconds(a) => format!("Seconds: {}", alg(a)),
        SeriesKey::OnePortPenalty(a) => format!("OnePortPenalty: {}", alg(a)),
        SeriesKey::Transfers(a) => format!("Transfers: {}", alg(a)),
        SeriesKey::Survival(p) => {
            format!("P(survive) p={}", spec.measures.reliability[p as usize])
        }
        SeriesKey::DesignPoint(p) => {
            format!("DesignPoint p={}", spec.measures.reliability[p as usize])
        }
        SeriesKey::StreamResponse(a) => format!("Stream Response: {}", alg(a)),
        SeriesKey::StreamLatency(a) => format!("Stream Latency: {}", alg(a)),
        SeriesKey::StreamWait(a) => format!("Stream Wait: {}", alg(a)),
        SeriesKey::StreamMiss(a) => format!("Stream DeadlineMiss: {}", alg(a)),
        SeriesKey::StreamCompleted(a) => format!("Stream Completed: {}", alg(a)),
    }
}

/// Crash-count label of a failure model (`"2 Crash"`, the figure
/// legends' phrasing; timed models append their horizon).
fn failure_label(fm: &FailureModel, eps: usize) -> String {
    match fm {
        FailureModel::Timed(t) => format!("{} Crash in [0,{}]", t.crashes, t.horizon),
        FailureModel::TimedRelative(t) => {
            format!("{} Crash in [0,{}*Mstar]", t.crashes, t.fraction)
        }
        other => format!("{} Crash", other.crashes(eps)),
    }
}

/// Aggregate statistics of one series within a group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesStats {
    /// Series name (see [`series_name`]).
    pub name: String,
    /// Number of cell observations.
    pub count: usize,
    /// Mean (left-fold sum / count — bit-compatible with the legacy
    /// drivers' aggregation).
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two observations).
    pub stddev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Median (nearest-rank on the sorted observations).
    pub p50: f64,
    /// 90th percentile (nearest-rank).
    pub p90: f64,
}

/// Aggregated results of one (workload, platform, ε) group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupResult {
    /// Workload axis index.
    pub workload_index: usize,
    /// Workload label ([`WorkloadSpec::label`]).
    pub workload: String,
    /// Platform axis index.
    pub platform_index: usize,
    /// Processor count of the platform point.
    pub procs: usize,
    /// Effective granularity of the platform point (0 when unscaled).
    pub granularity: f64,
    /// Tolerated-failure count ε of this group.
    pub epsilon: usize,
    /// Per-series statistics, sorted by name.
    pub series: Vec<SeriesStats>,
}

impl GroupResult {
    /// Mean of the named series, if present.
    pub fn mean(&self, name: &str) -> Option<f64> {
        self.series.iter().find(|s| s.name == name).map(|s| s.mean)
    }

    /// Mean of the named series, or a typed
    /// [`CampaignError::MissingSeries`] identifying the group — the
    /// panic-free lookup the table/extension drivers build on.
    pub fn require_mean(&self, name: &str) -> Result<f64, CampaignError> {
        self.mean(name).ok_or_else(|| CampaignError::MissingSeries {
            series: name.to_string(),
            workload: self.workload.clone(),
            procs: self.procs,
            epsilon: self.epsilon,
        })
    }
}

/// A fully aggregated campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// The spec's id.
    pub id: String,
    /// Groups in grid order (workload-major, then platform, then ε).
    pub groups: Vec<GroupResult>,
}

impl CampaignResult {
    /// The group at the given axis coordinates.
    pub fn group(&self, spec: &CampaignSpec, w: usize, p: usize, e: usize) -> &GroupResult {
        &self.groups[(w * spec.platforms.len() + p) * spec.epsilons.len() + e]
    }
}

/// Streaming per-group accumulator: cells are pushed one at a time (in
/// cell order — repetition order within a group), and statistics are
/// rendered at [`Aggregator::finalize`]. Raw observations are retained
/// per series so stddev and percentiles are exact; memory is
/// `groups × series × repetitions` floats.
#[derive(Debug)]
pub struct Aggregator {
    groups: Vec<BTreeMap<SeriesKey, Vec<f64>>>,
}

impl Aggregator {
    /// An accumulator for `num_groups` groups.
    pub fn new(num_groups: usize) -> Self {
        Aggregator {
            groups: (0..num_groups).map(|_| BTreeMap::new()).collect(),
        }
    }

    /// Streams one cell's series into its group.
    pub fn push_cell(&mut self, group: usize, cell: &[(SeriesKey, f64)]) {
        let g = &mut self.groups[group];
        for &(key, value) in cell {
            g.entry(key).or_default().push(value);
        }
    }

    /// Renders the per-group statistics.
    pub fn finalize(self, spec: &CampaignSpec, plan: &CellPlan) -> CampaignResult {
        let groups = self
            .groups
            .into_iter()
            .enumerate()
            .map(|(gi, series_map)| finalize_group(spec, plan, gi, series_map))
            .collect();
        CampaignResult {
            id: spec.id.clone(),
            groups,
        }
    }
}

/// Renders one group's statistics from its raw per-series observations
/// (in repetition order). This is [`Aggregator::finalize`]'s per-group
/// step, extracted so the sharded `serve` path can render groups
/// incrementally while staying byte-identical to the batch aggregation.
pub fn finalize_group(
    spec: &CampaignSpec,
    plan: &CellPlan,
    gi: usize,
    series_map: BTreeMap<SeriesKey, Vec<f64>>,
) -> GroupResult {
    let e = gi % spec.epsilons.len();
    let rest = gi / spec.epsilons.len();
    let p = rest % spec.platforms.len();
    let w = rest / spec.platforms.len();
    let eps = spec.epsilons[e];
    let mut series: Vec<SeriesStats> = series_map
        .into_iter()
        .map(|(key, values)| {
            let mut sorted = values.clone();
            sorted.sort_by(f64::total_cmp);
            SeriesStats {
                name: series_name(spec, plan, eps, key),
                count: values.len(),
                mean: crate::mean(&values),
                stddev: crate::stddev(&values),
                min: sorted[0],
                max: sorted[sorted.len() - 1],
                p50: percentile(&sorted, 0.5),
                p90: percentile(&sorted, 0.9),
            }
        })
        .collect();
    series.sort_by(|a, b| a.name.cmp(&b.name));
    GroupResult {
        workload_index: w,
        workload: spec.workloads[w].label(),
        platform_index: p,
        procs: spec.platforms[p].procs,
        granularity: spec.platforms[p].effective_granularity().unwrap_or(0.0),
        epsilon: eps,
        series,
    }
}

/// Nearest-rank percentile of ascending-`sorted` observations.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Runs a campaign with the default worker count
/// ([`crate::parallel::default_threads`]).
pub fn run_campaign(spec: &CampaignSpec) -> Result<CampaignResult, CampaignError> {
    run_campaign_with_threads(spec, default_threads())
}

/// Evaluates one cell (offline or stream, per the spec's arrival axis)
/// into `out`. The shared dispatch of the batch executor and the serve
/// shards.
pub fn evaluate_any_cell_into(
    spec: &CampaignSpec,
    plan: &CellPlan,
    index: usize,
    ctx: &mut CellContext,
    out: &mut Vec<(SeriesKey, f64)>,
) -> Result<(), CampaignError> {
    let coord = spec.coord(index);
    if spec.arrivals.is_some() {
        evaluate_stream_cell_into(spec, plan, &coord, ctx, out)
    } else {
        let inst = instance_from_seed(spec, &coord, plan.cell_seed(spec, &coord));
        evaluate_cell_into(spec, plan, &coord, &inst, ctx, out)
    }
}

/// Runs a campaign with an explicit worker count. Cells fan out through
/// [`parallel_map_with`] with one [`CellContext`] per deterministic
/// chunk; results are bit-identical at any `threads`. Any cell failure
/// (unreachable for validated specs) aborts the campaign with the first
/// failing cell's error, in cell order.
pub fn run_campaign_with_threads(
    spec: &CampaignSpec,
    threads: usize,
) -> Result<CampaignResult, CampaignError> {
    spec.validate().map_err(CampaignError::InvalidSpec)?;
    let plan = CellPlan::new(spec);
    let n = spec.num_cells();
    let cells: Vec<Result<Vec<(SeriesKey, f64)>, CampaignError>> =
        parallel_map_with(n, threads, CellContext::new, |ctx, i| {
            let mut out = Vec::new();
            evaluate_any_cell_into(spec, &plan, i, ctx, &mut out).map(|()| out)
        });
    let mut agg = Aggregator::new(spec.num_groups());
    for (i, cell) in cells.into_iter().enumerate() {
        agg.push_cell(spec.group_index(&spec.coord(i)), &cell?);
    }
    Ok(agg.finalize(spec, &plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::UniformFailures;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            id: "tiny".into(),
            workloads: vec![WorkloadSpec::PaperLayered(LayeredRange {
                tasks_lo: 20,
                tasks_hi: 25,
            })],
            platforms: vec![PlatformSpec::paper(6, 0.6), PlatformSpec::paper(6, 1.4)],
            epsilons: vec![1],
            algorithms: vec![Algorithm::Ftsa, Algorithm::McFtsaGreedy],
            extra_algorithms: vec![],
            repetitions: 3,
            seed: 7,
            seeding: Seeding::Indexed,
            arrivals: None,
            measures: MeasurePlan {
                fault_free: vec![Algorithm::Ftsa],
                overhead: true,
                failures: vec![
                    FailureModel::Epsilon,
                    FailureModel::Uniform(UniformFailures { crashes: 0 }),
                ],
                messages: vec![Algorithm::Ftsa, Algorithm::McFtsaGreedy],
                ..Default::default()
            },
        }
    }

    #[test]
    fn percentiles_use_nearest_rank_semantics() {
        // Golden pins for the nearest-rank rule `sorted[round((n-1)*q)]`
        // (round = half away from zero). Every emitted p50/p90 column
        // flows through this function, so these values are part of the
        // CSV/JSON byte-compatibility surface.
        let ten: Vec<f64> = (1..=10).map(f64::from).collect();
        assert_eq!(percentile(&ten, 0.5), 6.0); // round(4.5) = 5
        assert_eq!(percentile(&ten, 0.9), 9.0); // round(8.1) = 8
        let five: Vec<f64> = (1..=5).map(f64::from).collect();
        assert_eq!(percentile(&five, 0.5), 3.0);
        assert_eq!(percentile(&five, 0.9), 5.0); // round(3.6) = 4
        let two = [1.0, 2.0];
        assert_eq!(percentile(&two, 0.5), 2.0); // round(0.5) = 1
        assert_eq!(percentile(&two, 0.9), 2.0);
        assert_eq!(percentile(&[42.0], 0.5), 42.0);
        assert_eq!(percentile(&[42.0], 0.9), 42.0);
    }

    #[test]
    fn aggregator_statistics_match_golden_values() {
        // End-to-end through push_cell/finalize: observations arrive
        // unsorted, one per cell, exactly as the executor streams them.
        let spec = tiny_spec();
        let plan = CellPlan::new(&spec);
        let mut agg = Aggregator::new(spec.num_groups());
        for v in [7.0, 1.0, 9.0, 3.0, 5.0, 10.0, 2.0, 8.0, 6.0, 4.0] {
            agg.push_cell(0, &[(SeriesKey::Messages(0), v)]);
        }
        let res = agg.finalize(&spec, &plan);
        let s = &res.groups[0].series[0];
        assert_eq!(s.name, "Messages: FTSA");
        assert_eq!(s.count, 10);
        assert_eq!(s.mean, 5.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10.0);
        assert_eq!(s.p50, 6.0);
        assert_eq!(s.p90, 9.0);
        // Untouched groups render as empty series lists, not errors.
        assert!(res.groups[1].series.is_empty());
    }

    #[test]
    fn coord_round_trips() {
        let spec = tiny_spec();
        for i in 0..spec.num_cells() {
            let c = spec.coord(i);
            assert_eq!(spec.cell_index(&c), i);
            assert!(spec.group_index(&c) < spec.num_groups());
        }
    }

    #[test]
    fn tiny_campaign_produces_expected_series() {
        let spec = tiny_spec();
        let res = run_campaign_with_threads(&spec, 2).unwrap();
        assert_eq!(res.groups.len(), 2);
        for g in &res.groups {
            for name in [
                "FTSA-LowerBound",
                "FTSA-UpperBound",
                "MC-FTSA-LowerBound",
                "FaultFree-FTSA",
                "FTSA with 1 Crash",
                "FTSA with 0 Crash",
                "MC-FTSA with 1 Crash",
                "Overhead: FTSA with 1 Crash",
                "Messages: FTSA",
                "Messages: MC-FTSA",
            ] {
                assert!(g.mean(name).is_some(), "missing series {name}");
            }
            // Structural sanity: bounds ordered, stats coherent.
            assert!(g.mean("FTSA-LowerBound") <= g.mean("FTSA-UpperBound"));
            for s in &g.series {
                assert_eq!(s.count, spec.repetitions);
                assert!(s.min <= s.p50 && s.p50 <= s.max);
                assert!(s.min <= s.mean + 1e-12 && s.mean <= s.max + 1e-12);
            }
        }
    }

    #[test]
    fn campaign_bit_identical_across_thread_counts() {
        let spec = tiny_spec();
        let a = run_campaign_with_threads(&spec, 1).unwrap();
        let b = run_campaign_with_threads(&spec, 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn extras_do_not_disturb_primary_series_and_skip_duplicates() {
        let base = tiny_spec();
        let mut ext = base.clone();
        ext.extra_algorithms = vec![
            Algorithm::FtsaPressure,
            Algorithm::Ftsa, // duplicate of a primary: skipped
            Algorithm::FtbarMatched,
        ];
        let a = run_campaign_with_threads(&base, 2).unwrap();
        let b = run_campaign_with_threads(&ext, 2).unwrap();
        for (ga, gb) in a.groups.iter().zip(&b.groups) {
            for s in &ga.series {
                let other = gb.mean(&s.name).unwrap();
                assert_eq!(other.to_bits(), s.mean.to_bits(), "series {}", s.name);
            }
            for name in ["P-FTSA-LowerBound", "MC-FTBAR with 1 Crash"] {
                assert!(gb.mean(name).is_some(), "missing extra series {name}");
            }
            // The duplicate Ftsa extra must not have produced a second
            // FTSA series (counts would double).
            let ftsa = gb.series.iter().filter(|s| s.name == "FTSA-LowerBound");
            assert_eq!(ftsa.count(), 1);
        }
    }

    #[test]
    fn structured_workload_axis_runs_end_to_end() {
        let mut spec = tiny_spec();
        spec.workloads = vec![
            WorkloadSpec::Structured(StructuredWorkload {
                kernel: StructuredKernel::Wavefront,
                size: 4,
            }),
            WorkloadSpec::Structured(StructuredWorkload {
                kernel: StructuredKernel::MapReduce,
                size: 5,
            }),
        ];
        spec.platforms = vec![PlatformSpec::paper(5, 1.0)];
        let res = run_campaign_with_threads(&spec, 2).unwrap();
        assert_eq!(res.groups.len(), 2);
        assert_eq!(res.groups[0].workload, "wavefront[4]");
        for g in &res.groups {
            assert!(g.mean("FTSA with 1 Crash").unwrap().is_finite());
        }
    }

    #[test]
    fn timed_failure_axis_mid_execution_crashes() {
        let mut spec = tiny_spec();
        spec.measures.failures = vec![
            FailureModel::Epsilon,
            FailureModel::Timed(platform::TimedFailures {
                crashes: 1,
                horizon: 5.0,
            }),
        ];
        spec.measures.overhead = false;
        let res = run_campaign_with_threads(&spec, 2).unwrap();
        for g in &res.groups {
            let timed = g.mean("FTSA with 1 Crash in [0,5]").unwrap();
            assert!(timed.is_finite() && timed > 0.0);
        }
    }

    #[test]
    fn duplicate_failure_labels_are_skipped_not_doubled() {
        // Epsilon and Uniform{crashes: ε} render the same "{ε} Crash"
        // label; the duplicate must be skipped (one series, one draw),
        // not emitted twice under one name.
        let mut spec = tiny_spec();
        spec.measures.failures = vec![
            FailureModel::Epsilon,
            FailureModel::Uniform(UniformFailures { crashes: 1 }),
            FailureModel::Uniform(UniformFailures { crashes: 2 }),
        ];
        let plan = CellPlan::new(&spec);
        assert_eq!(plan.failure_skip, vec![vec![false, true, false]]);
        let res = run_campaign_with_threads(&spec, 2).unwrap();
        for g in &res.groups {
            let crash_1 = g.series.iter().filter(|s| s.name == "FTSA with 1 Crash");
            assert_eq!(crash_1.count(), 1);
            let s = g
                .series
                .iter()
                .find(|s| s.name == "FTSA with 1 Crash")
                .unwrap();
            assert_eq!(s.count, spec.repetitions, "no doubled observations");
            assert!(g.mean("FTSA with 2 Crash").is_some());
        }
    }

    #[test]
    fn unscaled_paper_workload_skips_the_granularity_rescale() {
        // granularity <= 0 and ccr <= 0 means "natural costs" for every
        // workload family, including PaperLayered — it must not be
        // silently coerced to a g = 1.0 rescale.
        let mut unscaled = tiny_spec();
        unscaled.platforms = vec![PlatformSpec {
            granularity: 0.0,
            ..PlatformSpec::paper(6, 0.0)
        }];
        let mut scaled = unscaled.clone();
        scaled.platforms[0].granularity = 1.0;
        let coord = CellCoord {
            workload: 0,
            platform: 0,
            eps: 0,
            rep: 0,
        };
        let a = instance_for_cell(&unscaled, &coord);
        let b = instance_for_cell(&scaled, &coord);
        // Same graph and platform draw (identical RNG consumption)…
        assert_eq!(a.num_tasks(), b.num_tasks());
        assert_eq!(
            a.platform.delay(0, 1).to_bits(),
            b.platform.delay(0, 1).to_bits()
        );
        // …but the execution times differ: one matrix was rescaled.
        let g_a = platform::granularity::granularity(&a.dag, &a.platform, &a.exec).unwrap();
        let g_b = platform::granularity::granularity(&b.dag, &b.platform, &b.exec).unwrap();
        assert!((g_b - 1.0).abs() < 1e-9, "scaled instance hits g = 1.0");
        assert!(
            (g_a - 1.0).abs() > 1e-6,
            "unscaled instance keeps natural costs"
        );
        // And the unscaled spec still runs end to end.
        let res = run_campaign_with_threads(&unscaled, 2).unwrap();
        assert!(res.groups[0].mean("FTSA-LowerBound").is_some());
    }

    fn stream_spec() -> CampaignSpec {
        use simulator::streaming::{ArrivalProcess, PoissonArrivals};
        let mut spec = tiny_spec();
        spec.id = "tiny-stream".into();
        spec.platforms = vec![PlatformSpec::paper(6, 1.0)];
        spec.repetitions = 2;
        spec.arrivals = Some(ArrivalSpec {
            process: ArrivalProcess::Poisson(PoissonArrivals {
                rate: 0.01,
                count: 4,
            }),
            deadline_stretch: 6.0,
            failures: FailureModel::Uniform(UniformFailures { crashes: 1 }),
        });
        spec.measures = MeasurePlan {
            bounds: false,
            normalize: false,
            ..Default::default()
        };
        spec
    }

    #[test]
    fn stream_campaign_produces_stream_series() {
        let spec = stream_spec();
        let res = run_campaign_with_threads(&spec, 2).unwrap();
        assert_eq!(res.groups.len(), 1);
        let g = &res.groups[0];
        for alg in ["FTSA", "MC-FTSA"] {
            for series in [
                "Stream Response",
                "Stream Latency",
                "Stream Wait",
                "Stream DeadlineMiss",
                "Stream Completed",
            ] {
                let name = format!("{series}: {alg}");
                let mean = g.mean(&name).unwrap_or_else(|| panic!("missing {name}"));
                assert!(mean.is_finite(), "{name} = {mean}");
            }
            // ε = 1 tolerates the single time-0 crash: every DAG
            // completes, and response ≥ wait + 0 ≥ 0.
            assert_eq!(g.mean(&format!("Stream Completed: {alg}")), Some(1.0));
            assert!(g.mean(&format!("Stream Response: {alg}")).unwrap() > 0.0);
            assert!(g.mean(&format!("Stream Wait: {alg}")).unwrap() >= 0.0);
        }
        // No offline series leak into stream cells.
        assert!(g.mean("FTSA-LowerBound").is_none());
    }

    #[test]
    fn stream_campaign_bit_identical_across_thread_counts() {
        let spec = stream_spec();
        let a = run_campaign_with_threads(&spec, 1).unwrap();
        let b = run_campaign_with_threads(&spec, 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn timed_relative_failure_axis_scales_with_the_reference() {
        // A fraction-of-M* horizon must resolve per cell: the series
        // exists, is finite, and the label carries the fraction.
        let mut spec = tiny_spec();
        spec.measures.overhead = false;
        spec.measures.failures = vec![
            FailureModel::Epsilon,
            FailureModel::TimedRelative(platform::TimedRelativeFailures {
                crashes: 1,
                fraction: 0.5,
            }),
        ];
        let res = run_campaign_with_threads(&spec, 2).unwrap();
        for g in &res.groups {
            let timed = g.mean("FTSA with 1 Crash in [0,0.5*Mstar]").unwrap();
            assert!(timed.is_finite() && timed > 0.0);
        }
    }

    #[test]
    fn result_serde_round_trips() {
        let spec = tiny_spec();
        let res = run_campaign_with_threads(&spec, 2).unwrap();
        let json = serde_json::to_string(&res).unwrap();
        let back: CampaignResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, res);
    }
}
