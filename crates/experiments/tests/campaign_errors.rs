//! Regression suite for the typed campaign error surface.
//!
//! Every test here pins a spot that used to `panic!`/`expect` inside the
//! executor. The contract since the panic-proofing pass: a spec that
//! passes [`CampaignSpec::validate`] can never hit these paths, and a
//! direct library caller that bypasses validation gets a typed
//! [`CampaignError`] instead of a process abort. The serve front door
//! relies on this — a malformed request must produce a 4xx, never a
//! worker panic.

use experiments::campaign::{
    evaluate_any_cell_into, evaluate_stream_cell_into, run_campaign_with_threads, ArrivalSpec,
    CampaignError, CampaignSpec, CellContext, CellPlan, LayeredRange, MeasurePlan, PlatformSpec,
    Seeding, TaskCount, WorkloadSpec,
};
use ftsched_core::Algorithm;
use platform::{FailureModel, UniformFailures};
use simulator::streaming::{ArrivalProcess, PoissonArrivals};

/// A minimal offline spec that passes validation.
fn valid_spec() -> CampaignSpec {
    CampaignSpec {
        id: "errs".into(),
        workloads: vec![WorkloadSpec::PaperLayered(LayeredRange {
            tasks_lo: 15,
            tasks_hi: 20,
        })],
        platforms: vec![PlatformSpec::paper(5, 0.8)],
        epsilons: vec![1],
        algorithms: vec![Algorithm::Ftsa],
        extra_algorithms: vec![],
        repetitions: 2,
        seed: 11,
        seeding: Seeding::Indexed,
        arrivals: None,
        measures: MeasurePlan::default(),
    }
}

/// The same spec with an ε no 5-processor platform can serve. It fails
/// `validate()`; the tests below feed it to the executor entry points
/// directly, the way a buggy caller (or a pre-hardening serve handler)
/// would have.
fn unschedulable_spec() -> CampaignSpec {
    let mut spec = valid_spec();
    spec.epsilons = vec![10];
    assert!(spec.validate().is_err(), "spec must bypass validation");
    spec
}

#[test]
fn schedule_failure_is_a_typed_error() {
    // Former panic site: the `panic!("{e}")` on a scheduler failure in
    // `evaluate_cell_into` (campaign executor phase 1).
    let spec = unschedulable_spec();
    let plan = CellPlan::new(&spec);
    let mut ctx = CellContext::new();
    let mut out = Vec::new();
    let err = evaluate_any_cell_into(&spec, &plan, 0, &mut ctx, &mut out)
        .expect_err("ε = 10 on 5 processors cannot schedule");
    match &err {
        CampaignError::Schedule {
            campaign,
            algorithm,
            epsilon,
            procs,
            ..
        } => {
            assert_eq!(campaign, "errs");
            assert_eq!(*algorithm, Algorithm::Ftsa.name());
            assert_eq!(*epsilon, 10);
            assert_eq!(*procs, 5);
        }
        other => panic!("expected Schedule error, got {other}"),
    }
    // The error chain keeps the scheduler's own diagnosis.
    assert!(std::error::Error::source(&err).is_some());
    assert!(err.to_string().contains("eps 10"), "{err}");
}

#[test]
fn stream_schedule_failure_is_a_typed_error() {
    // Former panic site: the `unwrap_or_else(|e| panic!(..))` around
    // `run_stream_into` in `evaluate_stream_cell_into`.
    let mut spec = unschedulable_spec();
    spec.measures = MeasurePlan {
        bounds: false,
        normalize: false,
        ..Default::default()
    };
    spec.arrivals = Some(ArrivalSpec {
        process: ArrivalProcess::Poisson(PoissonArrivals {
            rate: 0.01,
            count: 3,
        }),
        deadline_stretch: 3.0,
        failures: FailureModel::Uniform(UniformFailures { crashes: 0 }),
    });
    let plan = CellPlan::new(&spec);
    let mut ctx = CellContext::new();
    let mut out = Vec::new();
    let err = evaluate_any_cell_into(&spec, &plan, 0, &mut ctx, &mut out)
        .expect_err("streamed ε = 10 on 5 processors cannot schedule");
    match &err {
        CampaignError::Stream {
            campaign,
            epsilon,
            procs,
            ..
        } => {
            assert_eq!(campaign, "errs");
            assert_eq!(*epsilon, 10);
            assert_eq!(*procs, 5);
        }
        other => panic!("expected Stream error, got {other}"),
    }
    assert!(err.to_string().contains("stream"), "{err}");
}

#[test]
fn missing_arrivals_is_a_typed_error() {
    // Former panic site: the `.expect("stream cells need an arrival
    // spec")` at the top of `evaluate_stream_cell_into`.
    let spec = valid_spec();
    let plan = CellPlan::new(&spec);
    let mut ctx = CellContext::new();
    let mut out = Vec::new();
    let err = evaluate_stream_cell_into(&spec, &plan, &spec.coord(0), &mut ctx, &mut out)
        .expect_err("offline spec has no arrivals");
    assert!(
        matches!(&err, CampaignError::MissingArrivals { campaign } if campaign == "errs"),
        "expected MissingArrivals, got {err}"
    );
}

#[test]
fn missing_series_lookup_is_a_typed_error() {
    // Former panic path: drivers `.expect(..)`-ing a series mean out of
    // a group. `require_mean` now carries the full lookup coordinates.
    let spec = valid_spec();
    let res = run_campaign_with_threads(&spec, 1).unwrap();
    let g = &res.groups[0];
    assert!(g.require_mean("FTSA-LowerBound").is_ok());
    let err = g
        .require_mean("No Such Series")
        .expect_err("series is absent");
    match &err {
        CampaignError::MissingSeries { series, .. } => assert_eq!(series, "No Such Series"),
        other => panic!("expected MissingSeries, got {other}"),
    }
    assert!(err.to_string().contains("No Such Series"), "{err}");
}

#[test]
fn run_campaign_validates_up_front() {
    // The engine front door re-checks the spec, so the executor paths
    // above are structurally unreachable through it.
    let err = run_campaign_with_threads(&unschedulable_spec(), 1)
        .expect_err("invalid spec must be rejected before any cell runs");
    assert!(
        matches!(err, CampaignError::InvalidSpec(_)),
        "expected InvalidSpec, got {err}"
    );
    assert!(err.to_string().contains("processors"), "{err}");
}

#[test]
fn validate_rejects_every_panic_feeding_shape() {
    // Workload hardening: shapes whose generators would abort mid-grid.
    let mut inverted = valid_spec();
    inverted.workloads = vec![WorkloadSpec::PaperLayered(LayeredRange {
        tasks_lo: 30,
        tasks_hi: 20,
    })];
    assert!(inverted.validate().unwrap_err().contains("exceeds"));

    let mut zero = valid_spec();
    zero.workloads = vec![WorkloadSpec::Layered(TaskCount { tasks: 0 })];
    assert!(zero.validate().unwrap_err().contains("at least one task"));

    let mut zero_lo = valid_spec();
    zero_lo.workloads = vec![WorkloadSpec::PaperLayered(LayeredRange {
        tasks_lo: 0,
        tasks_hi: 5,
    })];
    assert!(zero_lo.validate().is_err());

    // Platform hardening: non-finite axis values.
    for patch in [
        (|p: &mut PlatformSpec| p.granularity = f64::NAN) as fn(&mut PlatformSpec),
        |p| p.ccr = f64::INFINITY,
        |p| p.heterogeneity = f64::NAN,
        |p| p.heterogeneity = -1.0,
    ] {
        let mut bad = valid_spec();
        patch(&mut bad.platforms[0]);
        assert!(
            bad.validate().is_err(),
            "non-finite platform field must be rejected"
        );
    }
}
