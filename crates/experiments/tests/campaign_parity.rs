//! Bit-for-bit parity of the campaign presets against the pre-campaign
//! bespoke drivers.
//!
//! The `frozen` module below is a verbatim copy of the figure / Table 1 /
//! contention / reliability evaluation code as it existed before the
//! campaign engine replaced it (allocating `schedule()` / `simulate()`
//! calls, hand-rolled seed derivations, per-driver aggregation). It is
//! the *reference implementation* these tests compare against: the
//! campaign presets must reproduce every deterministic series **bit for
//! bit** at the same seeds. Do not "modernize" this module — its whole
//! value is that it does not share code with the engine under test.

use experiments::figures::{run_figure_with_threads, FigureConfig};
use experiments::table1::{run_table1_with_threads, Table1Config};

/// Frozen pre-campaign reference implementations (see the file docs).
mod frozen {
    use experiments::mean;
    use ftsched_core::{ftbar::ftbar, ftsa::ftsa, mc_ftsa, schedule, Algorithm, Schedule};
    use platform::gen::{paper_instance, PaperInstanceConfig};
    use platform::{FailureScenario, Instance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use simulator::contention::{simulate_contention, PortModel};
    use simulator::reliability::{design_point_probability, survival_probability_exact};
    use simulator::simulate;
    use std::collections::BTreeMap;

    pub fn normalization(inst: &Instance) -> f64 {
        let e = inst.dag.num_edges();
        if e == 0 {
            return 1.0;
        }
        let d = inst.platform.average_delay();
        let total: f64 = inst.dag.edge_list().map(|(_, _, _, v)| v * d).sum();
        (total / e as f64).max(f64::MIN_POSITIVE)
    }

    fn crash_latency(inst: &Instance, sched: &Schedule, crashes: usize, rng: &mut StdRng) -> f64 {
        let scen = if crashes == 0 {
            FailureScenario::none()
        } else {
            FailureScenario::uniform(rng, inst.num_procs(), crashes)
        };
        simulate(inst, sched, &scen).latency
    }

    pub fn run_cell(
        cfg: &super::FigureConfig,
        granularity: f64,
        rep: usize,
    ) -> BTreeMap<String, f64> {
        let cell_seed = cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((granularity * 1e6) as u64)
            .wrapping_add(rep as u64);
        let mut gen_rng = StdRng::seed_from_u64(cell_seed);
        let inst = paper_instance(
            &mut gen_rng,
            &PaperInstanceConfig {
                procs: cfg.procs,
                granularity,
                ..Default::default()
            },
        );
        let norm = normalization(&inst);
        let eps = cfg.epsilon;

        let mut tie = StdRng::seed_from_u64(cell_seed ^ 0xA5A5);
        let ftsa_s = ftsa(&inst, eps, &mut tie).expect("enough processors");
        let ff_ftsa = ftsa(&inst, 0, &mut tie).expect("enough processors");

        let mut out = BTreeMap::new();
        let nl = |x: f64| x / norm;
        out.insert("FTSA-LowerBound".into(), nl(ftsa_s.latency_lower_bound()));
        out.insert("FTSA-UpperBound".into(), nl(ftsa_s.latency_upper_bound()));
        out.insert("FaultFree-FTSA".into(), nl(ff_ftsa.latency_lower_bound()));

        let ftsa_star = ff_ftsa.latency_lower_bound();
        let ov = |x: f64| (x - ftsa_star) / ftsa_star * 100.0;

        let mut crash_rng = StdRng::seed_from_u64(cell_seed ^ 0xC4A5);
        let l_ftsa_crash = crash_latency(&inst, &ftsa_s, eps, &mut crash_rng);
        out.insert(format!("FTSA with {eps} Crash"), nl(l_ftsa_crash));
        out.insert(format!("Overhead: FTSA with {eps} Crash"), ov(l_ftsa_crash));
        let l_ftsa_0 = crash_latency(&inst, &ftsa_s, 0, &mut crash_rng);
        out.insert("FTSA with 0 Crash".into(), nl(l_ftsa_0));
        out.insert("Overhead: FTSA with 0 Crash".into(), ov(l_ftsa_0));
        for &k in &cfg.extra_crash_counts {
            let l = crash_latency(&inst, &ftsa_s, k, &mut crash_rng);
            out.insert(format!("FTSA with {k} Crash"), nl(l));
            out.insert(format!("Overhead: FTSA with {k} Crash"), ov(l));
        }

        if cfg.compare_algorithms {
            let mc_s = mc_ftsa::mc_ftsa(&inst, eps, mc_ftsa::Selector::Greedy, &mut tie)
                .expect("enough processors");
            let ftbar_s = ftbar(&inst, eps, &mut tie).expect("enough processors");
            let ff_ftbar = ftbar(&inst, 0, &mut tie).expect("enough processors");

            out.insert("MC-FTSA-LowerBound".into(), nl(mc_s.latency_lower_bound()));
            out.insert("MC-FTSA-UpperBound".into(), nl(mc_s.latency_upper_bound()));
            out.insert("FTBAR-LowerBound".into(), nl(ftbar_s.latency_lower_bound()));
            out.insert("FTBAR-UpperBound".into(), nl(ftbar_s.latency_upper_bound()));
            out.insert("FaultFree-FTBAR".into(), nl(ff_ftbar.latency_lower_bound()));

            let mut crash_rng2 = StdRng::seed_from_u64(cell_seed ^ 0xC4A5);
            let scen = if eps == 0 {
                FailureScenario::none()
            } else {
                FailureScenario::uniform(&mut crash_rng2, inst.num_procs(), eps)
            };
            let l_mc = simulate(&inst, &mc_s, &scen).latency;
            let l_fb = simulate(&inst, &ftbar_s, &scen).latency;
            out.insert(format!("MC-FTSA with {eps} Crash"), nl(l_mc));
            out.insert(format!("Overhead: MC-FTSA with {eps} Crash"), ov(l_mc));
            out.insert(format!("FTBAR with {eps} Crash"), nl(l_fb));
            out.insert(format!("Overhead: FTBAR with {eps} Crash"), ov(l_fb));

            out.insert(
                "Messages: FTSA".into(),
                ftsa_s.message_count(&inst.dag) as f64,
            );
            out.insert(
                "Messages: MC-FTSA".into(),
                mc_s.message_count(&inst.dag) as f64,
            );
        }

        for (ai, &alg) in cfg.extra_algorithms.iter().enumerate() {
            let name = alg.name();
            if out.contains_key(&format!("{name}-LowerBound")) {
                continue;
            }
            let mut tie2 = StdRng::seed_from_u64(cell_seed ^ (0xA1_6000 + ai as u64));
            let s = schedule(&inst, eps, alg, &mut tie2).expect("enough processors");
            out.insert(format!("{name}-LowerBound"), nl(s.latency_lower_bound()));
            out.insert(format!("{name}-UpperBound"), nl(s.latency_upper_bound()));
            let mut crash_rng3 = StdRng::seed_from_u64(cell_seed ^ 0xC4A5);
            let scen = if eps == 0 {
                FailureScenario::none()
            } else {
                FailureScenario::uniform(&mut crash_rng3, inst.num_procs(), eps)
            };
            let l = simulate(&inst, &s, &scen).latency;
            out.insert(format!("{name} with {eps} Crash"), nl(l));
            out.insert(format!("Overhead: {name} with {eps} Crash"), ov(l));
            out.insert(
                format!("Messages: {name}"),
                s.message_count(&inst.dag) as f64,
            );
        }

        out
    }

    /// The frozen figure aggregation: mean per series per granularity, in
    /// cell order.
    pub fn run_figure(cfg: &super::FigureConfig) -> Vec<(f64, BTreeMap<String, f64>)> {
        let cells: Vec<(f64, usize)> = cfg
            .granularities
            .iter()
            .flat_map(|&g| (0..cfg.repetitions).map(move |r| (g, r)))
            .collect();
        let raw: Vec<(f64, BTreeMap<String, f64>)> = cells
            .iter()
            .map(|&(g, r)| (g, run_cell(cfg, g, r)))
            .collect();
        let mut points = Vec::new();
        for &g in &cfg.granularities {
            let mut acc: BTreeMap<String, Vec<f64>> = BTreeMap::new();
            for (_, cell) in raw.iter().filter(|(gg, _)| (gg - g).abs() < 1e-12) {
                for (k, v) in cell {
                    acc.entry(k.clone()).or_default().push(*v);
                }
            }
            let series = acc.into_iter().map(|(k, vs)| (k, mean(&vs))).collect();
            points.push((g, series));
        }
        points
    }

    pub struct FrozenTable1Row {
        pub tasks: usize,
        pub ftsa_latency: f64,
        pub mc_ftsa_latency: f64,
        pub ftbar_latency: Option<f64>,
        pub extra: Vec<(String, f64)>,
    }

    /// The frozen Table 1 row evaluation, deterministic columns only.
    pub fn run_table1_row(cfg: &super::Table1Config, v: usize) -> FrozenTable1Row {
        let mut gen_rng = StdRng::seed_from_u64(cfg.seed ^ v as u64);
        let inst = paper_instance(
            &mut gen_rng,
            &PaperInstanceConfig {
                tasks_lo: v,
                tasks_hi: v,
                procs: cfg.procs,
                granularity: 1.0,
                ..Default::default()
            },
        );
        let ftsa_latency = {
            let mut r = StdRng::seed_from_u64(cfg.seed);
            ftsa(&inst, cfg.epsilon, &mut r)
                .expect("schedulable")
                .latency_lower_bound()
        };
        let mc_ftsa_latency = {
            let mut r = StdRng::seed_from_u64(cfg.seed);
            mc_ftsa::mc_ftsa(&inst, cfg.epsilon, mc_ftsa::Selector::Greedy, &mut r)
                .expect("schedulable")
                .latency_lower_bound()
        };
        let ftbar_latency = (v <= cfg.ftbar_size_cap).then(|| {
            let mut r = StdRng::seed_from_u64(cfg.seed);
            ftbar(&inst, cfg.epsilon, &mut r)
                .expect("schedulable")
                .latency_lower_bound()
        });
        let extra = cfg
            .extra_algorithms
            .iter()
            .map(|&alg| {
                let mut r = StdRng::seed_from_u64(cfg.seed);
                let s = schedule(&inst, cfg.epsilon, alg, &mut r).expect("schedulable");
                (alg.name().to_string(), s.latency_lower_bound())
            })
            .collect();
        FrozenTable1Row {
            tasks: v,
            ftsa_latency,
            mc_ftsa_latency,
            ftbar_latency,
            extra,
        }
    }

    pub struct FrozenContentionRow {
        pub epsilon: usize,
        pub ftsa_penalty: f64,
        pub mc_penalty: f64,
        pub ftsa_transfers: f64,
        pub mc_transfers: f64,
    }

    /// The frozen contention sweep (sequential; cell values are
    /// thread-invariant).
    pub fn run_contention(
        epsilons: &[usize],
        repetitions: usize,
        granularity: f64,
        seed: u64,
    ) -> Vec<FrozenContentionRow> {
        epsilons
            .iter()
            .map(|&eps| {
                let cells: Vec<(f64, f64, f64, f64)> = (0..repetitions)
                    .map(|rep| {
                        let cell_seed = seed ^ (eps as u64) << 32 | rep as u64;
                        let mut g = StdRng::seed_from_u64(cell_seed);
                        let inst = paper_instance(
                            &mut g,
                            &PaperInstanceConfig {
                                granularity,
                                ..Default::default()
                            },
                        );
                        let mut tie = StdRng::seed_from_u64(cell_seed ^ 0xBEEF);
                        let f = schedule(&inst, eps, Algorithm::Ftsa, &mut tie).unwrap();
                        let mc = schedule(&inst, eps, Algorithm::McFtsaGreedy, &mut tie).unwrap();
                        let measure = |s: &Schedule| {
                            let unb = simulate_contention(
                                &inst,
                                s,
                                &FailureScenario::none(),
                                PortModel::Unbounded,
                            );
                            let one = simulate_contention(
                                &inst,
                                s,
                                &FailureScenario::none(),
                                PortModel::OnePort,
                            );
                            (one.latency / unb.latency, one.transfers as f64)
                        };
                        let (fp, ft) = measure(&f);
                        let (mp, mt) = measure(&mc);
                        (fp, mp, ft, mt)
                    })
                    .collect();
                FrozenContentionRow {
                    epsilon: eps,
                    ftsa_penalty: mean(&cells.iter().map(|c| c.0).collect::<Vec<_>>()),
                    mc_penalty: mean(&cells.iter().map(|c| c.1).collect::<Vec<_>>()),
                    ftsa_transfers: mean(&cells.iter().map(|c| c.2).collect::<Vec<_>>()),
                    mc_transfers: mean(&cells.iter().map(|c| c.3).collect::<Vec<_>>()),
                }
            })
            .collect()
    }

    pub struct FrozenReliabilityRow {
        pub epsilon: usize,
        pub p: f64,
        pub survival: f64,
        pub design_point: f64,
    }

    /// The frozen reliability sweep.
    pub fn run_reliability(
        epsilons: &[usize],
        probabilities: &[f64],
        procs: usize,
        seed: u64,
    ) -> Vec<FrozenReliabilityRow> {
        let mut g = StdRng::seed_from_u64(seed);
        let inst = paper_instance(
            &mut g,
            &PaperInstanceConfig {
                tasks_lo: 60,
                tasks_hi: 60,
                procs,
                granularity: 1.0,
                ..Default::default()
            },
        );
        let mut rows = Vec::new();
        for &eps in epsilons {
            let mut tie = StdRng::seed_from_u64(seed ^ eps as u64);
            let sched = schedule(&inst, eps, Algorithm::Ftsa, &mut tie).unwrap();
            for &p in probabilities {
                rows.push(FrozenReliabilityRow {
                    epsilon: eps,
                    p,
                    survival: survival_probability_exact(&inst, &sched, p),
                    design_point: design_point_probability(procs, eps, p),
                });
            }
        }
        rows
    }
}

fn assert_figure_matches_frozen(cfg: &FigureConfig) {
    let reference = frozen::run_figure(cfg);
    let campaign = run_figure_with_threads(cfg, 2).unwrap();
    assert_eq!(campaign.points.len(), reference.len());
    for (point, (g, series)) in campaign.points.iter().zip(reference.iter()) {
        assert!((point.granularity - g).abs() < 1e-12);
        assert_eq!(
            point.series.len(),
            series.len(),
            "series set differs at g = {g}: campaign {:?} vs frozen {:?}",
            point.series.keys().collect::<Vec<_>>(),
            series.keys().collect::<Vec<_>>()
        );
        for (name, &value) in series {
            let got = point.series[name];
            assert_eq!(
                got.to_bits(),
                value.to_bits(),
                "series `{name}` at g = {g}: campaign {got} vs frozen {value}"
            );
        }
    }
}

#[test]
fn figure_presets_match_frozen_drivers_bit_for_bit() {
    // ε = 1 (fig1 shape), ε = 2 with the extra 1-crash series (fig2
    // shape) and the ε = 5 shape, at a reduced grid for test time — the
    // seeding/stream structure is identical to the full presets.
    // ε = 0 pins the degenerate case where the frozen driver inserted
    // "FTSA with 0 Crash" twice under one BTreeMap key (identical
    // values) and the campaign engine skips the duplicate label.
    for (eps, grans) in [
        (0usize, vec![0.6]),
        (1, vec![0.2, 1.0, 2.0]),
        (2, vec![0.4, 1.6]),
        (5, vec![0.8]),
    ] {
        let cfg = FigureConfig {
            granularities: grans,
            repetitions: 2,
            ..FigureConfig::comparison(&format!("parity-eps{eps}"), eps, 2)
        };
        assert_figure_matches_frozen(&cfg);
    }
}

#[test]
fn fig4_small_platform_matches_frozen_driver() {
    let cfg = FigureConfig {
        granularities: vec![0.2, 1.2, 2.0],
        repetitions: 2,
        ..FigureConfig::small_platform(2)
    };
    assert_figure_matches_frozen(&cfg);
}

#[test]
fn figure_extra_algorithms_match_frozen_driver() {
    let mut cfg = FigureConfig {
        granularities: vec![0.6, 1.8],
        repetitions: 2,
        ..FigureConfig::comparison("parity-extra", 1, 2)
    };
    // Includes a duplicate (Ftsa) to pin the skip-with-advancing-index
    // behaviour of the frozen driver.
    cfg.extra_algorithms = vec![
        ftsched_core::Algorithm::FtsaPressure,
        ftsched_core::Algorithm::Ftsa,
        ftsched_core::Algorithm::FtbarMatched,
    ];
    assert_figure_matches_frozen(&cfg);
}

#[test]
fn table1_preset_matches_frozen_latency_columns() {
    let cfg = Table1Config {
        sizes: vec![60, 120, 200],
        procs: 10,
        epsilon: 1,
        ftbar_size_cap: 120,
        extra_algorithms: vec![
            ftsched_core::Algorithm::FtsaPressure,
            ftsched_core::Algorithm::FtbarMatched,
        ],
        seed: 0x7AB1E1,
    };
    let rows = run_table1_with_threads(&cfg, 1).unwrap();
    assert_eq!(rows.len(), cfg.sizes.len());
    for (row, &v) in rows.iter().zip(&cfg.sizes) {
        let reference = frozen::run_table1_row(&cfg, v);
        assert_eq!(row.tasks, reference.tasks);
        assert_eq!(
            row.ftsa_latency.to_bits(),
            reference.ftsa_latency.to_bits(),
            "FTSA latency at v = {v}"
        );
        assert_eq!(
            row.mc_ftsa_latency.to_bits(),
            reference.mc_ftsa_latency.to_bits(),
            "MC-FTSA latency at v = {v}"
        );
        assert_eq!(
            row.ftbar_latency.map(f64::to_bits),
            reference.ftbar_latency.map(f64::to_bits),
            "FTBAR latency/cap at v = {v}"
        );
        // Wall-clock columns are machine-dependent; pin presence only.
        assert!(row.ftsa_secs >= 0.0 && row.mc_ftsa_secs >= 0.0);
        assert_eq!(row.ftbar_secs.is_some(), reference.ftbar_latency.is_some());
        assert_eq!(row.extra.len(), reference.extra.len());
        for ((name, secs, latency), (ref_name, ref_latency)) in
            row.extra.iter().zip(&reference.extra)
        {
            assert_eq!(name, ref_name);
            assert!(*secs >= 0.0);
            assert_eq!(latency.to_bits(), ref_latency.to_bits());
        }
    }
}

#[test]
fn contention_preset_matches_frozen_driver() {
    let epsilons = [1usize, 2];
    let rows = experiments::extensions::run_contention(&epsilons, 3, 0.4, 0xC0417).unwrap();
    let reference = frozen::run_contention(&epsilons, 3, 0.4, 0xC0417);
    assert_eq!(rows.len(), reference.len());
    for (row, rf) in rows.iter().zip(&reference) {
        assert_eq!(row.epsilon, rf.epsilon);
        assert_eq!(row.ftsa_penalty.to_bits(), rf.ftsa_penalty.to_bits());
        assert_eq!(row.mc_penalty.to_bits(), rf.mc_penalty.to_bits());
        assert_eq!(row.ftsa_transfers.to_bits(), rf.ftsa_transfers.to_bits());
        assert_eq!(row.mc_transfers.to_bits(), rf.mc_transfers.to_bits());
    }
}

#[test]
fn reliability_preset_matches_frozen_driver() {
    let rows = experiments::extensions::run_reliability(&[0, 2], &[0.1, 0.4], 8, 0x8E11).unwrap();
    let reference = frozen::run_reliability(&[0, 2], &[0.1, 0.4], 8, 0x8E11);
    assert_eq!(rows.len(), reference.len());
    for (row, rf) in rows.iter().zip(&reference) {
        assert_eq!(row.epsilon, rf.epsilon);
        assert_eq!(row.p.to_bits(), rf.p.to_bits());
        assert_eq!(row.survival.to_bits(), rf.survival.to_bits());
        assert_eq!(row.design_point.to_bits(), rf.design_point.to_bits());
    }
}

#[test]
fn full_preset_specs_run_at_reduced_scale() {
    // The actual named presets execute end to end at tiny repetition
    // counts; their figure conversions are exercised by the tests above.
    for name in ["fig1", "fig4", "contention", "reliability", "ci-smoke"] {
        let spec = experiments::campaign::presets::preset(name, Some(1)).unwrap();
        let mut spec = spec;
        // Shrink the heavyweight grids so the whole suite stays fast.
        if name.starts_with("fig") {
            spec.platforms.truncate(2);
        }
        if name == "contention" {
            spec.epsilons.truncate(1);
        }
        let res = experiments::campaign::run_campaign_with_threads(&spec, 2)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(res.groups.len(), spec.num_groups());
        assert!(res.groups.iter().all(|g| !g.series.is_empty()));
    }
}
