//! Durability properties of `experiments::store` — the invariants the
//! crash-exact resume contract rests on:
//!
//! * recovery after truncating a WAL at **any** byte never replays a
//!   group twice or skips one: the recovered prefix is exactly groups
//!   `0..k`, and resuming appends `k..n` so every group appears once;
//! * a corrupted frame (bit flip) condemns the tail, never a valid
//!   prefix;
//! * the run-record state machine recovers as specified: `running`
//!   demotes to `resumable`, verified `completed` replays, tampered
//!   `completed` demotes instead of serving wrong bytes;
//! * recovery is idempotent — a second scan of the same directory sees
//!   the same state.

use experiments::store::{fnv1a, key_hex, wal, Fingerprint, RunState, Store, WalWriter};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static UNIQUE: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory per test case (proptest runs many cases,
/// so a per-test name is not enough).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ftsched_store_suite_{name}_{}_{}",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn payloads(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("group-{i}-{}", "x".repeat(i % 7)))
        .collect()
}

fn write_wal(path: &std::path::Path, groups: &[String]) {
    let mut w = WalWriter::create(path).expect("create wal");
    for g in groups {
        w.append(g.as_bytes()).expect("append");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncate a WAL at a random byte offset, recover, resume: every
    /// group is replayed or re-appended exactly once, in order.
    #[test]
    fn truncation_never_duplicates_or_skips_groups(
        n in 1usize..8,
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = scratch("truncate");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.wal");
        let groups = payloads(n);
        write_wal(&path, &groups);

        // Cut the file at an arbitrary byte offset.
        let full = fs::metadata(&path).unwrap().len();
        let cut = (full as f64 * cut_frac) as u64;
        let file = fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        // Recovery: the valid prefix is exactly groups 0..k.
        let contents = wal::read(&path).unwrap();
        let k = contents.groups.len();
        prop_assert!(k <= n);
        prop_assert_eq!(&contents.groups[..], &groups[..k], "prefix must be exact");
        wal::truncate_to(&path, contents.valid_len).unwrap();

        // Resume: append the missing range; re-read sees each group
        // exactly once, in order.
        let mut w = WalWriter::open_at(&path, k).unwrap();
        prop_assert_eq!(w.next_group(), k);
        for g in &groups[k..] {
            w.append(g.as_bytes()).unwrap();
        }
        let recovered = wal::read(&path).unwrap();
        prop_assert_eq!(recovered.groups, groups);
        prop_assert!(!recovered.truncated_tail);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Flip one byte anywhere past the magic: the valid prefix never
    /// contains a corrupted frame, and always is a frame-aligned run of
    /// leading groups.
    #[test]
    fn bit_flip_is_always_caught(
        n in 1usize..6,
        flip_frac in 0.0f64..1.0,
        mask in 1u8..=255,
    ) {
        let dir = scratch("flip");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.wal");
        let groups = payloads(n);
        write_wal(&path, &groups);

        let mut bytes = fs::read(&path).unwrap();
        let lo = wal::MAGIC.len();
        let pos = lo + ((bytes.len() - lo - 1) as f64 * flip_frac) as usize;
        bytes[pos] ^= mask;
        fs::write(&path, &bytes).unwrap();

        let contents = wal::read(&path).unwrap();
        let k = contents.groups.len();
        prop_assert!(k < n, "the flipped frame (or one after it) must be dropped");
        prop_assert_eq!(&contents.groups[..], &groups[..k]);
        prop_assert!(contents.truncated_tail);
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn recovery_is_idempotent_and_preserves_resumable_progress() {
    let dir = scratch("idempotent");
    let store = Store::open(&dir).unwrap();
    let key = 0x42;
    let groups = payloads(4);
    let mut w = store
        .begin_run(key, "demo", "{\"id\": \"demo\"}", 4)
        .unwrap();
    w.append(groups[0].as_bytes()).unwrap();
    w.append(groups[1].as_bytes()).unwrap();
    drop(w); // simulated crash: record still `running`

    let first = store.recover().unwrap();
    assert_eq!(first.len(), 1);
    assert_eq!(first[0].record.state, RunState::Resumable);
    assert_eq!(first[0].groups_done, 2);

    // A second recovery pass (second restart) sees identical state.
    let second = store.recover().unwrap();
    assert_eq!(second[0].record, first[0].record);
    assert_eq!(second[0].groups_done, 2);

    // Resume replays exactly the durable prefix and finishes the run.
    let (replayed, mut w) = store.resume_run(key).unwrap();
    assert_eq!(replayed, &groups[..2]);
    w.append(groups[2].as_bytes()).unwrap();
    w.append(groups[3].as_bytes()).unwrap();
    let mut fp = Fingerprint::new();
    for g in &groups {
        fp.push_group(g);
    }
    store.complete_run(key, fp.finish()).unwrap();

    let done = store.recover().unwrap();
    assert_eq!(done[0].record.state, RunState::Completed);
    assert_eq!(done[0].groups, groups);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn tampered_completed_run_is_demoted_not_served() {
    let dir = scratch("tampered");
    let store = Store::open(&dir).unwrap();
    let key = 0x77;
    let groups = payloads(3);
    let mut w = store.begin_run(key, "demo", "{}", 3).unwrap();
    for g in &groups {
        w.append(g.as_bytes()).unwrap();
    }
    let mut fp = Fingerprint::new();
    for g in &groups {
        fp.push_group(g);
    }
    store.complete_run(key, fp.finish()).unwrap();

    // Corrupt the last WAL frame behind the store's back.
    let wal_path = store.wal_path(key);
    let mut bytes = fs::read(&wal_path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    fs::write(&wal_path, &bytes).unwrap();

    let runs = store.recover().unwrap();
    assert_eq!(
        runs[0].record.state,
        RunState::Resumable,
        "a completed record whose WAL fails verification must recompute"
    );
    assert_eq!(runs[0].record.fingerprint, None);
    assert_eq!(runs[0].groups_done, 2, "only the verified prefix survives");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn unparseable_record_is_a_loud_recovery_error() {
    let dir = scratch("loud");
    let store = Store::open(&dir).unwrap();
    fs::write(dir.join(format!("{}.run.json", key_hex(3))), b"{broken").unwrap();
    let err = store.recover().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fnv1a_matches_reference_vectors() {
    // Standard FNV-1a 64-bit test vectors.
    assert_eq!(fnv1a([]), 0xcbf2_9ce4_8422_2325);
    assert_eq!(fnv1a(b"a".iter().copied()), 0xaf63_dc4c_8601_ec8c);
    assert_eq!(fnv1a(b"foobar".iter().copied()), 0x8594_4171_f739_67e8);
}
