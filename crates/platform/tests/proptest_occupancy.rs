//! Property tests for [`platform::OccupancyTimeline`] — the structural
//! invariants the streaming driver leans on (see the module docs in
//! `platform::occupancy`):
//!
//! * live busy intervals stay **sorted and pairwise disjoint** per
//!   processor under any legal operation sequence;
//! * every release floor is **monotone non-decreasing** across
//!   `insert` / `advance` / `release_until` (only `reset` may lower it);
//! * `release_until` retires history without changing floors or the
//!   surviving intervals;
//! * a timeline that never saw work is empty, and `reset` restores
//!   exactly that state.

use platform::OccupancyTimeline;
use proptest::prelude::*;

/// One randomized operation: `(selector, a, b)` with payloads drawn from
/// a bounded time range. `a`/`b` are interpreted per operation.
type Op = (u8, f64, f64);

fn apply(occ: &mut OccupancyTimeline, op: &Op, j: usize) {
    let (sel, a, b) = *op;
    match sel % 4 {
        // Legal insert: start at or after the current floor.
        0 => {
            let start = occ.release_floor(j) + a;
            occ.insert(j, start, start + b);
        }
        1 => occ.advance(a),
        2 => occ.release_until(a),
        _ => {
            // Zero-length span: floor bump without a recorded interval.
            let start = occ.release_floor(j) + a;
            occ.insert(j, start, start);
        }
    }
}

fn assert_sorted_disjoint(occ: &OccupancyTimeline) {
    for j in 0..occ.num_procs() {
        let iv = occ.busy_intervals(j);
        for w in iv.windows(2) {
            assert!(
                w[0].end <= w[1].start,
                "P{j}: intervals overlap or are unsorted: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
        for span in iv {
            assert!(span.start <= span.end && span.start.is_finite());
            assert!(
                span.end <= occ.release_floor(j),
                "P{j}: interval {:?} past the floor {}",
                span,
                occ.release_floor(j)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn intervals_stay_disjoint_and_floors_monotone(
        m in 1usize..6,
        ops in proptest::collection::vec((0u8..4, 0.0f64..40.0, 0.0f64..25.0), 1..50),
    ) {
        let mut occ = OccupancyTimeline::new(m);
        for (i, op) in ops.iter().enumerate() {
            let j = i % m;
            let before: Vec<f64> = occ.floors().to_vec();
            apply(&mut occ, op, j);
            for (p, (&fb, &fa)) in before.iter().zip(occ.floors()).enumerate() {
                prop_assert!(fa >= fb, "P{p}: floor dropped {fb} -> {fa} on op {op:?}");
            }
            assert_sorted_disjoint(&occ);
            prop_assert!(occ.busy_time(j) >= 0.0);
        }
    }

    #[test]
    fn release_preserves_floors_and_survivors(
        m in 1usize..5,
        ops in proptest::collection::vec((0u8..2, 0.0f64..10.0, 0.1f64..15.0), 1..30),
        cut in 0.0f64..200.0,
    ) {
        // Build purely with inserts/advances, then release once and
        // compare against the model: floors unchanged, surviving
        // intervals exactly those ending after the cut.
        let mut occ = OccupancyTimeline::new(m);
        for (i, op) in ops.iter().enumerate() {
            apply(&mut occ, op, i % m);
        }
        let floors: Vec<f64> = occ.floors().to_vec();
        let expected: Vec<Vec<_>> = (0..m)
            .map(|j| {
                occ.busy_intervals(j)
                    .iter()
                    .copied()
                    .filter(|iv| iv.end > cut)
                    .collect()
            })
            .collect();
        occ.release_until(cut);
        prop_assert_eq!(occ.floors(), &floors[..]);
        for (j, exp) in expected.iter().enumerate() {
            prop_assert_eq!(occ.busy_intervals(j), &exp[..], "P{}", j);
        }
        // Releasing again at the same cut is idempotent.
        occ.release_until(cut);
        for (j, exp) in expected.iter().enumerate() {
            prop_assert_eq!(occ.busy_intervals(j), &exp[..], "P{} (repeat)", j);
        }
    }

    #[test]
    fn reset_always_restores_the_empty_state(
        m in 1usize..5,
        ops in proptest::collection::vec((0u8..4, 0.0f64..30.0, 0.0f64..20.0), 0..25),
    ) {
        let mut occ = OccupancyTimeline::new(m);
        prop_assert!(occ.is_empty(), "a fresh timeline is empty");
        for (i, op) in ops.iter().enumerate() {
            apply(&mut occ, op, i % m);
        }
        occ.reset();
        prop_assert!(occ.is_empty());
        prop_assert_eq!(occ.floors(), &vec![0.0; m][..]);
        for j in 0..m {
            prop_assert!(occ.busy_intervals(j).is_empty());
            prop_assert_eq!(occ.busy_time(j), 0.0);
        }
    }
}
