//! Random platform and instance generators matching the paper's
//! experimental setup (Section 6).

use crate::exec::ExecutionMatrix;
use crate::granularity::scale_to_granularity;
use crate::plat::Platform;
use crate::Instance;
use rand::Rng;
use taskgraph::generators::{layered, LayeredConfig};
use taskgraph::Dag;

/// Random fully connected platform with unit link delays drawn uniformly
/// in `[lo, hi]` — the paper uses `[0.5, 1]`. Delays are symmetric.
pub fn random_platform(rng: &mut impl Rng, m: usize, lo: f64, hi: f64) -> Platform {
    assert!(0.0 <= lo && lo <= hi && hi.is_finite());
    // Draw the upper triangle, mirror it.
    let mut d = vec![0.0; m * m];
    for k in 0..m {
        for h in (k + 1)..m {
            let x = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
            d[k * m + h] = x;
            d[h * m + k] = x;
        }
    }
    Platform::from_fn(m, |k, h| d[k * m + h])
}

/// Parameters of a paper-style random instance.
#[derive(Debug, Clone)]
pub struct PaperInstanceConfig {
    /// Inclusive range of the task count (paper: `[100, 150]`).
    pub tasks_lo: usize,
    /// Upper bound of the task count range.
    pub tasks_hi: usize,
    /// Number of processors (paper: 20, or 5 for Figure 4, 50 for Table 1).
    pub procs: usize,
    /// Target granularity (paper sweeps 0.2..=2.0 step 0.2).
    pub granularity: f64,
    /// Unrelated-machines heterogeneity spread for execution times.
    pub heterogeneity: f64,
}

impl Default for PaperInstanceConfig {
    fn default() -> Self {
        PaperInstanceConfig {
            tasks_lo: 100,
            tasks_hi: 150,
            procs: 20,
            granularity: 1.0,
            heterogeneity: 0.5,
        }
    }
}

/// Draws the paper's layered DAG alone: `U[tasks_lo, tasks_hi]` tasks,
/// `U[50, 150]` volumes. This is the first stage of [`paper_instance`]
/// (same RNG consumption), split out so graph-only callers reproduce
/// the campaign engine's instances at the same seed.
pub fn paper_dag(rng: &mut impl Rng, tasks_lo: usize, tasks_hi: usize) -> Dag {
    let tasks = if tasks_lo == tasks_hi {
        tasks_lo
    } else {
        rng.gen_range(tasks_lo..=tasks_hi)
    };
    layered(rng, &LayeredConfig::paper(tasks))
}

/// Draws one complete random instance per the paper's setup: layered DAG
/// with `U[tasks_lo, tasks_hi]` tasks and `U[50, 150]` volumes, symmetric
/// link delays `U[0.5, 1]`, unrelated execution times, all rescaled to hit
/// the target granularity exactly.
pub fn paper_instance(rng: &mut impl Rng, cfg: &PaperInstanceConfig) -> Instance {
    let dag = paper_dag(rng, cfg.tasks_lo, cfg.tasks_hi);
    let platform = random_platform(rng, cfg.procs, 0.5, 1.0);
    let mut exec = ExecutionMatrix::unrelated_with_procs(&dag, cfg.procs, rng, cfg.heterogeneity);
    scale_to_granularity(&dag, &platform, &mut exec, cfg.granularity);
    Instance::new(dag, platform, exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::granularity::granularity;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_platform_symmetric_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = random_platform(&mut rng, 10, 0.5, 1.0);
        for k in 0..10 {
            assert_eq!(p.delay(k, k), 0.0);
            for h in 0..10 {
                if k != h {
                    let d = p.delay(k, h);
                    assert!((0.5..=1.0).contains(&d));
                    assert_eq!(d, p.delay(h, k));
                }
            }
        }
    }

    #[test]
    fn paper_instance_matches_config() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = PaperInstanceConfig {
            granularity: 0.8,
            ..Default::default()
        };
        let inst = paper_instance(&mut rng, &cfg);
        assert!(inst.num_tasks() >= 100 && inst.num_tasks() <= 150);
        assert_eq!(inst.num_procs(), 20);
        let g = granularity(&inst.dag, &inst.platform, &inst.exec).unwrap();
        assert!((g - 0.8).abs() < 1e-9);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = PaperInstanceConfig::default();
        let a = paper_instance(&mut StdRng::seed_from_u64(3), &cfg);
        let b = paper_instance(&mut StdRng::seed_from_u64(3), &cfg);
        assert_eq!(a.num_tasks(), b.num_tasks());
        assert_eq!(a.exec.time(0, 0), b.exec.time(0, 0));
        assert_eq!(a.platform.delay(0, 1), b.platform.delay(0, 1));
    }

    #[test]
    fn fixed_task_count() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = PaperInstanceConfig {
            tasks_lo: 42,
            tasks_hi: 42,
            ..Default::default()
        };
        let inst = paper_instance(&mut rng, &cfg);
        assert_eq!(inst.num_tasks(), 42);
    }
}
