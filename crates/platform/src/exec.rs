//! The execution-time matrix `E(t, P)`.

use rand::Rng;
use serde::{Deserialize, Serialize};
use taskgraph::{Dag, TaskId};

/// The `v × m` matrix of task execution times: `E(t, P_j)` is the time
/// task `t` takes on processor `P_j`.
///
/// ```
/// use platform::ExecutionMatrix;
/// let e = ExecutionMatrix::from_fn(2, 3, |t, p| (t * 3 + p + 1) as f64);
/// assert_eq!(e.time(0, 2), 3.0);
/// assert_eq!(e.average(1), 5.0); // (4 + 5 + 6) / 3
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionMatrix {
    v: usize,
    m: usize,
    /// Row-major `v × m` execution times.
    times: Vec<f64>,
}

impl ExecutionMatrix {
    /// Builds a matrix from an explicit function of `(task, processor)`.
    pub fn from_fn(v: usize, m: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        assert!(m >= 1);
        let mut times = Vec::with_capacity(v * m);
        for t in 0..v {
            for p in 0..m {
                let x = f(t, p);
                assert!(x > 0.0 && x.is_finite(), "execution times must be positive");
                times.push(x);
            }
        }
        ExecutionMatrix { v, m, times }
    }

    /// *Consistent* (related-machines) heterogeneity: processor `j` has a
    /// speed `s_j`, and `E(t, j) = work(t) / s_j`.
    pub fn consistent(dag: &Dag, speeds: &[f64]) -> Self {
        assert!(!speeds.is_empty());
        assert!(speeds.iter().all(|&s| s > 0.0));
        Self::from_fn(dag.num_tasks(), speeds.len(), |t, p| {
            (dag.work(TaskId(t as u32)).max(f64::MIN_POSITIVE)) / speeds[p]
        })
    }

    /// *Unrelated-machines* heterogeneity over `m` processors, the
    /// paper's general model: each `(task, processor)` pair draws an
    /// independent factor in `[1 − spread, 1 + spread]` applied to the
    /// task's work.
    pub fn unrelated_with_procs(dag: &Dag, m: usize, rng: &mut impl Rng, spread: f64) -> Self {
        assert!((0.0..1.0).contains(&spread));
        assert!(m >= 1);
        let mut times = Vec::with_capacity(dag.num_tasks() * m);
        for t in dag.tasks() {
            let w = dag.work(t).max(f64::MIN_POSITIVE);
            for _ in 0..m {
                let factor = if spread == 0.0 {
                    1.0
                } else {
                    rng.gen_range((1.0 - spread)..=(1.0 + spread))
                };
                times.push(w * factor);
            }
        }
        ExecutionMatrix {
            v: dag.num_tasks(),
            m,
            times,
        }
    }

    /// Number of tasks (rows).
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.v
    }

    /// Number of processors (columns).
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.m
    }

    /// Execution time `E(t, P_j)`.
    #[inline]
    pub fn time(&self, task: usize, proc: usize) -> f64 {
        self.times[task * self.m + proc]
    }

    /// The contiguous per-processor row `E(t, ·)` of `task` — the
    /// scheduler's selection sweeps stream this instead of issuing `m`
    /// strided [`ExecutionMatrix::time`] lookups.
    #[inline]
    pub fn times_row(&self, task: usize) -> &[f64] {
        &self.times[task * self.m..(task + 1) * self.m]
    }

    /// Average execution time `Ē(t)` over all processors (used by the
    /// static bottom levels).
    pub fn average(&self, task: usize) -> f64 {
        let row = &self.times[task * self.m..(task + 1) * self.m];
        row.iter().sum::<f64>() / self.m as f64
    }

    /// Slowest execution time `max_j E(t, P_j)` (the granularity
    /// numerator).
    pub fn slowest(&self, task: usize) -> f64 {
        let row = &self.times[task * self.m..(task + 1) * self.m];
        row.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Fastest execution time `min_j E(t, P_j)`.
    pub fn fastest(&self, task: usize) -> f64 {
        let row = &self.times[task * self.m..(task + 1) * self.m];
        row.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Mean of `E(t, ·)` over the `count` *fastest processors overall*
    /// (smallest column means), per the Section 4.3 deadline computation.
    pub fn average_on_fastest_procs(&self, task: usize, count: usize) -> f64 {
        let procs = self.fastest_procs(count);
        procs.iter().map(|&p| self.time(task, p)).sum::<f64>() / procs.len() as f64
    }

    /// Indices of the `count` processors with the smallest column mean.
    pub fn fastest_procs(&self, count: usize) -> Vec<usize> {
        let count = count.clamp(1, self.m);
        let mut means: Vec<(f64, usize)> = (0..self.m)
            .map(|p| {
                let s: f64 = (0..self.v).map(|t| self.time(t, p)).sum();
                (s, p)
            })
            .collect();
        means.sort_by(|a, b| a.0.total_cmp(&b.0));
        means[..count].iter().map(|&(_, p)| p).collect()
    }

    /// Scales every entry by `factor` (granularity calibration).
    pub fn scale(&mut self, factor: f64) {
        assert!(factor > 0.0 && factor.is_finite());
        for x in &mut self.times {
            *x *= factor;
        }
    }

    /// Sum over tasks of the slowest execution time — the numerator of the
    /// paper's granularity.
    pub fn total_slowest(&self) -> f64 {
        (0..self.v).map(|t| self.slowest(t)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use taskgraph::DagBuilder;

    fn tiny_dag() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.add_task(10.0);
        let c = b.add_task(20.0);
        b.add_edge(a, c, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn consistent_machines() {
        let g = tiny_dag();
        let e = ExecutionMatrix::consistent(&g, &[1.0, 2.0]);
        assert_eq!(e.time(0, 0), 10.0);
        assert_eq!(e.time(0, 1), 5.0);
        assert_eq!(e.time(1, 0), 20.0);
        assert_eq!(e.average(1), 15.0);
        assert_eq!(e.slowest(1), 20.0);
        assert_eq!(e.fastest(1), 10.0);
    }

    #[test]
    fn unrelated_within_spread() {
        let g = tiny_dag();
        let mut rng = StdRng::seed_from_u64(5);
        let e = ExecutionMatrix::unrelated_with_procs(&g, 8, &mut rng, 0.5);
        for t in 0..2 {
            let w = g.work(taskgraph::TaskId(t as u32));
            for p in 0..8 {
                let x = e.time(t, p);
                assert!(x >= w * 0.5 - 1e-9 && x <= w * 1.5 + 1e-9);
            }
        }
    }

    #[test]
    fn zero_spread_is_homogeneous() {
        let g = tiny_dag();
        let mut rng = StdRng::seed_from_u64(5);
        let e = ExecutionMatrix::unrelated_with_procs(&g, 4, &mut rng, 0.0);
        for p in 0..4 {
            assert_eq!(e.time(0, p), 10.0);
        }
    }

    #[test]
    fn scale_multiplies_everything() {
        let g = tiny_dag();
        let mut e = ExecutionMatrix::consistent(&g, &[1.0, 1.0]);
        let before = e.total_slowest();
        e.scale(3.0);
        assert_eq!(e.total_slowest(), before * 3.0);
    }

    #[test]
    fn fastest_procs_orders_by_column_mean() {
        let e = ExecutionMatrix::from_fn(3, 3, |_, p| (p + 1) as f64);
        assert_eq!(e.fastest_procs(2), vec![0, 1]);
        assert_eq!(e.average_on_fastest_procs(0, 2), 1.5);
    }

    #[test]
    fn from_fn_dimensions() {
        let e = ExecutionMatrix::from_fn(4, 2, |t, p| (t + p + 1) as f64);
        assert_eq!(e.num_tasks(), 4);
        assert_eq!(e.num_procs(), 2);
    }

    #[test]
    #[should_panic]
    fn zero_time_rejected() {
        let _ = ExecutionMatrix::from_fn(1, 1, |_, _| 0.0);
    }
}
