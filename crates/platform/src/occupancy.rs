//! Persistent per-processor occupancy: busy intervals plus a
//! release-time floor that outlives a single schedule.
//!
//! The offline experiments schedule one DAG on an *empty* platform. The
//! streaming/online scenario family instead lands a sequence of DAGs on
//! processors that are already busy: each processor carries a
//! [`OccupancyTimeline`] floor — the earliest time a *new* replica may
//! start — plus the busy intervals behind it. The scheduler only needs
//! the floors (processors execute their queues in order, so new work is
//! appended after everything already planned); the intervals are kept
//! for accounting (utilization, release bookkeeping) and for the
//! structural invariants the proptest suite pins:
//!
//! * per-processor intervals are **sorted and pairwise disjoint** (they
//!   are appended at the tail, each starting at or after the floor);
//! * the release floor is **monotone non-decreasing** under every
//!   operation — [`insert`](OccupancyTimeline::insert) raises it to the
//!   interval end, [`advance`](OccupancyTimeline::advance) raises it to
//!   a global instant, and [`release_until`](OccupancyTimeline::release_until)
//!   only drops *recorded history*, never lowers a floor;
//! * an **empty timeline is behaviorally invisible**: floors of `0.0`
//!   reduce every occupancy-aware entry point to the single-DAG
//!   semantics bit for bit.
//!
//! All operations are allocation-free once the per-processor buffers are
//! warm ([`release_until`](OccupancyTimeline::release_until) retires a
//! prefix via a head cursor and compacts in place), so a long-running
//! stream reaches a zero-allocation steady state.

/// One contiguous busy span `[start, end)` on a processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusyInterval {
    /// Inclusive start of the busy span.
    pub start: f64,
    /// Exclusive end of the busy span.
    pub end: f64,
}

/// Per-processor busy intervals plus release-time floors; see the
/// [module docs](self) for the invariants.
#[derive(Debug, Clone, Default)]
pub struct OccupancyTimeline {
    /// Earliest start time for new work, per processor.
    release: Vec<f64>,
    /// Recorded busy intervals per processor, sorted, disjoint.
    intervals: Vec<Vec<BusyInterval>>,
    /// Per processor: number of leading intervals already released.
    head: Vec<usize>,
}

impl OccupancyTimeline {
    /// An empty timeline over `m` processors: all floors at `0.0`, no
    /// recorded intervals.
    pub fn new(m: usize) -> Self {
        OccupancyTimeline {
            release: vec![0.0; m],
            intervals: vec![Vec::new(); m],
            head: vec![0; m],
        }
    }

    /// Number of processors tracked.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.release.len()
    }

    /// `true` when the timeline is behaviorally invisible: every floor
    /// at `0.0` and no live intervals recorded.
    pub fn is_empty(&self) -> bool {
        self.release.iter().all(|&r| r == 0.0)
            && self
                .intervals
                .iter()
                .zip(&self.head)
                .all(|(iv, &h)| iv.len() == h)
    }

    /// The release floor of processor `j` — the earliest time a new
    /// replica may start there.
    #[inline]
    pub fn release_floor(&self, j: usize) -> f64 {
        self.release[j]
    }

    /// All release floors, indexed by processor.
    #[inline]
    pub fn floors(&self) -> &[f64] {
        &self.release
    }

    /// The live (not yet released) busy intervals of processor `j`,
    /// sorted and pairwise disjoint.
    pub fn busy_intervals(&self, j: usize) -> &[BusyInterval] {
        &self.intervals[j][self.head[j]..]
    }

    /// Total live busy time recorded on processor `j`.
    pub fn busy_time(&self, j: usize) -> f64 {
        self.busy_intervals(j)
            .iter()
            .map(|iv| iv.end - iv.start)
            .sum()
    }

    /// Records a busy span on processor `j` and raises its floor to
    /// `end`. Spans must be appended in order: `start` must be at or
    /// after the current floor (up to a small numerical slack), which is
    /// what keeps the interval list sorted and disjoint by construction.
    pub fn insert(&mut self, j: usize, start: f64, end: f64) {
        debug_assert!(
            start >= self.release[j] - 1e-9,
            "occupancy insert out of order on P{j}: start {start} < floor {}",
            self.release[j]
        );
        assert!(
            end >= start && start.is_finite() && end.is_finite(),
            "occupancy interval must be finite with end >= start"
        );
        if end > start {
            self.intervals[j].push(BusyInterval { start, end });
        }
        if end > self.release[j] {
            self.release[j] = end;
        }
    }

    /// Raises every floor to at least `t` (e.g. the arrival instant of a
    /// new DAG: nothing on its behalf can start earlier). Floors already
    /// past `t` are untouched — the floor never decreases.
    pub fn advance(&mut self, t: f64) {
        for r in &mut self.release {
            if *r < t {
                *r = t;
            }
        }
    }

    /// Releases recorded history: drops every interval ending at or
    /// before `t`. Floors are **not** lowered — release only retires
    /// bookkeeping for work that has drained, keeping memory bounded on
    /// an endless stream. Allocation-free: a head cursor retires the
    /// prefix and the buffer is compacted in place when the retired
    /// prefix dominates.
    pub fn release_until(&mut self, t: f64) {
        for j in 0..self.release.len() {
            let iv = &mut self.intervals[j];
            let mut h = self.head[j];
            while h < iv.len() && iv[h].end <= t {
                h += 1;
            }
            if h * 2 >= iv.len() && h > 0 {
                iv.copy_within(h.., 0);
                iv.truncate(iv.len() - h);
                h = 0;
            }
            self.head[j] = h;
        }
    }

    /// Resets to the empty state, keeping buffer capacity.
    pub fn reset(&mut self) {
        self.release.iter_mut().for_each(|r| *r = 0.0);
        self.intervals.iter_mut().for_each(Vec::clear);
        self.head.iter_mut().for_each(|h| *h = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_timeline_is_invisible() {
        let occ = OccupancyTimeline::new(4);
        assert!(occ.is_empty());
        assert_eq!(occ.num_procs(), 4);
        assert_eq!(occ.floors(), &[0.0; 4]);
        assert!(occ.busy_intervals(2).is_empty());
    }

    #[test]
    fn insert_raises_floor_and_keeps_intervals_sorted() {
        let mut occ = OccupancyTimeline::new(2);
        occ.insert(0, 0.0, 2.0);
        occ.insert(0, 2.5, 4.0);
        occ.insert(1, 1.0, 3.0);
        assert_eq!(occ.release_floor(0), 4.0);
        assert_eq!(occ.release_floor(1), 3.0);
        assert!(!occ.is_empty());
        let iv = occ.busy_intervals(0);
        assert_eq!(iv.len(), 2);
        assert!(iv[0].end <= iv[1].start);
        assert_eq!(occ.busy_time(0), 3.5);
    }

    #[test]
    fn zero_length_interval_not_recorded_but_floor_kept() {
        let mut occ = OccupancyTimeline::new(1);
        occ.insert(0, 5.0, 5.0);
        assert_eq!(occ.release_floor(0), 5.0);
        assert!(occ.busy_intervals(0).is_empty());
    }

    #[test]
    fn advance_is_monotone() {
        let mut occ = OccupancyTimeline::new(3);
        occ.insert(2, 0.0, 7.0);
        occ.advance(5.0);
        assert_eq!(occ.floors(), &[5.0, 5.0, 7.0]);
        occ.advance(2.0); // never lowers
        assert_eq!(occ.floors(), &[5.0, 5.0, 7.0]);
    }

    #[test]
    fn release_drops_history_without_lowering_floors() {
        let mut occ = OccupancyTimeline::new(1);
        occ.insert(0, 0.0, 1.0);
        occ.insert(0, 1.0, 2.0);
        occ.insert(0, 3.0, 4.0);
        occ.release_until(2.0);
        assert_eq!(occ.busy_intervals(0).len(), 1);
        assert_eq!(occ.release_floor(0), 4.0);
        occ.release_until(10.0);
        assert!(occ.busy_intervals(0).is_empty());
        assert_eq!(occ.release_floor(0), 4.0);
        assert!(!occ.is_empty(), "nonzero floors keep the timeline visible");
    }

    #[test]
    fn reset_restores_empty_state() {
        let mut occ = OccupancyTimeline::new(2);
        occ.insert(0, 0.0, 3.0);
        occ.advance(1.0);
        occ.reset();
        assert!(occ.is_empty());
        assert_eq!(occ.floors(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn insert_rejects_inverted_interval() {
        let mut occ = OccupancyTimeline::new(1);
        occ.insert(0, 2.0, 1.0);
    }
}
