//! The processor set and link-delay matrix.

use crate::failure::ProcId;
use serde::{Deserialize, Serialize};

/// A fully connected heterogeneous platform: `m` processors and the
/// unit-data link delay `d(P_k, P_h)` for every ordered pair, with
/// `d(P, P) = 0` (intra-processor communication is free).
///
/// ```
/// use platform::Platform;
/// let p = Platform::uniform_delay(3, 0.75);
/// assert_eq!(p.num_procs(), 3);
/// assert_eq!(p.delay(0, 1), 0.75);
/// assert_eq!(p.delay(2, 2), 0.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Platform {
    m: usize,
    /// Row-major `m × m` delay matrix; the diagonal is zero.
    delay: Vec<f64>,
}

impl Platform {
    /// Builds a platform from a delay function. The diagonal is forced to
    /// zero regardless of `f`.
    pub fn from_fn(m: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        assert!(m >= 1, "need at least one processor");
        let mut delay = vec![0.0; m * m];
        for k in 0..m {
            for h in 0..m {
                if k != h {
                    let d = f(k, h);
                    assert!(d >= 0.0 && d.is_finite(), "delays must be finite and >= 0");
                    delay[k * m + h] = d;
                }
            }
        }
        Platform { m, delay }
    }

    /// All links share one delay (a homogeneous network).
    pub fn uniform_delay(m: usize, d: f64) -> Self {
        Self::from_fn(m, |_, _| d)
    }

    /// Number of processors `m`.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.m
    }

    /// Unit-data delay `d(P_k, P_h)`.
    #[inline]
    pub fn delay(&self, k: usize, h: usize) -> f64 {
        self.delay[k * self.m + h]
    }

    /// Outgoing delay row `d(P_k, ·)` as a slice indexed by destination;
    /// lets hot loops stream one sender's delays without per-cell
    /// index arithmetic.
    #[inline]
    pub fn delay_row(&self, k: usize) -> &[f64] {
        &self.delay[k * self.m..(k + 1) * self.m]
    }

    /// Average delay `d̄` over ordered pairs of *distinct* processors;
    /// this is the `d` used for the static bottom levels. Zero when
    /// `m == 1`.
    pub fn average_delay(&self) -> f64 {
        if self.m <= 1 {
            return 0.0;
        }
        let sum: f64 = (0..self.m)
            .flat_map(|k| (0..self.m).map(move |h| (k, h)))
            .filter(|&(k, h)| k != h)
            .map(|(k, h)| self.delay(k, h))
            .sum();
        sum / (self.m * (self.m - 1)) as f64
    }

    /// Worst-case outgoing delay `max_j d(P_k, P_j)` — the pessimistic
    /// factor in the dynamic top level of FTSA.
    pub fn max_delay_from(&self, k: usize) -> f64 {
        (0..self.m).map(|h| self.delay(k, h)).fold(0.0, f64::max)
    }

    /// Mean delay of the `count` fastest (smallest-delay) inter-processor
    /// links, used by the deadline computation of Section 4.3.
    pub fn average_delay_fastest_links(&self, count: usize) -> f64 {
        if self.m <= 1 || count == 0 {
            return 0.0;
        }
        let mut ds: Vec<f64> = (0..self.m)
            .flat_map(|k| (0..self.m).map(move |h| (k, h)))
            .filter(|&(k, h)| k != h)
            .map(|(k, h)| self.delay(k, h))
            .collect();
        ds.sort_by(f64::total_cmp);
        let take = count.min(ds.len());
        ds[..take].iter().sum::<f64>() / take as f64
    }

    /// All processor ids.
    pub fn procs(&self) -> impl Iterator<Item = ProcId> + '_ {
        (0..self.m as u32).map(ProcId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_platform() {
        let p = Platform::uniform_delay(4, 0.5);
        assert_eq!(p.num_procs(), 4);
        for k in 0..4 {
            for h in 0..4 {
                let expect = if k == h { 0.0 } else { 0.5 };
                assert_eq!(p.delay(k, h), expect);
            }
        }
        assert_eq!(p.average_delay(), 0.5);
        assert_eq!(p.max_delay_from(2), 0.5);
    }

    #[test]
    fn from_fn_diagonal_forced_zero() {
        let p = Platform::from_fn(3, |k, h| (k + h) as f64);
        assert_eq!(p.delay(1, 1), 0.0);
        assert_eq!(p.delay(0, 2), 2.0);
        assert_eq!(p.delay(2, 0), 2.0);
    }

    #[test]
    fn asymmetric_delays_allowed() {
        let p = Platform::from_fn(2, |k, h| if k < h { 1.0 } else { 3.0 });
        assert_eq!(p.delay(0, 1), 1.0);
        assert_eq!(p.delay(1, 0), 3.0);
        assert_eq!(p.average_delay(), 2.0);
    }

    #[test]
    fn single_processor_degenerate() {
        let p = Platform::uniform_delay(1, 9.0);
        assert_eq!(p.average_delay(), 0.0);
        assert_eq!(p.max_delay_from(0), 0.0);
    }

    #[test]
    fn fastest_links_average() {
        // Delays: 1.0 both ways between (0,1); 5.0 elsewhere.
        let p = Platform::from_fn(3, |k, h| {
            if (k, h) == (0, 1) || (k, h) == (1, 0) {
                1.0
            } else {
                5.0
            }
        });
        assert_eq!(p.average_delay_fastest_links(2), 1.0);
        assert!((p.average_delay_fastest_links(3) - 7.0 / 3.0).abs() < 1e-12);
        // Larger count than links clamps.
        assert!(p.average_delay_fastest_links(100) > 0.0);
    }

    #[test]
    fn procs_iterator() {
        let p = Platform::uniform_delay(3, 1.0);
        let ids: Vec<_> = p.procs().collect();
        assert_eq!(ids.len(), 3);
        assert_eq!(ids[0].index(), 0);
    }
}
