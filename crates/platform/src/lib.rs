//! Heterogeneous platform model for fault-tolerant scheduling.
//!
//! Section 2 of the FTSA paper: a platform is a finite set
//! `P = {P_1, …, P_m}` of fully connected processors. Computational
//! heterogeneity is the function `E : V × P → R⁺` (execution time of each
//! task on each processor); communication heterogeneity is
//! `W(t_i, t_j) = V(t_i, t_j) · d(P_k, P_h)` where `d` is the unit-data
//! link delay and `d(P, P) = 0`.
//!
//! * [`Platform`] — the link-delay matrix `d` and its derived statistics
//!   (average delay `d̄`, worst-case outgoing delay, fastest links).
//! * [`ExecutionMatrix`] — the `E(t, P)` matrix, with consistent
//!   (speed-scaled) and unrelated (per-pair random) generators.
//! * [`FailureScenario`] — fail-stop failure patterns, with the paper's
//!   "ε processors chosen uniformly" generator.
//! * [`granularity`] — the paper's granularity `g(G, P)` and the scaling
//!   used to sweep it from 0.2 to 2.0 in the experiments.
//! * [`Instance`] — a bundled `(Dag, Platform, ExecutionMatrix)` problem
//!   instance, the input type of every scheduling algorithm.
//! * [`OccupancyTimeline`] — persistent per-processor busy intervals and
//!   release-time floors, the platform state that outlives a single
//!   schedule in the streaming/online scenarios. **Occupancy contract:**
//!   an empty timeline (all floors `0.0`) reduces every occupancy-aware
//!   entry point — `ftsched_core::schedule_onto`, the simulator's
//!   streaming driver — to the single-DAG semantics bit for bit; floors
//!   are monotone non-decreasing under insert/advance/release.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod failure;
pub mod gen;
pub mod granularity;
pub mod occupancy;
pub mod plat;

pub use exec::ExecutionMatrix;
pub use failure::{
    FailureModel, FailureScenario, ProcId, TimedFailures, TimedRelativeFailures, UniformFailures,
};
pub use occupancy::{BusyInterval, OccupancyTimeline};
pub use plat::Platform;

use taskgraph::Dag;

/// A complete scheduling problem instance: the task graph, the platform
/// and the execution-time matrix binding them.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The precedence task graph `G = (V, E)`.
    pub dag: Dag,
    /// The processor set and link delays.
    pub platform: Platform,
    /// The execution-time matrix `E(t, P)`.
    pub exec: ExecutionMatrix,
}

impl Instance {
    /// Bundles the three components, validating dimensions.
    pub fn new(dag: Dag, platform: Platform, exec: ExecutionMatrix) -> Self {
        assert_eq!(
            exec.num_tasks(),
            dag.num_tasks(),
            "execution matrix rows must match task count"
        );
        assert_eq!(
            exec.num_procs(),
            platform.num_procs(),
            "execution matrix columns must match processor count"
        );
        Instance {
            dag,
            platform,
            exec,
        }
    }

    /// Number of processors `m`.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.platform.num_procs()
    }

    /// Number of tasks `v`.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.dag.num_tasks()
    }
}
