//! The paper's granularity `g(G, P)` and its calibration.
//!
//! Section 2: "For a given graph `G` and processor set `P`, `g(G, P)` is
//! the granularity, i.e., the ratio of the sum of slowest computation
//! times of each task, to the sum of slowest communication times along
//! each edge. If `g(G, P) ≥ 1`, the task graph is said to be coarse
//! grain, otherwise it is fine grain."
//!
//! The experiments sweep `g` from 0.2 to 2.0: after drawing random
//! volumes, delays and raw execution times, [`scale_to_granularity`]
//! rescales the execution matrix so the instance hits the target exactly.

use crate::exec::ExecutionMatrix;
use crate::plat::Platform;
use taskgraph::Dag;

/// Sum over edges of the *slowest* communication time
/// `V(e) · max_{k≠h} d(P_k, P_h)`.
pub fn total_slowest_communication(dag: &Dag, platform: &Platform) -> f64 {
    let m = platform.num_procs();
    let max_delay = (0..m)
        .flat_map(|k| (0..m).map(move |h| (k, h)))
        .filter(|&(k, h)| k != h)
        .map(|(k, h)| platform.delay(k, h))
        .fold(0.0, f64::max);
    dag.total_volume() * max_delay
}

/// The granularity `g(G, P)`; `None` when the graph has no communication
/// at all (no edges, zero volumes, or a single processor), in which case
/// granularity is undefined (infinite).
pub fn granularity(dag: &Dag, platform: &Platform, exec: &ExecutionMatrix) -> Option<f64> {
    let comm = total_slowest_communication(dag, platform);
    if comm == 0.0 {
        None
    } else {
        Some(exec.total_slowest() / comm)
    }
}

/// Rescales `exec` in place so the instance's granularity becomes exactly
/// `target`. Returns the applied factor. Panics if granularity is
/// undefined (no communication) or `target` is not positive.
pub fn scale_to_granularity(
    dag: &Dag,
    platform: &Platform,
    exec: &mut ExecutionMatrix,
    target: f64,
) -> f64 {
    assert!(target > 0.0 && target.is_finite());
    let current = granularity(dag, platform, exec)
        .expect("granularity undefined: instance has no communication");
    let factor = target / current;
    exec.scale(factor);
    factor
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskgraph::DagBuilder;

    fn instance() -> (Dag, Platform, ExecutionMatrix) {
        let mut b = DagBuilder::new();
        let a = b.add_task(10.0);
        let c = b.add_task(10.0);
        b.add_edge(a, c, 100.0);
        let dag = b.build().unwrap();
        let platform = Platform::uniform_delay(2, 0.5);
        let exec = ExecutionMatrix::consistent(&dag, &[1.0, 2.0]);
        (dag, platform, exec)
    }

    #[test]
    fn granularity_formula() {
        let (dag, platform, exec) = instance();
        // Slowest computation: both tasks are slowest on proc 0 → 10+10.
        // Slowest communication: 100 * 0.5 = 50.
        assert_eq!(granularity(&dag, &platform, &exec), Some(0.4));
    }

    #[test]
    fn scaling_hits_target_exactly() {
        let (dag, platform, mut exec) = instance();
        for target in [0.2, 0.6, 1.0, 1.4, 2.0] {
            scale_to_granularity(&dag, &platform, &mut exec, target);
            let g = granularity(&dag, &platform, &exec).unwrap();
            assert!((g - target).abs() < 1e-9, "target {target}, got {g}");
        }
    }

    #[test]
    fn scaling_preserves_relative_speeds() {
        let (dag, platform, mut exec) = instance();
        let ratio_before = exec.time(0, 0) / exec.time(0, 1);
        scale_to_granularity(&dag, &platform, &mut exec, 1.5);
        let ratio_after = exec.time(0, 0) / exec.time(0, 1);
        assert!((ratio_before - ratio_after).abs() < 1e-12);
    }

    #[test]
    fn no_edges_means_undefined() {
        let mut b = DagBuilder::new();
        b.add_task(5.0);
        let dag = b.build().unwrap();
        let platform = Platform::uniform_delay(2, 1.0);
        let exec = ExecutionMatrix::consistent(&dag, &[1.0, 1.0]);
        assert_eq!(granularity(&dag, &platform, &exec), None);
    }

    #[test]
    fn single_processor_undefined() {
        let (dag, _, _) = instance();
        let platform = Platform::uniform_delay(1, 0.0);
        let exec = ExecutionMatrix::consistent(&dag, &[1.0]);
        assert_eq!(granularity(&dag, &platform, &exec), None);
    }
}
