//! Fail-stop failure scenarios.
//!
//! The paper assumes *fail-silent (fail-stop)* processor failures: a
//! failed processor computes nothing and sends nothing from its failure
//! time onwards, and never recovers. The experiments of Section 6 crash
//! `ε` processors "chosen uniformly" (from time 0); mid-execution crash
//! times are supported as an extension.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense identifier of a processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A set of fail-stop failures: each failed processor with its failure
/// time (time 0 = the processor never executes anything).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FailureScenario {
    failures: Vec<(ProcId, f64)>,
}

impl FailureScenario {
    /// The empty scenario (no failures).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds a scenario from explicit `(processor, time)` pairs.
    ///
    /// # Panics
    /// Panics on duplicate processors or negative/non-finite times.
    pub fn new(failures: Vec<(ProcId, f64)>) -> Self {
        let mut seen = std::collections::HashSet::new();
        for &(p, t) in &failures {
            assert!(seen.insert(p), "duplicate failure for {p}");
            assert!(
                t >= 0.0 && t.is_finite(),
                "failure time must be finite and >= 0"
            );
        }
        FailureScenario { failures }
    }

    /// All processors failing at time 0 — the paper's experimental model.
    pub fn at_time_zero(procs: impl IntoIterator<Item = ProcId>) -> Self {
        Self::new(procs.into_iter().map(|p| (p, 0.0)).collect())
    }

    /// Draws `count` distinct processors uniformly from `0..m`, all
    /// failing at time 0 ("processors that fail during the schedule
    /// process are chosen uniformly", Section 6). Delegates to
    /// [`FailureScenario::refill_uniform`], the single home of the
    /// partial Fisher–Yates draw.
    pub fn uniform(rng: &mut impl Rng, m: usize, count: usize) -> Self {
        let mut scenario = Self::none();
        let mut ids = Vec::new();
        scenario.refill_uniform(rng, m, count, &mut ids);
        scenario
    }

    /// Redraws this scenario in place — a partial Fisher–Yates for
    /// `count` distinct fail-at-time-zero processors, reusing `ids` as
    /// scratch. This is the allocation-free form the Monte-Carlo crash
    /// campaigns use between replications; [`FailureScenario::uniform`]
    /// is the owned convenience wrapper around it.
    pub fn refill_uniform(
        &mut self,
        rng: &mut impl Rng,
        m: usize,
        count: usize,
        ids: &mut Vec<u32>,
    ) {
        assert!(count <= m, "cannot fail more processors than exist");
        ids.clear();
        ids.extend(0..m as u32);
        for i in 0..count {
            let j = rng.gen_range(i..ids.len());
            ids.swap(i, j);
        }
        self.failures.clear();
        self.failures
            .extend(ids[..count].iter().map(|&i| (ProcId(i), 0.0)));
    }

    /// Empties the scenario in place (no failures), keeping capacity.
    pub fn clear(&mut self) {
        self.failures.clear();
    }

    /// Like [`FailureScenario::uniform`] but with failure times drawn
    /// uniformly in `[0, horizon]` — the mid-execution crash extension.
    /// Delegates to [`FailureScenario::refill_uniform_timed`], the single
    /// home of the timed draw.
    pub fn uniform_timed(rng: &mut impl Rng, m: usize, count: usize, horizon: f64) -> Self {
        let mut scenario = Self::none();
        let mut ids = Vec::new();
        scenario.refill_uniform_timed(rng, m, count, horizon, &mut ids);
        scenario
    }

    /// Redraws this scenario in place with `count` distinct processors
    /// (same partial Fisher–Yates as [`FailureScenario::refill_uniform`],
    /// so the *processor* draw is bit-identical at the same RNG state)
    /// and failure times drawn uniformly in `[0, horizon]`, one per
    /// chosen processor in draw order. `horizon == 0` degenerates to the
    /// fail-at-time-zero model without consuming any further randomness.
    /// Allocation-free once `ids` and the internal buffer have capacity.
    pub fn refill_uniform_timed(
        &mut self,
        rng: &mut impl Rng,
        m: usize,
        count: usize,
        horizon: f64,
        ids: &mut Vec<u32>,
    ) {
        assert!(count <= m, "cannot fail more processors than exist");
        assert!(
            horizon >= 0.0 && horizon.is_finite(),
            "failure horizon must be finite and >= 0"
        );
        ids.clear();
        ids.extend(0..m as u32);
        for i in 0..count {
            let j = rng.gen_range(i..ids.len());
            ids.swap(i, j);
        }
        self.failures.clear();
        for &i in &ids[..count] {
            let t = if horizon == 0.0 {
                0.0
            } else {
                rng.gen_range(0.0..=horizon)
            };
            self.failures.push((ProcId(i), t));
        }
    }

    /// Number of failures.
    #[inline]
    pub fn len(&self) -> usize {
        self.failures.len()
    }

    /// Whether no processor fails.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }

    /// The failure time of `p`, or `None` if `p` stays alive.
    pub fn failure_time(&self, p: ProcId) -> Option<f64> {
        self.failures
            .iter()
            .find(|&&(q, _)| q == p)
            .map(|&(_, t)| t)
    }

    /// Whether `p` fails (at any time) in this scenario.
    pub fn fails(&self, p: ProcId) -> bool {
        self.failure_time(p).is_some()
    }

    /// Iterates over `(processor, time)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcId, f64)> + '_ {
        self.failures.iter().copied()
    }
}

/// Crash count of a [`FailureModel::Uniform`] model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UniformFailures {
    /// Number of distinct processors failing at time 0.
    pub crashes: usize,
}

/// Parameters of a [`FailureModel::Timed`] model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedFailures {
    /// Number of distinct processors failing.
    pub crashes: usize,
    /// Failure times are drawn uniformly in `[0, horizon]`.
    pub horizon: f64,
}

/// Parameters of a [`FailureModel::TimedRelative`] model: the horizon is
/// a **fraction of a reference makespan** supplied at draw time
/// (typically the reference schedule's `M*`), so one spec point covers
/// instances of any scale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedRelativeFailures {
    /// Number of distinct processors failing.
    pub crashes: usize,
    /// Failure times are drawn uniformly in `[0, fraction · reference]`.
    pub fraction: f64,
}

/// A declarative failure-injection model: *how* scenarios are drawn, as
/// opposed to [`FailureScenario`], which is one concrete draw.
///
/// This is what lets failure injection be a campaign *axis* instead of a
/// hard-coded `FailureScenario::uniform` call at every experiment site:
/// a spec names the model, and [`FailureModel::sample_into`] turns it
/// into concrete scenarios at evaluation time.
///
/// Sampling guarantees (pinned by this module's tests):
///
/// * [`FailureModel::Epsilon`] / [`FailureModel::Uniform`] draws are
///   **bit-identical** to [`FailureScenario::refill_uniform`] at the
///   same RNG state — the paper's uniform fail-at-time-zero model;
/// * [`FailureModel::Timed`] draws are bit-identical to
///   [`FailureScenario::uniform_timed`]: failure times are finite and
///   within `[0, horizon]`;
/// * drawn processors are always pairwise distinct, and a model whose
///   crash count exceeds the processor count is rejected (panic at the
///   draw, `Err` from spec-level validation in the campaign layer).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FailureModel {
    /// No failures (the fault-free reference).
    None,
    /// `ε` distinct processors fail at time 0, where `ε` is the
    /// tolerated-failure count of the evaluation context (Section 6's
    /// "processors that fail are chosen uniformly").
    Epsilon,
    /// A fixed number of distinct processors fail at time 0.
    Uniform(UniformFailures),
    /// Mid-execution crashes: distinct processors with failure times
    /// drawn uniformly over a horizon, reusing [`FailureScenario`]'s
    /// positive-time support.
    Timed(TimedFailures),
    /// Mid-execution crashes over a horizon expressed as a fraction of a
    /// reference makespan resolved at draw time — drawable only through
    /// [`FailureModel::sample_into_scaled`].
    TimedRelative(TimedRelativeFailures),
}

impl FailureModel {
    /// The crash count this model draws, with `epsilon` resolving
    /// [`FailureModel::Epsilon`].
    pub fn crashes(&self, epsilon: usize) -> usize {
        match *self {
            FailureModel::None => 0,
            FailureModel::Epsilon => epsilon,
            FailureModel::Uniform(UniformFailures { crashes }) => crashes,
            FailureModel::Timed(TimedFailures { crashes, .. }) => crashes,
            FailureModel::TimedRelative(TimedRelativeFailures { crashes, .. }) => crashes,
        }
    }

    /// Whether this model can produce strictly positive failure times.
    pub fn is_timed(&self) -> bool {
        match self {
            FailureModel::Timed(TimedFailures { horizon, .. }) => *horizon > 0.0,
            FailureModel::TimedRelative(TimedRelativeFailures { fraction, .. }) => *fraction > 0.0,
            _ => false,
        }
    }

    /// Whether drawing from this model needs a reference makespan
    /// ([`FailureModel::sample_into_scaled`]'s extra argument).
    pub fn needs_reference(&self) -> bool {
        matches!(self, FailureModel::TimedRelative(_))
    }

    /// Draws one scenario from this model in place, reusing `ids` as
    /// scratch (allocation-free at capacity). A resolved crash count of
    /// zero clears the scenario without consuming any randomness —
    /// exactly the historical `if crashes == 0 { none() }` sites.
    ///
    /// # Panics
    /// Panics if the resolved crash count exceeds `m`, or if the model
    /// [`needs_reference`](FailureModel::needs_reference) (use
    /// [`FailureModel::sample_into_scaled`]).
    pub fn sample_into(
        &self,
        rng: &mut impl Rng,
        m: usize,
        epsilon: usize,
        scenario: &mut FailureScenario,
        ids: &mut Vec<u32>,
    ) {
        let count = self.crashes(epsilon);
        if count == 0 {
            scenario.clear();
            return;
        }
        match *self {
            FailureModel::None => unreachable!("count == 0 handled above"),
            FailureModel::Epsilon | FailureModel::Uniform(_) => {
                scenario.refill_uniform(rng, m, count, ids);
            }
            FailureModel::Timed(TimedFailures { horizon, .. }) => {
                scenario.refill_uniform_timed(rng, m, count, horizon, ids);
            }
            FailureModel::TimedRelative(_) => {
                panic!("TimedRelative draws need a reference makespan: use sample_into_scaled")
            }
        }
    }

    /// [`FailureModel::sample_into`] with a reference makespan resolving
    /// [`FailureModel::TimedRelative`] horizons (`fraction · reference`);
    /// every other model ignores `reference` and draws identically to
    /// `sample_into` — callers with a reference at hand can route all
    /// models through this method unconditionally.
    ///
    /// # Panics
    /// Panics if the resolved crash count exceeds `m`, or if a
    /// `TimedRelative` draw is asked to scale a non-finite or negative
    /// reference.
    pub fn sample_into_scaled(
        &self,
        rng: &mut impl Rng,
        m: usize,
        epsilon: usize,
        reference: f64,
        scenario: &mut FailureScenario,
        ids: &mut Vec<u32>,
    ) {
        match *self {
            FailureModel::TimedRelative(TimedRelativeFailures { crashes, fraction }) => {
                if crashes == 0 {
                    scenario.clear();
                    return;
                }
                assert!(
                    reference.is_finite() && reference >= 0.0,
                    "TimedRelative reference makespan must be finite and >= 0, got {reference}"
                );
                scenario.refill_uniform_timed(rng, m, crashes, fraction * reference, ids);
            }
            _ => self.sample_into(rng, m, epsilon, scenario, ids),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_scenario() {
        let s = FailureScenario::none();
        assert!(s.is_empty());
        assert!(!s.fails(ProcId(0)));
    }

    #[test]
    fn uniform_draws_distinct() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let s = FailureScenario::uniform(&mut rng, 20, 5);
            assert_eq!(s.len(), 5);
            let set: std::collections::HashSet<_> = s.iter().map(|(p, _)| p).collect();
            assert_eq!(set.len(), 5);
            assert!(s.iter().all(|(p, t)| p.index() < 20 && t == 0.0));
        }
    }

    #[test]
    fn uniform_all_processors() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = FailureScenario::uniform(&mut rng, 4, 4);
        assert_eq!(s.len(), 4);
        for p in 0..4 {
            assert!(s.fails(ProcId(p)));
        }
    }

    #[test]
    #[should_panic]
    fn too_many_failures_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = FailureScenario::uniform(&mut rng, 3, 4);
    }

    #[test]
    #[should_panic]
    fn duplicate_processor_panics() {
        let _ = FailureScenario::new(vec![(ProcId(1), 0.0), (ProcId(1), 5.0)]);
    }

    #[test]
    fn refill_uniform_matches_uniform_bit_for_bit() {
        let mut scratch = Vec::new();
        let mut scen = FailureScenario::none();
        for seed in 0..20u64 {
            let fresh = FailureScenario::uniform(&mut StdRng::seed_from_u64(seed), 12, 4);
            scen.refill_uniform(&mut StdRng::seed_from_u64(seed), 12, 4, &mut scratch);
            assert_eq!(scen, fresh, "seed {seed}");
        }
        scen.clear();
        assert!(scen.is_empty());
    }

    #[test]
    fn timed_failures_within_horizon() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = FailureScenario::uniform_timed(&mut rng, 10, 3, 100.0);
        for (_, t) in s.iter() {
            assert!((0.0..=100.0).contains(&t));
        }
    }

    #[test]
    fn failure_time_lookup() {
        let s = FailureScenario::new(vec![(ProcId(2), 7.5)]);
        assert_eq!(s.failure_time(ProcId(2)), Some(7.5));
        assert_eq!(s.failure_time(ProcId(3)), None);
    }

    #[test]
    fn refill_uniform_timed_matches_uniform_timed_bit_for_bit() {
        let mut scratch = Vec::new();
        let mut scen = FailureScenario::none();
        for seed in 0..20u64 {
            let fresh =
                FailureScenario::uniform_timed(&mut StdRng::seed_from_u64(seed), 12, 4, 37.5);
            scen.refill_uniform_timed(&mut StdRng::seed_from_u64(seed), 12, 4, 37.5, &mut scratch);
            assert_eq!(scen, fresh, "seed {seed}");
        }
    }

    #[test]
    fn model_uniform_draw_bit_identical_to_refill_uniform() {
        // Satellite contract: the declarative model's time-0 draw is the
        // *same* partial Fisher–Yates as `refill_uniform`, bit for bit.
        let mut scratch = Vec::new();
        for seed in 0..20u64 {
            for (model, count) in [
                (FailureModel::Uniform(UniformFailures { crashes: 3 }), 3),
                (FailureModel::Epsilon, 3),
            ] {
                let mut reference = FailureScenario::none();
                reference.refill_uniform(&mut StdRng::seed_from_u64(seed), 10, count, &mut scratch);
                let mut drawn = FailureScenario::none();
                model.sample_into(
                    &mut StdRng::seed_from_u64(seed),
                    10,
                    3,
                    &mut drawn,
                    &mut scratch,
                );
                assert_eq!(drawn, reference, "seed {seed} model {model:?}");
            }
        }
    }

    #[test]
    fn model_timed_draw_is_finite_in_horizon_and_distinct() {
        let model = FailureModel::Timed(TimedFailures {
            crashes: 4,
            horizon: 25.0,
        });
        let mut scratch = Vec::new();
        let mut scen = FailureScenario::none();
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            model.sample_into(&mut rng, 9, 1, &mut scen, &mut scratch);
            assert_eq!(scen.len(), 4);
            let procs: std::collections::HashSet<_> = scen.iter().map(|(p, _)| p).collect();
            assert_eq!(procs.len(), 4, "duplicate processor drawn (seed {seed})");
            for (p, t) in scen.iter() {
                assert!(p.index() < 9);
                assert!(t.is_finite() && (0.0..=25.0).contains(&t), "t = {t}");
            }
            // Bit-identical to the owned constructor at the same state.
            let fresh =
                FailureScenario::uniform_timed(&mut StdRng::seed_from_u64(seed), 9, 4, 25.0);
            assert_eq!(scen, fresh);
        }
    }

    #[test]
    fn model_zero_crashes_consumes_no_randomness() {
        let mut scratch = Vec::new();
        let mut scen = FailureScenario::none();
        let mut rng = StdRng::seed_from_u64(5);
        let before = rng.clone();
        FailureModel::None.sample_into(&mut rng, 8, 2, &mut scen, &mut scratch);
        assert!(scen.is_empty());
        FailureModel::Uniform(UniformFailures { crashes: 0 }).sample_into(
            &mut rng,
            8,
            2,
            &mut scen,
            &mut scratch,
        );
        assert!(scen.is_empty());
        FailureModel::Epsilon.sample_into(&mut rng, 8, 0, &mut scen, &mut scratch);
        assert!(scen.is_empty());
        // The generator state is untouched: next draws equal a clone's.
        let mut b = before;
        assert_eq!(rng.gen_range(0..1_000_000), b.gen_range(0..1_000_000));
    }

    #[test]
    fn timed_relative_scales_the_reference_makespan() {
        let model = FailureModel::TimedRelative(TimedRelativeFailures {
            crashes: 3,
            fraction: 0.5,
        });
        assert_eq!(model.crashes(9), 3);
        assert!(model.is_timed());
        assert!(model.needs_reference());
        assert!(!FailureModel::Epsilon.needs_reference());
        let mut scratch = Vec::new();
        let mut scen = FailureScenario::none();
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            model.sample_into_scaled(&mut rng, 8, 1, 60.0, &mut scen, &mut scratch);
            assert_eq!(scen.len(), 3);
            for (_, t) in scen.iter() {
                assert!((0.0..=30.0).contains(&t), "t = {t} outside 0.5 * 60");
            }
            // Bit-identical to the absolute-horizon draw at the resolved
            // horizon — TimedRelative is Timed with a late-bound horizon.
            let fresh =
                FailureScenario::uniform_timed(&mut StdRng::seed_from_u64(seed), 8, 3, 30.0);
            assert_eq!(scen, fresh);
        }
        // Zero fraction degenerates to fail-at-time-zero, still drawable.
        let zero = FailureModel::TimedRelative(TimedRelativeFailures {
            crashes: 2,
            fraction: 0.0,
        });
        assert!(!zero.is_timed());
        zero.sample_into_scaled(
            &mut StdRng::seed_from_u64(1),
            8,
            1,
            60.0,
            &mut scen,
            &mut scratch,
        );
        assert!(scen.iter().all(|(_, t)| t == 0.0));
        // Serde round trip.
        let v = serde::Serialize::to_value(&model);
        let back: FailureModel = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, model);
    }

    #[test]
    #[should_panic(expected = "sample_into_scaled")]
    fn timed_relative_rejects_unscaled_draw() {
        let model = FailureModel::TimedRelative(TimedRelativeFailures {
            crashes: 2,
            fraction: 0.5,
        });
        let mut scratch = Vec::new();
        let mut scen = FailureScenario::none();
        model.sample_into(&mut StdRng::seed_from_u64(1), 8, 1, &mut scen, &mut scratch);
    }

    #[test]
    fn scaled_draw_matches_unscaled_for_absolute_models() {
        let mut scratch = Vec::new();
        let (mut a, mut b) = (FailureScenario::none(), FailureScenario::none());
        for model in [
            FailureModel::Epsilon,
            FailureModel::Uniform(UniformFailures { crashes: 2 }),
            FailureModel::Timed(TimedFailures {
                crashes: 2,
                horizon: 9.0,
            }),
        ] {
            model.sample_into(&mut StdRng::seed_from_u64(3), 10, 2, &mut a, &mut scratch);
            model.sample_into_scaled(
                &mut StdRng::seed_from_u64(3),
                10,
                2,
                123.0,
                &mut b,
                &mut scratch,
            );
            assert_eq!(a, b, "{model:?}");
        }
    }

    #[test]
    #[should_panic]
    fn model_overflowing_crash_count_rejected() {
        let mut scratch = Vec::new();
        let mut scen = FailureScenario::none();
        FailureModel::Uniform(UniformFailures { crashes: 5 }).sample_into(
            &mut StdRng::seed_from_u64(1),
            3,
            0,
            &mut scen,
            &mut scratch,
        );
    }

    #[test]
    fn model_crash_counts_and_serde_round_trip() {
        assert_eq!(FailureModel::None.crashes(7), 0);
        assert_eq!(FailureModel::Epsilon.crashes(7), 7);
        assert_eq!(
            FailureModel::Uniform(UniformFailures { crashes: 2 }).crashes(7),
            2
        );
        let timed = FailureModel::Timed(TimedFailures {
            crashes: 3,
            horizon: 12.0,
        });
        assert_eq!(timed.crashes(0), 3);
        assert!(timed.is_timed());
        assert!(!FailureModel::Epsilon.is_timed());
        for model in [
            FailureModel::None,
            FailureModel::Epsilon,
            FailureModel::Uniform(UniformFailures { crashes: 2 }),
            timed,
        ] {
            let v = serde::Serialize::to_value(&model);
            let back: FailureModel = serde::Deserialize::from_value(&v).unwrap();
            assert_eq!(back, model);
        }
    }
}
