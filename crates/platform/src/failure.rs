//! Fail-stop failure scenarios.
//!
//! The paper assumes *fail-silent (fail-stop)* processor failures: a
//! failed processor computes nothing and sends nothing from its failure
//! time onwards, and never recovers. The experiments of Section 6 crash
//! `ε` processors "chosen uniformly" (from time 0); mid-execution crash
//! times are supported as an extension.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense identifier of a processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A set of fail-stop failures: each failed processor with its failure
/// time (time 0 = the processor never executes anything).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FailureScenario {
    failures: Vec<(ProcId, f64)>,
}

impl FailureScenario {
    /// The empty scenario (no failures).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds a scenario from explicit `(processor, time)` pairs.
    ///
    /// # Panics
    /// Panics on duplicate processors or negative/non-finite times.
    pub fn new(failures: Vec<(ProcId, f64)>) -> Self {
        let mut seen = std::collections::HashSet::new();
        for &(p, t) in &failures {
            assert!(seen.insert(p), "duplicate failure for {p}");
            assert!(
                t >= 0.0 && t.is_finite(),
                "failure time must be finite and >= 0"
            );
        }
        FailureScenario { failures }
    }

    /// All processors failing at time 0 — the paper's experimental model.
    pub fn at_time_zero(procs: impl IntoIterator<Item = ProcId>) -> Self {
        Self::new(procs.into_iter().map(|p| (p, 0.0)).collect())
    }

    /// Draws `count` distinct processors uniformly from `0..m`, all
    /// failing at time 0 ("processors that fail during the schedule
    /// process are chosen uniformly", Section 6). Delegates to
    /// [`FailureScenario::refill_uniform`], the single home of the
    /// partial Fisher–Yates draw.
    pub fn uniform(rng: &mut impl Rng, m: usize, count: usize) -> Self {
        let mut scenario = Self::none();
        let mut ids = Vec::new();
        scenario.refill_uniform(rng, m, count, &mut ids);
        scenario
    }

    /// Redraws this scenario in place — a partial Fisher–Yates for
    /// `count` distinct fail-at-time-zero processors, reusing `ids` as
    /// scratch. This is the allocation-free form the Monte-Carlo crash
    /// campaigns use between replications; [`FailureScenario::uniform`]
    /// is the owned convenience wrapper around it.
    pub fn refill_uniform(
        &mut self,
        rng: &mut impl Rng,
        m: usize,
        count: usize,
        ids: &mut Vec<u32>,
    ) {
        assert!(count <= m, "cannot fail more processors than exist");
        ids.clear();
        ids.extend(0..m as u32);
        for i in 0..count {
            let j = rng.gen_range(i..ids.len());
            ids.swap(i, j);
        }
        self.failures.clear();
        self.failures
            .extend(ids[..count].iter().map(|&i| (ProcId(i), 0.0)));
    }

    /// Empties the scenario in place (no failures), keeping capacity.
    pub fn clear(&mut self) {
        self.failures.clear();
    }

    /// Like [`FailureScenario::uniform`] but with failure times drawn
    /// uniformly in `[0, horizon]` — the mid-execution crash extension.
    pub fn uniform_timed(rng: &mut impl Rng, m: usize, count: usize, horizon: f64) -> Self {
        assert!(count <= m);
        assert!(horizon >= 0.0 && horizon.is_finite());
        let mut ids: Vec<u32> = (0..m as u32).collect();
        for i in 0..count {
            let j = rng.gen_range(i..ids.len());
            ids.swap(i, j);
        }
        Self::new(
            ids[..count]
                .iter()
                .map(|&i| {
                    (
                        ProcId(i),
                        if horizon == 0.0 {
                            0.0
                        } else {
                            rng.gen_range(0.0..=horizon)
                        },
                    )
                })
                .collect(),
        )
    }

    /// Number of failures.
    #[inline]
    pub fn len(&self) -> usize {
        self.failures.len()
    }

    /// Whether no processor fails.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }

    /// The failure time of `p`, or `None` if `p` stays alive.
    pub fn failure_time(&self, p: ProcId) -> Option<f64> {
        self.failures
            .iter()
            .find(|&&(q, _)| q == p)
            .map(|&(_, t)| t)
    }

    /// Whether `p` fails (at any time) in this scenario.
    pub fn fails(&self, p: ProcId) -> bool {
        self.failure_time(p).is_some()
    }

    /// Iterates over `(processor, time)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcId, f64)> + '_ {
        self.failures.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_scenario() {
        let s = FailureScenario::none();
        assert!(s.is_empty());
        assert!(!s.fails(ProcId(0)));
    }

    #[test]
    fn uniform_draws_distinct() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let s = FailureScenario::uniform(&mut rng, 20, 5);
            assert_eq!(s.len(), 5);
            let set: std::collections::HashSet<_> = s.iter().map(|(p, _)| p).collect();
            assert_eq!(set.len(), 5);
            assert!(s.iter().all(|(p, t)| p.index() < 20 && t == 0.0));
        }
    }

    #[test]
    fn uniform_all_processors() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = FailureScenario::uniform(&mut rng, 4, 4);
        assert_eq!(s.len(), 4);
        for p in 0..4 {
            assert!(s.fails(ProcId(p)));
        }
    }

    #[test]
    #[should_panic]
    fn too_many_failures_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = FailureScenario::uniform(&mut rng, 3, 4);
    }

    #[test]
    #[should_panic]
    fn duplicate_processor_panics() {
        let _ = FailureScenario::new(vec![(ProcId(1), 0.0), (ProcId(1), 5.0)]);
    }

    #[test]
    fn refill_uniform_matches_uniform_bit_for_bit() {
        let mut scratch = Vec::new();
        let mut scen = FailureScenario::none();
        for seed in 0..20u64 {
            let fresh = FailureScenario::uniform(&mut StdRng::seed_from_u64(seed), 12, 4);
            scen.refill_uniform(&mut StdRng::seed_from_u64(seed), 12, 4, &mut scratch);
            assert_eq!(scen, fresh, "seed {seed}");
        }
        scen.clear();
        assert!(scen.is_empty());
    }

    #[test]
    fn timed_failures_within_horizon() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = FailureScenario::uniform_timed(&mut rng, 10, 3, 100.0);
        for (_, t) in s.iter() {
            assert!((0.0..=100.0).contains(&t));
        }
    }

    #[test]
    fn failure_time_lookup() {
        let s = FailureScenario::new(vec![(ProcId(2), 7.5)]);
        assert_eq!(s.failure_time(ProcId(2)), Some(7.5));
        assert_eq!(s.failure_time(ProcId(3)), None);
    }
}
