//! # ftsched — fault-tolerant scheduling of precedence task graphs
//!
//! A from-scratch Rust implementation of Benoit, Hakem and Robert,
//! *Fault Tolerant Scheduling of Precedence Task Graphs on Heterogeneous
//! Platforms* (INRIA RR-6418 / IPDPS 2008): the **FTSA** and **MC-FTSA**
//! heuristics, the **FTBAR** baseline, the platform/task-graph substrate
//! they run on, and a discrete-event crash simulator to evaluate
//! schedules under fail-stop processor failures.
//!
//! This facade crate re-exports the full public API; the implementation
//! lives in the focused workspace crates (`ftsched-taskgraph`,
//! `ftsched-platform`, `ftsched-core`, `ftsched-simulator`,
//! `ftsched-matching`, `ftsched-collections`).
//!
//! ## Quickstart
//!
//! ```
//! use ftsched::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A random paper-style instance: layered DAG, 20 heterogeneous
//! // processors, granularity 1.0.
//! let mut rng = StdRng::seed_from_u64(42);
//! let inst = paper_instance(&mut rng, &PaperInstanceConfig::default());
//!
//! // Schedule it to survive any 2 processor failures.
//! let sched = schedule(&inst, 2, Algorithm::Ftsa, &mut rng).unwrap();
//! assert!(validate(&inst, &sched).is_ok());
//!
//! // Crash two processors and watch the schedule hold.
//! let scenario = FailureScenario::uniform(&mut rng, inst.num_procs(), 2);
//! let sim = simulate(&inst, &sched, &scenario);
//! assert!(sim.completed());
//! assert!(sim.latency <= sched.latency_upper_bound() + 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ftcollections as collections;
pub use ftsched_core as core;
pub use matching;
pub use platform;
pub use simulator;
pub use taskgraph;

/// Everything a downstream user typically needs, in one import.
pub mod prelude {
    pub use ftsched_core::bicriteria::{
        deadlines, ftsa_both_criteria, max_epsilon_binary, max_epsilon_linear,
    };
    pub use ftsched_core::bounds::critical_path_bound;
    pub use ftsched_core::ftbar::{ftbar, ftbar_with_options};
    pub use ftsched_core::ftsa::{ftsa, ftsa_with_policy, PriorityPolicy};
    pub use ftsched_core::mc_ftsa::{mc_ftsa, Selector};
    pub use ftsched_core::pipeline::{CommAxis, ListScheduler, PlacementAxis, PriorityAxis};
    pub use ftsched_core::stats::{schedule_stats, ScheduleStats};
    pub use ftsched_core::validate::validate;
    pub use ftsched_core::{
        schedule, schedule_into, Algorithm, CommSelection, Replica, Schedule, ScheduleError,
        ScheduleWorkspace,
    };
    pub use platform::gen::{paper_instance, random_platform, PaperInstanceConfig};
    pub use platform::granularity::{granularity, scale_to_granularity};
    pub use platform::{ExecutionMatrix, FailureScenario, Instance, Platform, ProcId};
    pub use simulator::contention::{simulate_contention, ContentionResult, PortModel};
    pub use simulator::crash::{
        simulate_into, simulate_outcome_into, simulate_replication_outcomes,
        simulate_replication_outcomes_into, CrashWorkspace, FallbackPolicy, ReplicationOutcome,
    };
    pub use simulator::reliability::{
        design_point_probability, survival_probability_exact, survival_probability_monte_carlo,
    };
    pub use simulator::replay::replay;
    pub use simulator::trace::{gantt, trace};
    pub use simulator::{simulate, SimOutcome, SimResult};
    pub use taskgraph::generators::{
        erdos, fork_join, layered, series_parallel, ErdosConfig, ForkJoinConfig, LayeredConfig,
        SeriesParallelConfig,
    };
    pub use taskgraph::workloads::{
        cholesky, fft, gaussian_elimination, map_reduce, stencil_1d, wavefront,
    };
    pub use taskgraph::{Dag, DagBuilder, EdgeId, TaskId};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_api() {
        use crate::prelude::*;
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0);
        let inst = paper_instance(&mut rng, &PaperInstanceConfig::default());
        let s = schedule(&inst, 1, Algorithm::McFtsaGreedy, &mut rng).unwrap();
        validate(&inst, &s).unwrap();
    }
}
