//! Property-based tests over the random generators: every generated graph
//! must be acyclic, weakly connected, respect its configured ranges, and
//! have internally consistent adjacency.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use taskgraph::generators::{
    erdos, fork_join, layered, ErdosConfig, ForkJoinConfig, LayeredConfig,
};
use taskgraph::metrics::{width_exact, width_lower_bound};
use taskgraph::topology::{is_weakly_connected, levels};
use taskgraph::Dag;

/// Oracle for the CSR flattening: rebuild the adjacency the way the
/// pre-CSR `Vec<Vec<…>>` representation did — one push per edge, in
/// edge-insertion (id) order — and demand the CSR accessors return the
/// same neighbors in the same order, along with consistent degrees and
/// the precomputed entry/exit sets.
fn check_csr_matches_insertion_order(g: &Dag) {
    let v = g.num_tasks();
    let mut preds: Vec<Vec<(taskgraph::TaskId, taskgraph::EdgeId)>> = vec![Vec::new(); v];
    let mut succs: Vec<Vec<(taskgraph::TaskId, taskgraph::EdgeId)>> = vec![Vec::new(); v];
    for (eid, src, dst, _) in g.edge_list() {
        succs[src.index()].push((dst, eid));
        preds[dst.index()].push((src, eid));
    }
    for t in g.tasks() {
        assert_eq!(g.preds(t), &preds[t.index()][..], "preds of {t}");
        assert_eq!(g.succs(t), &succs[t.index()][..], "succs of {t}");
        assert_eq!(g.in_degree(t), preds[t.index()].len());
        assert_eq!(g.out_degree(t), succs[t.index()].len());
    }
    let entries: Vec<_> = g.tasks().filter(|&t| preds[t.index()].is_empty()).collect();
    let exits: Vec<_> = g.tasks().filter(|&t| succs[t.index()].is_empty()).collect();
    assert_eq!(g.entries(), &entries[..]);
    assert_eq!(g.exits(), &exits[..]);
}

fn check_structural_sanity(g: &Dag) {
    check_csr_matches_insertion_order(g);
    // Topological order covers all tasks and respects edges.
    let topo = g.topological_order();
    assert_eq!(topo.len(), g.num_tasks());
    let mut pos = vec![usize::MAX; g.num_tasks()];
    for (i, t) in topo.iter().enumerate() {
        pos[t.index()] = i;
    }
    for (_, s, d, v) in g.edge_list() {
        assert!(pos[s.index()] < pos[d.index()], "topo order violates edge");
        assert!(v >= 0.0);
    }
    // preds/succs mirror each other.
    for t in g.tasks() {
        for &(p, e) in g.preds(t) {
            assert!(g.succs(p).iter().any(|&(s, e2)| s == t && e2 == e));
        }
        for &(s, e) in g.succs(t) {
            assert!(g.preds(s).iter().any(|&(p, e2)| p == t && e2 == e));
        }
    }
    // Levels are monotone along edges.
    let lv = levels(g);
    for (_, s, d, _) in g.edge_list() {
        assert!(lv[s.index()] < lv[d.index()]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn layered_graphs_are_sane(seed in 0u64..10_000, tasks in 1usize..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = layered(&mut rng, &LayeredConfig::paper(tasks));
        prop_assert_eq!(g.num_tasks(), tasks);
        prop_assert!(is_weakly_connected(&g));
        check_structural_sanity(&g);
    }

    #[test]
    fn erdos_graphs_are_sane(seed in 0u64..10_000, tasks in 1usize..150) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos(&mut rng, &ErdosConfig::sparse(tasks));
        prop_assert_eq!(g.num_tasks(), tasks);
        prop_assert!(is_weakly_connected(&g));
        check_structural_sanity(&g);
    }

    #[test]
    fn fork_join_graphs_are_sane(
        seed in 0u64..10_000,
        stages in 1usize..6,
        width in 1usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = fork_join(&mut rng, &ForkJoinConfig::new(stages, width));
        prop_assert_eq!(g.num_tasks(), stages * (width + 1) + 1);
        prop_assert!(is_weakly_connected(&g));
        check_structural_sanity(&g);
    }

    #[test]
    fn exact_width_dominates_level_bound(seed in 0u64..2_000, tasks in 1usize..60) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = layered(&mut rng, &LayeredConfig::paper(tasks));
        prop_assert!(width_exact(&g) >= width_lower_bound(&g));
        prop_assert!(width_exact(&g) <= g.num_tasks());
    }

    /// Theorem 4.2 relies on `|α| ≤ ω`: the set of simultaneously free
    /// tasks is an antichain, so the maximum Kahn frontier is bounded by
    /// the exact width.
    #[test]
    fn free_set_bounded_by_width(seed in 0u64..2_000, tasks in 1usize..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = layered(&mut rng, &LayeredConfig::paper(tasks));
        let omega = width_exact(&g);

        // Kahn's algorithm, tracking the largest frontier.
        let mut indeg: Vec<usize> =
            g.tasks().map(|t| g.in_degree(t)).collect();
        let mut free: Vec<taskgraph::TaskId> =
            g.tasks().filter(|&t| g.in_degree(t) == 0).collect();
        let mut max_frontier = free.len();
        while let Some(t) = free.pop() {
            for &(s, _) in g.succs(t) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    free.push(s);
                }
            }
            max_frontier = max_frontier.max(free.len());
        }
        prop_assert!(
            max_frontier <= omega,
            "frontier {max_frontier} exceeded width {omega}"
        );
    }

    #[test]
    fn json_round_trip_any_layered(seed in 0u64..1_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = layered(&mut rng, &LayeredConfig::paper(40));
        let s = taskgraph::io::to_json(&g).unwrap();
        let g2 = taskgraph::io::from_json(&s).unwrap();
        prop_assert_eq!(g.num_tasks(), g2.num_tasks());
        prop_assert_eq!(g.num_edges(), g2.num_edges());
        let e1: Vec<_> = g.edge_list().collect();
        let e2: Vec<_> = g2.edge_list().collect();
        prop_assert_eq!(e1, e2);
    }
}
