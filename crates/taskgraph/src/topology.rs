//! Topological utilities: levels, reachability, connectivity.

use crate::graph::{Dag, TaskId};

/// Assigns each task its *precedence level*: entry tasks are level 0,
/// every other task is `1 + max(level of predecessors)`. Levels give the
/// classic layered drawing of the DAG and a cheap width lower bound.
pub fn levels(dag: &Dag) -> Vec<usize> {
    let mut level = vec![0usize; dag.num_tasks()];
    for &t in dag.topological_order() {
        let l = dag
            .preds(t)
            .iter()
            .map(|&(p, _)| level[p.index()] + 1)
            .max()
            .unwrap_or(0);
        level[t.index()] = l;
    }
    level
}

/// Groups tasks by level, in ascending level order.
pub fn level_sets(dag: &Dag) -> Vec<Vec<TaskId>> {
    let lv = levels(dag);
    let depth = lv.iter().max().map_or(0, |m| m + 1);
    let mut sets = vec![Vec::new(); depth];
    for t in dag.tasks() {
        sets[lv[t.index()]].push(t);
    }
    sets
}

/// A packed bitset over task ids, used for transitive reachability.
#[derive(Debug, Clone)]
pub struct TaskSet {
    words: Vec<u64>,
}

impl TaskSet {
    /// Creates an empty set over `n` tasks.
    pub fn new(n: usize) -> Self {
        TaskSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Inserts task index `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &TaskSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Computes per-task descendant sets: `reach[t]` contains every task
/// strictly reachable from `t`. `O(v·e/64)` time, `O(v²/64)` space.
pub fn descendants(dag: &Dag) -> Vec<TaskSet> {
    let n = dag.num_tasks();
    let mut reach: Vec<TaskSet> = (0..n).map(|_| TaskSet::new(n)).collect();
    for &t in dag.topological_order().iter().rev() {
        // reach[t] = union over successors s of ({s} ∪ reach[s]).
        let mut acc = TaskSet::new(n);
        for &(s, _) in dag.succs(t) {
            acc.insert(s.index());
            acc.union_with(&reach[s.index()]);
        }
        reach[t.index()] = acc;
    }
    reach
}

/// Whether `b` is reachable from `a` (strictly; a task does not reach
/// itself). Convenience wrapper computing a fresh traversal, `O(v + e)`.
pub fn reaches(dag: &Dag, a: TaskId, b: TaskId) -> bool {
    if a == b {
        return false;
    }
    let mut stack = vec![a];
    let mut seen = vec![false; dag.num_tasks()];
    while let Some(t) = stack.pop() {
        for &(s, _) in dag.succs(t) {
            if s == b {
                return true;
            }
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    false
}

/// Whether the underlying undirected graph is connected (trivially true
/// for `v <= 1`). Random generators use this to decide whether to add
/// linking edges.
pub fn is_weakly_connected(dag: &Dag) -> bool {
    let n = dag.num_tasks();
    if n <= 1 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![TaskId(0)];
    seen[0] = true;
    let mut visited = 1;
    while let Some(t) = stack.pop() {
        let nbrs = dag
            .succs(t)
            .iter()
            .map(|&(s, _)| s)
            .chain(dag.preds(t).iter().map(|&(p, _)| p));
        for s in nbrs {
            if !seen[s.index()] {
                seen[s.index()] = true;
                visited += 1;
                stack.push(s);
            }
        }
    }
    visited == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DagBuilder;

    fn chain(n: usize) -> Dag {
        let mut b = DagBuilder::new();
        let ts: Vec<TaskId> = (0..n).map(|_| b.add_task(1.0)).collect();
        for w in ts.windows(2) {
            b.add_edge(w[0], w[1], 1.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn chain_levels() {
        let g = chain(5);
        assert_eq!(levels(&g), vec![0, 1, 2, 3, 4]);
        let sets = level_sets(&g);
        assert_eq!(sets.len(), 5);
        assert!(sets.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn diamond_levels() {
        let mut b = DagBuilder::new();
        let t: Vec<TaskId> = (0..4).map(|_| b.add_task(1.0)).collect();
        b.add_edge(t[0], t[1], 1.0);
        b.add_edge(t[0], t[2], 1.0);
        b.add_edge(t[1], t[3], 1.0);
        b.add_edge(t[2], t[3], 1.0);
        let g = b.build().unwrap();
        assert_eq!(levels(&g), vec![0, 1, 1, 2]);
    }

    #[test]
    fn descendants_of_chain() {
        let g = chain(4);
        let d = descendants(&g);
        assert_eq!(d[0].count(), 3);
        assert_eq!(d[3].count(), 0);
        assert!(d[0].contains(3));
        assert!(!d[2].contains(0));
    }

    #[test]
    fn reaches_matches_descendants() {
        let g = chain(4);
        let d = descendants(&g);
        for a in g.tasks() {
            for b2 in g.tasks() {
                assert_eq!(
                    reaches(&g, a, b2),
                    a != b2 && d[a.index()].contains(b2.index())
                );
            }
        }
    }

    #[test]
    fn connectivity() {
        let g = chain(4);
        assert!(is_weakly_connected(&g));
        let mut b = DagBuilder::new();
        b.add_task(1.0);
        b.add_task(1.0);
        let g2 = b.build().unwrap();
        assert!(!is_weakly_connected(&g2));
    }

    #[test]
    fn taskset_ops() {
        let mut s = TaskSet::new(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert_eq!(s.count(), 3);
        assert!(s.contains(64));
        assert!(!s.contains(1));
        let mut s2 = TaskSet::new(130);
        s2.insert(1);
        s2.union_with(&s);
        assert_eq!(s2.count(), 4);
    }
}
