//! Structural metrics of task graphs: critical path, width, degree
//! statistics.
//!
//! The FTSA complexity bound `O(e·m² + v·log ω)` involves the *width* `ω`
//! of the DAG — the maximum number of pairwise-independent tasks — which
//! bounds the size of the free list `α`. Exact width is computed via
//! Dilworth's theorem (minimum chain cover = `v` − maximum matching in the
//! transitive-closure bipartite graph); an `O(v + e)` level-based lower
//! bound is provided for large instances.

use crate::graph::{Dag, TaskId};
use crate::topology::{descendants, level_sets};
use matching::{maximum_matching, BipartiteGraph};

/// Length of the critical path where each task counts `work` and each edge
/// counts `volume * delay_per_unit`. With `delay_per_unit = 0` this is the
/// pure computation critical path.
pub fn critical_path_length(dag: &Dag, delay_per_unit: f64) -> f64 {
    let mut dist = vec![0.0f64; dag.num_tasks()];
    let mut best: f64 = 0.0;
    for &t in dag.topological_order() {
        let arrival = dag
            .preds(t)
            .iter()
            .map(|&(p, e)| dist[p.index()] + dag.volume(e) * delay_per_unit)
            .fold(0.0f64, f64::max);
        dist[t.index()] = arrival + dag.work(t);
        best = best.max(dist[t.index()]);
    }
    best
}

/// The tasks of one critical path (with `delay_per_unit` edge weighting),
/// from an entry to an exit task.
pub fn critical_path(dag: &Dag, delay_per_unit: f64) -> Vec<TaskId> {
    let n = dag.num_tasks();
    if n == 0 {
        return Vec::new();
    }
    let mut dist = vec![0.0f64; n];
    let mut parent: Vec<Option<TaskId>> = vec![None; n];
    for &t in dag.topological_order() {
        let mut arrival = 0.0f64;
        for &(p, e) in dag.preds(t) {
            let a = dist[p.index()] + dag.volume(e) * delay_per_unit;
            if a > arrival {
                arrival = a;
                parent[t.index()] = Some(p);
            }
        }
        dist[t.index()] = arrival + dag.work(t);
    }
    let mut cur = dag
        .tasks()
        .max_by(|a, b| dist[a.index()].total_cmp(&dist[b.index()]))
        .expect("nonempty");
    let mut path = vec![cur];
    while let Some(p) = parent[cur.index()] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    path
}

/// Exact width `ω` (maximum antichain) via Dilworth's theorem.
///
/// Builds the bipartite graph of the transitive closure and computes a
/// maximum matching; the minimum number of chains covering the DAG is
/// `v − matching`, which equals the maximum antichain size. Cost is the
/// closure (`O(v·e/64)`) plus a Hopcroft–Karp run, so reserve this for
/// graphs up to a few thousand tasks; use [`width_lower_bound`] beyond.
pub fn width_exact(dag: &Dag) -> usize {
    let n = dag.num_tasks();
    if n == 0 {
        return 0;
    }
    let reach = descendants(dag);
    let mut g = BipartiteGraph::new(n, n);
    for (a, reach_a) in reach.iter().enumerate() {
        for b in 0..n {
            if reach_a.contains(b) {
                g.add_edge(a, b, 1.0);
            }
        }
    }
    n - maximum_matching(&g).size
}

/// Fast width lower bound: the largest precedence level.
pub fn width_lower_bound(dag: &Dag) -> usize {
    level_sets(dag).iter().map(Vec::len).max().unwrap_or(0)
}

/// Summary statistics of a DAG, useful in experiment logs.
#[derive(Debug, Clone, PartialEq)]
pub struct DagStats {
    /// Number of tasks.
    pub tasks: usize,
    /// Number of edges.
    pub edges: usize,
    /// Number of entry tasks.
    pub entries: usize,
    /// Number of exit tasks.
    pub exits: usize,
    /// Number of precedence levels.
    pub depth: usize,
    /// Level-based width lower bound.
    pub width_lb: usize,
    /// Mean out-degree.
    pub mean_out_degree: f64,
    /// Total work.
    pub total_work: f64,
    /// Total communication volume.
    pub total_volume: f64,
}

/// Computes [`DagStats`] for `dag`.
pub fn stats(dag: &Dag) -> DagStats {
    let sets = level_sets(dag);
    DagStats {
        tasks: dag.num_tasks(),
        edges: dag.num_edges(),
        entries: dag.entries().len(),
        exits: dag.exits().len(),
        depth: sets.len(),
        width_lb: sets.iter().map(Vec::len).max().unwrap_or(0),
        mean_out_degree: if dag.num_tasks() == 0 {
            0.0
        } else {
            dag.num_edges() as f64 / dag.num_tasks() as f64
        },
        total_work: dag.total_work(),
        total_volume: dag.total_volume(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DagBuilder;

    fn diamond() -> Dag {
        let mut b = DagBuilder::new();
        let t: Vec<TaskId> = (0..4).map(|i| b.add_task((i + 1) as f64)).collect();
        b.add_edge(t[0], t[1], 10.0);
        b.add_edge(t[0], t[2], 10.0);
        b.add_edge(t[1], t[3], 10.0);
        b.add_edge(t[2], t[3], 10.0);
        b.build().unwrap()
    }

    #[test]
    fn critical_path_no_comm() {
        let g = diamond();
        // Longest: 1 + 3 + 4 = 8 (via t2).
        assert_eq!(critical_path_length(&g, 0.0), 8.0);
        assert_eq!(
            critical_path(&g, 0.0),
            vec![TaskId(0), TaskId(2), TaskId(3)]
        );
    }

    #[test]
    fn critical_path_with_comm() {
        let g = diamond();
        // With unit delay 1: 1 + 10 + 3 + 10 + 4 = 28.
        assert_eq!(critical_path_length(&g, 1.0), 28.0);
    }

    #[test]
    fn width_of_diamond_is_two() {
        let g = diamond();
        assert_eq!(width_exact(&g), 2);
        assert_eq!(width_lower_bound(&g), 2);
    }

    #[test]
    fn width_of_antichain_is_n() {
        let mut b = DagBuilder::new();
        for _ in 0..7 {
            b.add_task(1.0);
        }
        let g = b.build().unwrap();
        assert_eq!(width_exact(&g), 7);
        assert_eq!(width_lower_bound(&g), 7);
    }

    #[test]
    fn width_of_chain_is_one() {
        let mut b = DagBuilder::new();
        let ts: Vec<TaskId> = (0..6).map(|_| b.add_task(1.0)).collect();
        for w in ts.windows(2) {
            b.add_edge(w[0], w[1], 1.0);
        }
        let g = b.build().unwrap();
        assert_eq!(width_exact(&g), 1);
    }

    #[test]
    fn width_where_levels_underestimate() {
        // Two chains a0->a1 and b0->b1 with a cross edge a0->b1:
        // levels: a0,b0 = 0; a1,b1 = 1 → level bound 2; true width 2.
        // Add c independent: width 3, max level still… c at level 0 → 3.
        // Construct a case where the level heuristic is strictly smaller:
        //   x -> y,  z independent of both but level(z)=0
        //   antichain {y?} … Use the classic "N" shape:
        //   a -> c, b -> c, b -> d  → levels {a,b}=0, {c,d}=1 (bound 2)
        //   antichain {a, d}: a does not reach d, width = 2. Equal again.
        // The bound can only underestimate on skewed structures; verify
        // exact >= bound on one such skew.
        let mut b = DagBuilder::new();
        let t: Vec<TaskId> = (0..5).map(|_| b.add_task(1.0)).collect();
        b.add_edge(t[0], t[1], 1.0);
        b.add_edge(t[1], t[2], 1.0);
        b.add_edge(t[0], t[3], 1.0);
        b.add_edge(t[3], t[4], 1.0);
        let g = b.build().unwrap();
        assert!(width_exact(&g) >= width_lower_bound(&g));
        assert_eq!(width_exact(&g), 2);
    }

    #[test]
    fn stats_of_diamond() {
        let g = diamond();
        let s = stats(&g);
        assert_eq!(s.tasks, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.entries, 1);
        assert_eq!(s.exits, 1);
        assert_eq!(s.depth, 3);
        assert_eq!(s.total_work, 10.0);
        assert_eq!(s.total_volume, 40.0);
    }

    #[test]
    fn empty_graph_metrics() {
        let g = DagBuilder::new().build().unwrap();
        assert_eq!(critical_path_length(&g, 1.0), 0.0);
        assert_eq!(width_exact(&g), 0);
        assert!(critical_path(&g, 1.0).is_empty());
    }
}
