//! The DAG representation: dense task/edge ids, bidirectional adjacency
//! in a flat CSR layout, edge data volumes and abstract per-task work.
//!
//! # Memory layout
//!
//! Adjacency is stored *compressed sparse row* style: one contiguous
//! `(TaskId, EdgeId)` arena per direction plus a `v + 1` offset array, so
//! `preds(t)` / `succs(t)` are O(1) slice views into memory that is
//! contiguous across consecutive task ids — the scheduler's per-edge
//! folds stream it without pointer chasing. Within a task, neighbors
//! appear in **edge-insertion order** (the order `add_edge` was called),
//! which is the order the pre-CSR `Vec<Vec<…>>` representation produced;
//! the golden bit-identity suite and a dedicated property test pin this.
//!
//! Entry tasks, exit tasks and a topological order are precomputed by
//! [`DagBuilder::build`] and returned as slices — no per-call filtering.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense identifier of a task (node) in a [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Dense identifier of an edge in a [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct NodeData {
    /// Abstract amount of computation; the platform model turns this into
    /// per-processor execution times.
    pub work: f64,
    /// Optional human-readable label (workloads name their tasks).
    pub label: Option<String>,
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub(crate) struct EdgeData {
    pub src: TaskId,
    pub dst: TaskId,
    /// Data volume `V(src, dst)` shipped along this edge.
    pub volume: f64,
}

/// One direction of adjacency in CSR form: `items[off[t]..off[t + 1]]`
/// are the `(neighbor, connecting edge)` pairs of task `t`, in edge
/// insertion order.
#[derive(Debug, Clone, Default)]
struct CsrAdjacency {
    off: Vec<u32>,
    items: Vec<(TaskId, EdgeId)>,
}

impl CsrAdjacency {
    #[inline]
    fn range(&self, t: TaskId) -> std::ops::Range<usize> {
        self.off[t.index()] as usize..self.off[t.index() + 1] as usize
    }

    /// Builds the CSR arrays by stable counting sort over `edges`,
    /// bucketing each edge under `key(edge)`; iterating edges in id order
    /// keeps every bucket in insertion order.
    fn build(v: usize, edges: &[EdgeData], key: impl Fn(&EdgeData) -> (TaskId, TaskId)) -> Self {
        let mut off = vec![0u32; v + 1];
        for e in edges {
            let (owner, _) = key(e);
            off[owner.index() + 1] += 1;
        }
        for t in 0..v {
            off[t + 1] += off[t];
        }
        let mut cursor = off.clone();
        let mut items = vec![(TaskId(0), EdgeId(0)); edges.len()];
        for (i, e) in edges.iter().enumerate() {
            let (owner, neighbor) = key(e);
            let slot = cursor[owner.index()];
            items[slot as usize] = (neighbor, EdgeId(i as u32));
            cursor[owner.index()] = slot + 1;
        }
        CsrAdjacency { off, items }
    }

    #[inline]
    fn row(&self, t: TaskId) -> &[(TaskId, EdgeId)] {
        &self.items[self.off[t.index()] as usize..self.off[t.index() + 1] as usize]
    }

    #[inline]
    fn degree(&self, t: TaskId) -> usize {
        (self.off[t.index() + 1] - self.off[t.index()]) as usize
    }
}

/// A weighted directed acyclic task graph.
///
/// Construct with [`DagBuilder`], which validates acyclicity:
///
/// ```
/// use taskgraph::DagBuilder;
/// let mut b = DagBuilder::new();
/// let a = b.add_task(2.0);
/// let c = b.add_task(3.0);
/// b.add_edge(a, c, 10.0);
/// let dag = b.build().unwrap();
/// assert_eq!(dag.num_tasks(), 2);
/// assert_eq!(dag.num_edges(), 1);
/// assert_eq!(dag.entries(), vec![a]);
/// assert_eq!(dag.exits(), vec![c]);
/// ```
#[derive(Debug, Clone)]
pub struct Dag {
    pub(crate) nodes: Vec<NodeData>,
    pub(crate) edges: Vec<EdgeData>,
    /// CSR view of `Γ⁻`: per task, (predecessor, connecting edge).
    preds: CsrAdjacency,
    /// CSR view of `Γ⁺`: per task, (successor, connecting edge).
    succs: CsrAdjacency,
    /// `pred_slot[eid]` = position of edge `eid` in the preds CSR arena
    /// (see [`Dag::pred_slot`]).
    pred_slot: Vec<u32>,
    /// A fixed topological order, computed at build time.
    pub(crate) topo: Vec<TaskId>,
    /// Tasks with no predecessors, in increasing id order.
    entries: Vec<TaskId>,
    /// Tasks with no successors, in increasing id order.
    exits: Vec<TaskId>,
}

impl Dag {
    /// Number of tasks `v = |V|`.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges `e = |E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All task ids in increasing id order.
    pub fn tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.nodes.len() as u32).map(TaskId)
    }

    /// Abstract computation amount of `t`.
    #[inline]
    pub fn work(&self, t: TaskId) -> f64 {
        self.nodes[t.index()].work
    }

    /// Sets the abstract computation amount of `t`.
    pub fn set_work(&mut self, t: TaskId, work: f64) {
        assert!(work >= 0.0 && work.is_finite());
        self.nodes[t.index()].work = work;
    }

    /// Optional label of `t`.
    pub fn label(&self, t: TaskId) -> Option<&str> {
        self.nodes[t.index()].label.as_deref()
    }

    /// Data volume `V(src, dst)` of edge `e`.
    #[inline]
    pub fn volume(&self, e: EdgeId) -> f64 {
        self.edges[e.index()].volume
    }

    /// Endpoints `(src, dst)` of edge `e`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (TaskId, TaskId) {
        let d = &self.edges[e.index()];
        (d.src, d.dst)
    }

    /// Immediate predecessors `Γ⁻(t)` with the connecting edges.
    #[inline]
    pub fn preds(&self, t: TaskId) -> &[(TaskId, EdgeId)] {
        self.preds.row(t)
    }

    /// Immediate successors `Γ⁺(t)` with the connecting edges.
    #[inline]
    pub fn succs(&self, t: TaskId) -> &[(TaskId, EdgeId)] {
        self.succs.row(t)
    }

    /// The contiguous range of *pred-arena slots* owned by `t`: the
    /// positions of `t`'s incoming edges in the predecessor CSR arena,
    /// aligned with [`Dag::preds`] (slot `pred_range(t).start + i`
    /// belongs to `preds(t)[i]`). Consumers that key per-edge data by
    /// pred-arena slot instead of [`EdgeId`] get one contiguous block
    /// per destination task — the scheduler's arrival cache streams an
    /// entire eq. (1) query from a single block this way.
    #[inline]
    pub fn pred_range(&self, t: TaskId) -> std::ops::Range<usize> {
        self.preds.range(t)
    }

    /// The pred-arena slot of edge `e`: its position in the predecessor
    /// CSR arena (the index [`Dag::pred_range`] addresses). Every edge
    /// has exactly one slot; slots are a permutation of `0..num_edges()`.
    #[inline]
    pub fn pred_slot(&self, e: EdgeId) -> usize {
        self.pred_slot[e.index()] as usize
    }

    /// In-degree of `t`.
    #[inline]
    pub fn in_degree(&self, t: TaskId) -> usize {
        self.preds.degree(t)
    }

    /// Out-degree of `t`.
    #[inline]
    pub fn out_degree(&self, t: TaskId) -> usize {
        self.succs.degree(t)
    }

    /// Entry tasks (no predecessors), in increasing id order.
    /// Precomputed at build time — O(1).
    #[inline]
    pub fn entries(&self) -> &[TaskId] {
        &self.entries
    }

    /// Exit tasks (no successors), in increasing id order.
    /// Precomputed at build time — O(1).
    #[inline]
    pub fn exits(&self) -> &[TaskId] {
        &self.exits
    }

    /// A topological order of the tasks (fixed at build time).
    #[inline]
    pub fn topological_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// All edges as `(EdgeId, src, dst, volume)` tuples.
    pub fn edge_list(&self) -> impl Iterator<Item = (EdgeId, TaskId, TaskId, f64)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e.src, e.dst, e.volume))
    }

    /// Sum of all task work values.
    pub fn total_work(&self) -> f64 {
        self.nodes.iter().map(|n| n.work).sum()
    }

    /// Sum of all edge volumes.
    pub fn total_volume(&self) -> f64 {
        self.edges.iter().map(|e| e.volume).sum()
    }

    /// Scales every task's work by `factor` (used to calibrate
    /// granularity; see the platform crate).
    pub fn scale_work(&mut self, factor: f64) {
        assert!(factor > 0.0 && factor.is_finite());
        for n in &mut self.nodes {
            n.work *= factor;
        }
    }
}

/// Only `nodes` and `edges` are serialized; the CSR adjacency, the
/// topological order and the entry/exit sets are derived data and are
/// rebuilt (and re-validated) on deserialization.
impl Serialize for Dag {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("nodes".to_string(), self.nodes.to_value()),
            ("edges".to_string(), self.edges.to_value()),
        ])
    }
}

impl Deserialize for Dag {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let nodes = Vec::<NodeData>::from_value(
            v.get("nodes")
                .ok_or_else(|| serde::Error::custom("Dag: missing field `nodes`"))?,
        )?;
        let edges = Vec::<EdgeData>::from_value(
            v.get("edges")
                .ok_or_else(|| serde::Error::custom("Dag: missing field `edges`"))?,
        )?;
        DagBuilder { nodes, edges }
            .build()
            .map_err(|e| serde::Error::custom(format!("Dag: invalid graph: {e}")))
    }
}

/// Incremental constructor for [`Dag`]; validates acyclicity in
/// [`DagBuilder::build`].
#[derive(Debug, Clone, Default)]
pub struct DagBuilder {
    nodes: Vec<NodeData>,
    edges: Vec<EdgeData>,
}

/// Errors raised when finalizing a [`DagBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The edge set contains a directed cycle.
    Cyclic,
    /// An edge repeats an existing (src, dst) pair.
    DuplicateEdge(TaskId, TaskId),
    /// An edge is a self-loop.
    SelfLoop(TaskId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Cyclic => write!(f, "graph contains a directed cycle"),
            GraphError::DuplicateEdge(s, d) => write!(f, "duplicate edge {s} -> {d}"),
            GraphError::SelfLoop(t) => write!(f, "self loop on {t}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl DagBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with reserved capacity.
    pub fn with_capacity(tasks: usize, edges: usize) -> Self {
        DagBuilder {
            nodes: Vec::with_capacity(tasks),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Adds a task with the given abstract work; returns its id.
    pub fn add_task(&mut self, work: f64) -> TaskId {
        assert!(
            work >= 0.0 && work.is_finite(),
            "work must be finite and >= 0"
        );
        let id = TaskId(self.nodes.len() as u32);
        self.nodes.push(NodeData { work, label: None });
        id
    }

    /// Adds a labelled task.
    pub fn add_labelled_task(&mut self, work: f64, label: impl Into<String>) -> TaskId {
        let id = self.add_task(work);
        self.nodes[id.index()].label = Some(label.into());
        id
    }

    /// Adds a precedence edge shipping `volume` units of data.
    pub fn add_edge(&mut self, src: TaskId, dst: TaskId, volume: f64) -> EdgeId {
        assert!(src.index() < self.nodes.len(), "unknown src task");
        assert!(dst.index() < self.nodes.len(), "unknown dst task");
        assert!(
            volume >= 0.0 && volume.is_finite(),
            "volume must be finite and >= 0"
        );
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeData { src, dst, volume });
        id
    }

    /// Number of tasks added so far.
    pub fn num_tasks(&self) -> usize {
        self.nodes.len()
    }

    /// Finalizes the graph, checking for self-loops, duplicate edges and
    /// cycles (Kahn's algorithm), and assembling the flat CSR adjacency
    /// plus the precomputed entry/exit sets.
    pub fn build(self) -> Result<Dag, GraphError> {
        let v = self.nodes.len();
        let mut seen = std::collections::HashSet::with_capacity(self.edges.len());
        for e in &self.edges {
            if e.src == e.dst {
                return Err(GraphError::SelfLoop(e.src));
            }
            if !seen.insert((e.src, e.dst)) {
                return Err(GraphError::DuplicateEdge(e.src, e.dst));
            }
        }
        let preds = CsrAdjacency::build(v, &self.edges, |e| (e.dst, e.src));
        let succs = CsrAdjacency::build(v, &self.edges, |e| (e.src, e.dst));
        let mut pred_slot = vec![0u32; self.edges.len()];
        for (slot, &(_, eid)) in preds.items.iter().enumerate() {
            pred_slot[eid.index()] = slot as u32;
        }

        // Kahn's algorithm: topological order + cycle detection.
        let mut indeg: Vec<usize> = (0..v as u32).map(|t| preds.degree(TaskId(t))).collect();
        let mut queue: std::collections::VecDeque<TaskId> = (0..v as u32)
            .map(TaskId)
            .filter(|t| indeg[t.index()] == 0)
            .collect();
        let mut topo = Vec::with_capacity(v);
        while let Some(t) = queue.pop_front() {
            topo.push(t);
            for &(s, _) in succs.row(t) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push_back(s);
                }
            }
        }
        if topo.len() != v {
            return Err(GraphError::Cyclic);
        }

        let entries: Vec<TaskId> = (0..v as u32)
            .map(TaskId)
            .filter(|&t| preds.degree(t) == 0)
            .collect();
        let exits: Vec<TaskId> = (0..v as u32)
            .map(TaskId)
            .filter(|&t| succs.degree(t) == 0)
            .collect();

        Ok(Dag {
            nodes: self.nodes,
            edges: self.edges,
            preds,
            succs,
            pred_slot,
            topo,
            entries,
            exits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        // a -> b, a -> c, b -> d, c -> d
        let mut b = DagBuilder::new();
        let t: Vec<TaskId> = (0..4).map(|i| b.add_task(i as f64 + 1.0)).collect();
        b.add_edge(t[0], t[1], 1.0);
        b.add_edge(t[0], t[2], 2.0);
        b.add_edge(t[1], t[3], 3.0);
        b.add_edge(t[2], t[3], 4.0);
        b.build().unwrap()
    }

    #[test]
    fn diamond_structure() {
        let g = diamond();
        assert_eq!(g.num_tasks(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.entries(), vec![TaskId(0)]);
        assert_eq!(g.exits(), vec![TaskId(3)]);
        assert_eq!(g.in_degree(TaskId(3)), 2);
        assert_eq!(g.out_degree(TaskId(0)), 2);
        assert_eq!(g.total_work(), 10.0);
        assert_eq!(g.total_volume(), 10.0);
    }

    #[test]
    fn adjacency_preserves_insertion_order() {
        let g = diamond();
        // succs(t0): edges 0 then 1; preds(t3): edges 2 then 3 — exactly
        // the order `add_edge` was called, as the Vec-of-Vecs layout
        // produced before the CSR flattening.
        assert_eq!(
            g.succs(TaskId(0)),
            &[(TaskId(1), EdgeId(0)), (TaskId(2), EdgeId(1))]
        );
        assert_eq!(
            g.preds(TaskId(3)),
            &[(TaskId(1), EdgeId(2)), (TaskId(2), EdgeId(3))]
        );
    }

    #[test]
    fn pred_slots_are_contiguous_aligned_permutation() {
        let mut rng_state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };
        // A random DAG (edges only forward in id order) exercises
        // interleaved insertion across destinations.
        let mut b = DagBuilder::new();
        let t: Vec<TaskId> = (0..40).map(|_| b.add_task(1.0)).collect();
        let mut added = std::collections::HashSet::new();
        for _ in 0..150 {
            let i = (next() % 39) as usize;
            let j = i + 1 + (next() % (39 - i as u64 + 1)) as usize;
            if j < 40 && added.insert((i, j)) {
                b.add_edge(t[i], t[j], 1.0);
            }
        }
        let g = b.build().unwrap();
        // Slot ranges align with preds() and partition 0..e.
        let mut seen = vec![false; g.num_edges()];
        for task in g.tasks() {
            let range = g.pred_range(task);
            assert_eq!(range.len(), g.in_degree(task));
            for (i, &(_, eid)) in g.preds(task).iter().enumerate() {
                assert_eq!(g.pred_slot(eid), range.start + i);
                assert!(!seen[g.pred_slot(eid)]);
                seen[g.pred_slot(eid)] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "slots are a permutation of 0..e");
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.num_tasks()];
            for (i, t) in g.topological_order().iter().enumerate() {
                p[t.index()] = i;
            }
            p
        };
        for (_, s, d, _) in g.edge_list() {
            assert!(pos[s.index()] < pos[d.index()]);
        }
    }

    #[test]
    fn cycle_detected() {
        let mut b = DagBuilder::new();
        let x = b.add_task(1.0);
        let y = b.add_task(1.0);
        b.add_edge(x, y, 1.0);
        b.add_edge(y, x, 1.0);
        assert_eq!(b.build().unwrap_err(), GraphError::Cyclic);
    }

    #[test]
    fn self_loop_detected() {
        let mut b = DagBuilder::new();
        let x = b.add_task(1.0);
        b.add_edge(x, x, 1.0);
        assert_eq!(b.build().unwrap_err(), GraphError::SelfLoop(x));
    }

    #[test]
    fn duplicate_edge_detected() {
        let mut b = DagBuilder::new();
        let x = b.add_task(1.0);
        let y = b.add_task(1.0);
        b.add_edge(x, y, 1.0);
        b.add_edge(x, y, 2.0);
        assert_eq!(b.build().unwrap_err(), GraphError::DuplicateEdge(x, y));
    }

    #[test]
    fn scale_work_multiplies() {
        let mut g = diamond();
        g.scale_work(2.0);
        assert_eq!(g.total_work(), 20.0);
        assert_eq!(g.work(TaskId(0)), 2.0);
    }

    #[test]
    fn labels_round_trip() {
        let mut b = DagBuilder::new();
        let t = b.add_labelled_task(1.0, "pivot(0)");
        let g = b.build().unwrap();
        assert_eq!(g.label(t), Some("pivot(0)"));
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = DagBuilder::new().build().unwrap();
        assert_eq!(g.num_tasks(), 0);
        assert!(g.entries().is_empty());
    }

    #[test]
    fn serde_json_round_trip() {
        let g = diamond();
        let s = serde_json::to_string(&g).unwrap();
        let g2: Dag = serde_json::from_str(&s).unwrap();
        assert_eq!(g2.num_tasks(), g.num_tasks());
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.total_work(), g.total_work());
        // Derived data is rebuilt identically.
        assert_eq!(g2.entries(), g.entries());
        assert_eq!(g2.exits(), g.exits());
        assert_eq!(g2.topological_order(), g.topological_order());
        for t in g.tasks() {
            assert_eq!(g2.preds(t), g.preds(t));
            assert_eq!(g2.succs(t), g.succs(t));
        }
    }
}
