//! 2-D wavefront task graph (dynamic-programming / LU-style sweep).
//!
//! Cell `(i, j)` depends on `(i−1, j)` and `(i, j−1)`; the computation
//! sweeps diagonally across the grid. Width grows to `min(rows, cols)`
//! then shrinks — a shape that exercises FTSA's free-list churn.

use crate::graph::{Dag, DagBuilder, TaskId};

/// Builds a `rows × cols` wavefront DAG. Each cell costs `work`; each
/// dependency ships `volume` units.
pub fn wavefront(rows: usize, cols: usize, work: f64, volume: f64) -> Dag {
    assert!(rows >= 1 && cols >= 1);
    let mut b = DagBuilder::with_capacity(rows * cols, 2 * rows * cols);
    let mut grid: Vec<Vec<TaskId>> = Vec::with_capacity(rows);
    for i in 0..rows {
        let mut row = Vec::with_capacity(cols);
        for j in 0..cols {
            let t = b.add_labelled_task(work, format!("cell({i},{j})"));
            if i > 0 {
                b.add_edge(grid[i - 1][j], t, volume);
            }
            if j > 0 {
                b.add_edge(row[j - 1], t, volume);
            }
            row.push(t);
        }
        grid.push(row);
    }
    b.build().expect("wavefront DAG is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{critical_path_length, width_exact};
    use crate::topology::{is_weakly_connected, levels};

    #[test]
    fn counts() {
        let g = wavefront(3, 4, 1.0, 1.0);
        assert_eq!(g.num_tasks(), 12);
        // Edges: (rows-1)*cols vertical + rows*(cols-1) horizontal.
        assert_eq!(g.num_edges(), 2 * 4 + 3 * 3);
        assert!(is_weakly_connected(&g));
    }

    #[test]
    fn diagonal_depth() {
        let g = wavefront(3, 5, 1.0, 1.0);
        let lv = levels(&g);
        assert_eq!(lv.iter().max(), Some(&(3 + 5 - 2)));
    }

    #[test]
    fn width_is_min_dimension() {
        let g = wavefront(3, 6, 1.0, 1.0);
        assert_eq!(width_exact(&g), 3);
    }

    #[test]
    fn critical_path_is_monotone_path() {
        let g = wavefront(4, 4, 2.0, 0.0);
        // Any monotone path visits rows+cols-1 = 7 cells of work 2.
        assert_eq!(critical_path_length(&g, 0.0), 14.0);
    }

    #[test]
    fn degenerate_row() {
        let g = wavefront(1, 5, 1.0, 1.0);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.entries().len(), 1);
    }
}
