//! Gaussian elimination task graph.
//!
//! For an `n × n` system, elimination step `k` consists of a pivot task
//! `P_k` (preparing column `k`) followed by update tasks `U_{k,j}` for
//! `j > k` (eliminating column `k` from column `j`). Dependencies:
//! `P_k → U_{k,j}` for all `j`, `U_{k,k+1} → P_{k+1}`, and
//! `U_{k,j} → U_{k+1,j}` for `j > k+1`. Work shrinks as the active
//! submatrix shrinks, giving the characteristic "triangle" DAG with width
//! `n − 1` at the top and 1 at the bottom.

use crate::graph::{Dag, DagBuilder, TaskId};

/// Builds the Gaussian-elimination DAG for matrix dimension `n >= 2`.
///
/// `work_scale` multiplies task work; `volume_scale` multiplies the data
/// volume (a column of the active submatrix) shipped along each edge.
pub fn gaussian_elimination(n: usize, work_scale: f64, volume_scale: f64) -> Dag {
    assert!(n >= 2, "need at least a 2x2 system");
    let mut b = DagBuilder::new();

    // pivot[k], update[k][j] for j in k+1..n
    let mut pivot: Vec<TaskId> = Vec::with_capacity(n - 1);
    let mut update: Vec<Vec<TaskId>> = Vec::with_capacity(n - 1);

    for k in 0..n - 1 {
        let rows = (n - k) as f64;
        let p = b.add_labelled_task(rows * work_scale, format!("pivot({k})"));
        pivot.push(p);
        let mut row = Vec::new();
        for j in k + 1..n {
            let u = b.add_labelled_task(rows * work_scale, format!("update({k},{j})"));
            row.push(u);
        }
        update.push(row);
    }

    for k in 0..n - 1 {
        let col_volume = (n - k) as f64 * volume_scale;
        for (idx, &u) in update[k].iter().enumerate() {
            b.add_edge(pivot[k], u, col_volume);
            let j = k + 1 + idx;
            if k + 1 < n - 1 {
                if j == k + 1 {
                    b.add_edge(u, pivot[k + 1], col_volume);
                } else {
                    // u = U_{k,j} feeds U_{k+1,j}.
                    let next = update[k + 1][j - (k + 2)];
                    b.add_edge(u, next, col_volume);
                }
            }
        }
    }

    b.build().expect("gaussian elimination DAG is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{stats, width_exact};
    use crate::topology::is_weakly_connected;

    #[test]
    fn task_count_formula() {
        // Tasks: sum over k of (1 pivot + (n-1-k) updates) = (n-1) + n(n-1)/2.
        for n in [2, 3, 5, 8] {
            let g = gaussian_elimination(n, 1.0, 1.0);
            let expected = (n - 1) + n * (n - 1) / 2;
            assert_eq!(g.num_tasks(), expected, "n={n}");
            assert!(is_weakly_connected(&g));
        }
    }

    #[test]
    fn single_entry_single_exit() {
        let g = gaussian_elimination(6, 1.0, 1.0);
        assert_eq!(g.entries().len(), 1, "pivot(0) is the only entry");
        // The final update U_{n-2, n-1} is the only exit… together with
        // dangling updates of the last step.
        assert!(!g.exits().is_empty());
    }

    #[test]
    fn width_is_n_minus_one() {
        let g = gaussian_elimination(6, 1.0, 1.0);
        assert_eq!(width_exact(&g), 5);
    }

    #[test]
    fn work_decreases_with_k() {
        let g = gaussian_elimination(5, 2.0, 1.0);
        // pivot(0) has work 5*2, pivot(3) has work 2*2.
        let w: Vec<f64> = g
            .tasks()
            .filter(|&t| g.label(t).is_some_and(|l| l.starts_with("pivot")))
            .map(|t| g.work(t))
            .collect();
        assert_eq!(w, vec![10.0, 8.0, 6.0, 4.0]);
    }

    #[test]
    fn stats_sane() {
        let g = gaussian_elimination(7, 1.0, 1.0);
        let s = stats(&g);
        // pivot(k) sits at level 2k, update(k,·) at 2k+1, so the deepest
        // level is 2(n−2)+1 and the depth (level count) is 2(n−1).
        assert_eq!(s.depth, 2 * (7 - 1));
        assert!(s.edges > s.tasks);
    }
}
