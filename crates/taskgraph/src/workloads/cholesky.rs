//! Tiled Cholesky factorization task graph.
//!
//! The classic dense-linear-algebra DAG over an `n × n` tile grid with
//! four kernels per step `k`:
//!
//! * `POTRF(k)` — factor diagonal tile `(k,k)`;
//! * `TRSM(k,i)` for `i > k` — triangular solve of tile `(i,k)`;
//! * `SYRK(k,i)` for `i > k` — symmetric update of diagonal tile `(i,i)`;
//! * `GEMM(k,i,j)` for `i > j > k` — update of tile `(i,j)`.
//!
//! Dependencies follow the standard tiled factorization:
//! `POTRF(k) → TRSM(k,i)`; `TRSM(k,i) → SYRK(k,i)` and
//! `TRSM(k,i), TRSM(k,j) → GEMM(k,i,j)`; updates feed the next step's
//! kernels on the same tiles. Total tasks: `Σ_k 1 + (n−k−1) + (n−k−1) +
//! C(n−k−1, 2)` — cubic in `n`, with a wide middle, the shape that
//! stresses replication-induced processor pressure.

use crate::graph::{Dag, DagBuilder, TaskId};
use std::collections::HashMap;

/// Builds the tiled-Cholesky DAG for an `n × n` tile grid (`n ≥ 2`).
///
/// Kernel work follows the classic flop ratios (`POTRF` 1/3, `TRSM` 1,
/// `SYRK` 1, `GEMM` 2 — scaled by `work_scale`); every dependency ships
/// one tile of `volume` units.
pub fn cholesky(n: usize, work_scale: f64, volume: f64) -> Dag {
    assert!(n >= 2, "need at least a 2x2 tile grid");
    let mut b = DagBuilder::new();

    // Last writer of each tile (i, j), i >= j.
    let mut writer: HashMap<(usize, usize), TaskId> = HashMap::new();

    let dep = |b: &mut DagBuilder, from: TaskId, to: TaskId, seen: &mut Vec<TaskId>| {
        // Deduplicate multi-edges from the same producer.
        if !seen.contains(&from) {
            b.add_edge(from, to, volume);
            seen.push(from);
        }
    };

    for k in 0..n {
        let potrf = b.add_labelled_task(work_scale / 3.0, format!("potrf({k})"));
        {
            let mut seen = Vec::new();
            if let Some(&w) = writer.get(&(k, k)) {
                dep(&mut b, w, potrf, &mut seen);
            }
        }
        writer.insert((k, k), potrf);

        let mut trsm = Vec::new();
        for i in k + 1..n {
            let t = b.add_labelled_task(work_scale, format!("trsm({k},{i})"));
            let mut seen = Vec::new();
            dep(&mut b, potrf, t, &mut seen);
            if let Some(&w) = writer.get(&(i, k)) {
                dep(&mut b, w, t, &mut seen);
            }
            writer.insert((i, k), t);
            trsm.push((i, t));
        }

        for &(i, ti) in &trsm {
            // SYRK updates the diagonal tile (i, i).
            let s = b.add_labelled_task(work_scale, format!("syrk({k},{i})"));
            let mut seen = Vec::new();
            dep(&mut b, ti, s, &mut seen);
            if let Some(&w) = writer.get(&(i, i)) {
                dep(&mut b, w, s, &mut seen);
            }
            writer.insert((i, i), s);

            // GEMM updates tiles (i, j) for k < j < i.
            for &(j, tj) in trsm.iter().filter(|&&(j, _)| j < i) {
                let g = b.add_labelled_task(2.0 * work_scale, format!("gemm({k},{i},{j})"));
                let mut seen = Vec::new();
                dep(&mut b, ti, g, &mut seen);
                dep(&mut b, tj, g, &mut seen);
                if let Some(&w) = writer.get(&(i, j)) {
                    dep(&mut b, w, g, &mut seen);
                }
                writer.insert((i, j), g);
            }
        }
    }

    b.build().expect("cholesky DAG is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::stats;
    use crate::topology::is_weakly_connected;

    fn kernel_count(n: usize) -> usize {
        // Σ_k [1 + (n-k-1) + (n-k-1) + C(n-k-1, 2)]
        (0..n)
            .map(|k| {
                let r = n - k - 1;
                1 + 2 * r + r * (r.saturating_sub(1)) / 2
            })
            .sum()
    }

    #[test]
    fn task_counts_match_formula() {
        for n in [2, 3, 4, 6] {
            let g = cholesky(n, 3.0, 10.0);
            assert_eq!(g.num_tasks(), kernel_count(n), "n={n}");
            assert!(is_weakly_connected(&g));
        }
    }

    #[test]
    fn single_entry_single_exit() {
        let g = cholesky(5, 3.0, 10.0);
        // potrf(0) is the only entry; potrf(n-1) the only exit.
        assert_eq!(g.entries().len(), 1);
        assert_eq!(g.exits().len(), 1);
        assert_eq!(g.label(g.entries()[0]), Some("potrf(0)"));
        assert_eq!(g.label(g.exits()[0]), Some("potrf(4)"));
    }

    #[test]
    fn gemm_has_double_work() {
        let g = cholesky(4, 3.0, 10.0);
        let gemm_work = g
            .tasks()
            .find(|&t| g.label(t).is_some_and(|l| l.starts_with("gemm")))
            .map(|t| g.work(t))
            .unwrap();
        assert_eq!(gemm_work, 6.0);
    }

    #[test]
    fn depth_grows_linearly() {
        let s4 = stats(&cholesky(4, 1.0, 1.0));
        let s8 = stats(&cholesky(8, 1.0, 1.0));
        assert!(s8.depth > s4.depth);
        assert!(s8.depth <= 4 * 8, "depth is O(n)");
    }

    #[test]
    fn no_duplicate_edges() {
        // DagBuilder would reject duplicates at build time; reaching here
        // means the writer-tracking logic deduplicated correctly.
        let g = cholesky(6, 1.0, 1.0);
        let mut seen = std::collections::HashSet::new();
        for (_, s, d, _) in g.edge_list() {
            assert!(seen.insert((s, d)));
        }
    }
}
