//! FFT butterfly task graph.
//!
//! A radix-2 FFT over `n = 2^k` points: one input task per point, then
//! `log2 n` butterfly stages of `n` tasks each. Stage `s` task `i` reads
//! from stage `s−1` tasks `i` and `i XOR 2^s` — the classic butterfly
//! wiring, which gives a width-`n`, depth-`log n + 1` DAG.

use crate::graph::{Dag, DagBuilder, TaskId};

/// Builds the FFT butterfly DAG for `n` points (`n` must be a power of
/// two, `n >= 2`). Each butterfly costs `work`, each dependency carries
/// `volume` units of data.
pub fn fft(n: usize, work: f64, volume: f64) -> Dag {
    assert!(
        n >= 2 && n.is_power_of_two(),
        "n must be a power of two >= 2"
    );
    let stages = n.trailing_zeros() as usize;
    let mut b = DagBuilder::with_capacity(n * (stages + 1), 2 * n * stages);

    let mut prev: Vec<TaskId> = (0..n)
        .map(|i| b.add_labelled_task(work, format!("in({i})")))
        .collect();

    for s in 0..stages {
        let cur: Vec<TaskId> = (0..n)
            .map(|i| b.add_labelled_task(work, format!("bfly({s},{i})")))
            .collect();
        let stride = 1usize << s;
        for i in 0..n {
            b.add_edge(prev[i], cur[i], volume);
            b.add_edge(prev[i ^ stride], cur[i], volume);
        }
        prev = cur;
    }

    b.build().expect("butterfly DAG is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{width_lower_bound, DagStats};
    use crate::topology::{is_weakly_connected, levels};

    #[test]
    fn counts() {
        let g = fft(8, 1.0, 1.0);
        // 8 inputs + 3 stages of 8 = 32 tasks; 2*8*3 = 48 edges.
        assert_eq!(g.num_tasks(), 32);
        assert_eq!(g.num_edges(), 48);
        assert!(is_weakly_connected(&g));
    }

    #[test]
    fn depth_is_stages_plus_one() {
        let g = fft(16, 1.0, 1.0);
        let lv = levels(&g);
        assert_eq!(lv.iter().max(), Some(&4)); // log2(16) stages
    }

    #[test]
    fn width_is_n() {
        let g = fft(8, 1.0, 1.0);
        assert_eq!(width_lower_bound(&g), 8);
    }

    #[test]
    fn entries_and_exits() {
        let g = fft(4, 1.0, 1.0);
        assert_eq!(g.entries().len(), 4);
        assert_eq!(g.exits().len(), 4);
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two() {
        let _ = fft(6, 1.0, 1.0);
    }

    #[test]
    fn stats_type_usable() {
        let g = fft(4, 2.0, 3.0);
        let s: DagStats = crate::metrics::stats(&g);
        assert_eq!(s.total_work, 2.0 * 12.0);
        assert_eq!(s.total_volume, 3.0 * 16.0);
    }
}
