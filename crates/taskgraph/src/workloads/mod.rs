//! Structured application task graphs.
//!
//! These are the classic kernels the heterogeneous-scheduling literature
//! motivates (linear algebra factorizations, FFTs, stencil sweeps,
//! map–reduce) and they back the runnable examples and the extended
//! benchmarks: their regular structure makes scheduler behaviour easy to
//! reason about, while their widths/depths stress different parts of the
//! algorithms than random layered graphs do.

mod cholesky;
mod fft;
mod gauss;
mod mapreduce;
mod stencil;
mod wavefront;

pub use cholesky::cholesky;
pub use fft::fft;
pub use gauss::gaussian_elimination;
pub use mapreduce::map_reduce;
pub use stencil::stencil_1d;
pub use wavefront::wavefront;
