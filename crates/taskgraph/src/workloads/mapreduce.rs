//! Map–reduce task graph: splitter → mappers → (all-to-all shuffle) →
//! reducers → collector. The shuffle creates the dense communication
//! pattern where MC-FTSA's message reduction matters most.

use crate::graph::{Dag, DagBuilder};

/// Builds a map–reduce DAG with the given fan-outs. `map_work` /
/// `reduce_work` set task costs; `shuffle_volume` is the per-pair shuffle
/// payload.
pub fn map_reduce(
    mappers: usize,
    reducers: usize,
    map_work: f64,
    reduce_work: f64,
    shuffle_volume: f64,
) -> Dag {
    assert!(mappers >= 1 && reducers >= 1);
    let mut b = DagBuilder::with_capacity(
        mappers + reducers + 2,
        mappers + mappers * reducers + reducers,
    );
    let split = b.add_labelled_task(map_work * 0.1, "split");
    let maps: Vec<_> = (0..mappers)
        .map(|i| {
            let t = b.add_labelled_task(map_work, format!("map({i})"));
            b.add_edge(split, t, shuffle_volume);
            t
        })
        .collect();
    let reds: Vec<_> = (0..reducers)
        .map(|i| b.add_labelled_task(reduce_work, format!("reduce({i})")))
        .collect();
    for &m in &maps {
        for &r in &reds {
            b.add_edge(m, r, shuffle_volume);
        }
    }
    let collect = b.add_labelled_task(reduce_work * 0.1, "collect");
    for &r in &reds {
        b.add_edge(r, collect, shuffle_volume);
    }
    b.build().expect("map-reduce DAG is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::width_exact;
    use crate::topology::is_weakly_connected;

    #[test]
    fn counts() {
        let g = map_reduce(4, 3, 10.0, 20.0, 5.0);
        assert_eq!(g.num_tasks(), 4 + 3 + 2);
        assert_eq!(g.num_edges(), 4 + 12 + 3);
        assert!(is_weakly_connected(&g));
        assert_eq!(g.entries().len(), 1);
        assert_eq!(g.exits().len(), 1);
    }

    #[test]
    fn width_is_max_stage() {
        let g = map_reduce(6, 2, 1.0, 1.0, 1.0);
        assert_eq!(width_exact(&g), 6);
    }

    #[test]
    fn shuffle_is_all_to_all() {
        let g = map_reduce(3, 3, 1.0, 1.0, 7.0);
        let shuffle_edges = g
            .edge_list()
            .filter(|&(_, s, d, _)| {
                g.label(s).is_some_and(|l| l.starts_with("map"))
                    && g.label(d).is_some_and(|l| l.starts_with("reduce"))
            })
            .count();
        assert_eq!(shuffle_edges, 9);
    }
}
