//! 1-D stencil (iterative relaxation) task graph.
//!
//! `width` cells iterated for `steps` time steps: task `(x, s)` depends on
//! `(x−1, s−1)`, `(x, s−1)`, `(x+1, s−1)` — a Jacobi/Laplace sweep. The
//! DAG has width `width` and depth `steps`, with mostly-local
//! communication, the regime where granularity dominates scheduling
//! decisions.

use crate::graph::{Dag, DagBuilder, TaskId};

/// Builds a `width × steps` 1-D stencil DAG. Each task costs `work`;
/// each dependency ships `volume` units.
pub fn stencil_1d(width: usize, steps: usize, work: f64, volume: f64) -> Dag {
    assert!(width >= 1 && steps >= 1);
    let mut b = DagBuilder::with_capacity(width * steps, width * steps * 3);
    let mut prev: Vec<TaskId> = (0..width)
        .map(|x| b.add_labelled_task(work, format!("cell({x},0)")))
        .collect();
    for s in 1..steps {
        let cur: Vec<TaskId> = (0..width)
            .map(|x| b.add_labelled_task(work, format!("cell({x},{s})")))
            .collect();
        for (x, &cell) in cur.iter().enumerate() {
            let lo = x.saturating_sub(1);
            let hi = (x + 1).min(width - 1);
            for &nb in &prev[lo..=hi] {
                b.add_edge(nb, cell, volume);
            }
        }
        prev = cur;
    }
    b.build().expect("stencil DAG is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::width_lower_bound;
    use crate::topology::{is_weakly_connected, levels};

    #[test]
    fn counts() {
        let g = stencil_1d(5, 4, 1.0, 1.0);
        assert_eq!(g.num_tasks(), 20);
        // Interior cells have 3 preds, border cells 2: per step 3*3+2*2=13.
        assert_eq!(g.num_edges(), 13 * 3);
        assert!(is_weakly_connected(&g));
    }

    #[test]
    fn depth_and_width() {
        let g = stencil_1d(6, 3, 1.0, 1.0);
        let lv = levels(&g);
        assert_eq!(lv.iter().max(), Some(&2));
        assert_eq!(width_lower_bound(&g), 6);
    }

    #[test]
    fn single_cell_chain() {
        let g = stencil_1d(1, 5, 1.0, 1.0);
        assert_eq!(g.num_tasks(), 5);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn single_step_antichain() {
        let g = stencil_1d(4, 1, 1.0, 1.0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.entries().len(), 4);
    }
}
