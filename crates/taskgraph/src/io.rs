//! Graph I/O: Graphviz DOT export and JSON (de)serialization.

use crate::graph::Dag;
use std::fmt::Write as _;

/// Renders the DAG in Graphviz DOT syntax. Node labels show the task id
/// (or its workload label) and work; edge labels show the data volume.
pub fn to_dot(dag: &Dag) -> String {
    let mut out = String::with_capacity(64 * dag.num_tasks());
    out.push_str("digraph taskgraph {\n  rankdir=TB;\n  node [shape=ellipse];\n");
    for t in dag.tasks() {
        let name = dag.label(t).map_or_else(|| t.to_string(), str::to_owned);
        let _ = writeln!(
            out,
            "  {} [label=\"{}\\nw={:.1}\"];",
            t.index(),
            name,
            dag.work(t)
        );
    }
    for (_, s, d, v) in dag.edge_list() {
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{:.0}\"];",
            s.index(),
            d.index(),
            v
        );
    }
    out.push_str("}\n");
    out
}

/// Serializes the DAG to a JSON string.
pub fn to_json(dag: &Dag) -> serde_json::Result<String> {
    serde_json::to_string_pretty(dag)
}

/// Deserializes a DAG from JSON produced by [`to_json`].
pub fn from_json(s: &str) -> serde_json::Result<Dag> {
    serde_json::from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DagBuilder;

    fn tiny() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.add_labelled_task(1.5, "start");
        let c = b.add_task(2.5);
        b.add_edge(a, c, 42.0);
        b.build().unwrap()
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let dot = to_dot(&tiny());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("start"));
        assert!(dot.contains("0 -> 1"));
        assert!(dot.contains("42"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn json_round_trip_preserves_structure() {
        let g = tiny();
        let s = to_json(&g).unwrap();
        let g2 = from_json(&s).unwrap();
        assert_eq!(g2.num_tasks(), 2);
        assert_eq!(g2.num_edges(), 1);
        assert_eq!(g2.label(crate::TaskId(0)), Some("start"));
        assert_eq!(g2.volume(crate::EdgeId(0)), 42.0);
        // Topological order must survive the trip.
        assert_eq!(g2.topological_order(), g.topological_order());
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(from_json("{not json").is_err());
    }
}
