//! Fork–join DAGs: alternating fan-out and fan-in stages, the shape of
//! bulk-synchronous parallel phases.

use super::Range;
use crate::graph::{Dag, DagBuilder};
use rand::Rng;

/// Configuration for [`fork_join`].
#[derive(Debug, Clone)]
pub struct ForkJoinConfig {
    /// Number of fork–join stages.
    pub stages: usize,
    /// Parallel branches per stage.
    pub width: usize,
    /// Distribution of raw task work.
    pub work: Range,
    /// Distribution of edge data volumes.
    pub volumes: Range,
}

impl ForkJoinConfig {
    /// A `stages × width` pipeline with unit-ish weights.
    pub fn new(stages: usize, width: usize) -> Self {
        ForkJoinConfig {
            stages,
            width,
            work: Range::new(10.0, 100.0),
            volumes: Range::new(50.0, 150.0),
        }
    }
}

/// Generates `source → (width parallel tasks) → join → …` for the given
/// number of stages. Total tasks: `stages * (width + 1) + 1`.
pub fn fork_join(rng: &mut impl Rng, cfg: &ForkJoinConfig) -> Dag {
    assert!(cfg.stages > 0 && cfg.width > 0);
    let mut b =
        DagBuilder::with_capacity(cfg.stages * (cfg.width + 1) + 1, cfg.stages * cfg.width * 2);
    let mut hub = b.add_labelled_task(cfg.work.sample(rng), "source");
    for s in 0..cfg.stages {
        let join = {
            let branches: Vec<_> = (0..cfg.width)
                .map(|i| {
                    let t = b.add_labelled_task(cfg.work.sample(rng), format!("s{s}b{i}"));
                    b.add_edge(hub, t, cfg.volumes.sample(rng));
                    t
                })
                .collect();
            let join = b.add_labelled_task(cfg.work.sample(rng), format!("join{s}"));
            for t in branches {
                b.add_edge(t, join, cfg.volumes.sample(rng));
            }
            join
        };
        hub = join;
    }
    b.build().expect("fork-join construction is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{width_exact, width_lower_bound};
    use crate::topology::is_weakly_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = fork_join(&mut rng, &ForkJoinConfig::new(3, 5));
        assert_eq!(g.num_tasks(), 3 * 6 + 1);
        assert_eq!(g.num_edges(), 3 * 5 * 2);
        assert!(is_weakly_connected(&g));
        assert_eq!(g.entries().len(), 1);
        assert_eq!(g.exits().len(), 1);
    }

    #[test]
    fn width_equals_branch_width() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = fork_join(&mut rng, &ForkJoinConfig::new(2, 7));
        assert_eq!(width_exact(&g), 7);
        assert_eq!(width_lower_bound(&g), 7);
    }

    #[test]
    fn labels_present() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = fork_join(&mut rng, &ForkJoinConfig::new(1, 2));
        let labels: Vec<_> = g.tasks().filter_map(|t| g.label(t)).collect();
        assert!(labels.contains(&"source"));
        assert!(labels.contains(&"join0"));
    }
}
