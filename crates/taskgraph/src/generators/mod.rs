//! Random task-graph generators.
//!
//! The paper's evaluation (Section 6) uses "randomly generated graphs,
//! whose parameters are consistent with those used in the literature":
//! task counts uniform in `[100, 150]`, message volumes uniform in
//! `[50, 150]`, and granularity calibrated afterwards against the platform
//! (see the platform crate). The layered generator is the classic shape
//! used throughout the list-scheduling literature; Erdős–Rényi-style and
//! fork–join generators cover sparser/denser and more structured regimes.

mod erdos;
mod fork_join;
mod layered;
mod series_parallel;

pub use erdos::{erdos, ErdosConfig};
pub use fork_join::{fork_join, ForkJoinConfig};
pub use layered::{layered, LayeredConfig};
pub use series_parallel::{series_parallel, SeriesParallelConfig};

use crate::graph::{Dag, DagBuilder, TaskId};
use crate::topology::levels;
use rand::Rng;

/// Inclusive range helper for drawing uniform values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Range {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

impl Range {
    /// Creates a range; requires `lo <= hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi && lo.is_finite() && hi.is_finite());
        Range { lo, hi }
    }

    /// Draws a uniform sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        if self.lo == self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..=self.hi)
        }
    }
}

/// The paper's message-volume distribution `U[50, 150]`.
pub const PAPER_VOLUMES: Range = Range {
    lo: 50.0,
    hi: 150.0,
};

/// Raw task work distribution used before granularity calibration.
pub const DEFAULT_WORK: Range = Range {
    lo: 10.0,
    hi: 100.0,
};

/// Connects a possibly-disconnected layered DAG into one weak component by
/// adding forward edges between components, respecting the level order so
/// the result stays acyclic. Returns the connected DAG.
pub(crate) fn connect_components(dag: Dag, rng: &mut impl Rng, volumes: Range) -> Dag {
    let n = dag.num_tasks();
    if n <= 1 {
        return dag;
    }
    // Union-find over the undirected skeleton.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let union = |parent: &mut [usize], a: usize, b: usize| {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            parent[ra] = rb;
        }
    };
    for (_, s, d, _) in dag.edge_list() {
        union(&mut parent, s.index(), d.index());
    }
    let lv = levels(&dag);
    let roots: Vec<usize> = (0..n).map(|i| find(&mut parent, i)).collect();
    let distinct: std::collections::HashSet<usize> = roots.iter().copied().collect();
    if distinct.len() == 1 {
        return dag;
    }

    // Rebuild with extra linking edges: attach every secondary component to
    // the component of task 0 via a level-respecting edge.
    let mut b = DagBuilder::with_capacity(n, dag.num_edges() + distinct.len());
    for t in dag.tasks() {
        b.add_task(dag.work(t));
    }
    for (_, s, d, v) in dag.edge_list() {
        b.add_edge(s, d, v);
    }
    let main_root = roots[0];
    // Representatives of each non-main component.
    let mut reps: Vec<usize> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (i, &r) in roots.iter().enumerate() {
        if r != main_root && seen.insert(r) {
            reps.push(i);
        }
    }
    // Collect main-component members once.
    let main_members: Vec<usize> = (0..n).filter(|&i| roots[i] == main_root).collect();
    for rep in reps {
        // Pick a main-component node at a strictly different level; edge
        // direction follows the level order, so no cycle can form.
        let candidates: Vec<usize> = main_members
            .iter()
            .copied()
            .filter(|&mmm| lv[mmm] != lv[rep])
            .collect();
        let (src, dst) = if let Some(&mm) = pick(rng, &candidates) {
            if lv[mm] < lv[rep] {
                (mm, rep)
            } else {
                (rep, mm)
            }
        } else {
            // Entire main component sits on the same level as `rep` (an
            // antichain); a direct edge is still acyclic.
            let mm = *pick(rng, &main_members).expect("main component nonempty");
            (rep, mm)
        };
        b.add_edge(TaskId(src as u32), TaskId(dst as u32), volumes.sample(rng));
    }
    b.build()
        .expect("level-respecting extra edges keep the DAG acyclic")
}

fn pick<'a, T>(rng: &mut impl Rng, xs: &'a [T]) -> Option<&'a T> {
    if xs.is_empty() {
        None
    } else {
        Some(&xs[rng.gen_range(0..xs.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn range_sampling_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = Range::new(2.0, 5.0);
        for _ in 0..100 {
            let x = r.sample(&mut rng);
            assert!((2.0..=5.0).contains(&x));
        }
        let point = Range::new(3.0, 3.0);
        assert_eq!(point.sample(&mut rng), 3.0);
    }

    #[test]
    fn connect_components_links_everything() {
        use crate::graph::DagBuilder;
        use crate::topology::is_weakly_connected;
        // Three disjoint chains.
        let mut b = DagBuilder::new();
        for _ in 0..3 {
            let a = b.add_task(1.0);
            let c = b.add_task(1.0);
            b.add_edge(a, c, 1.0);
        }
        let g = b.build().unwrap();
        assert!(!is_weakly_connected(&g));
        let mut rng = StdRng::seed_from_u64(7);
        let g2 = connect_components(g, &mut rng, Range::new(1.0, 1.0));
        assert!(is_weakly_connected(&g2));
        assert_eq!(g2.num_tasks(), 6);
        assert!(g2.num_edges() >= 5);
    }

    #[test]
    fn connect_antichain() {
        use crate::graph::DagBuilder;
        use crate::topology::is_weakly_connected;
        let mut b = DagBuilder::new();
        for _ in 0..4 {
            b.add_task(1.0);
        }
        let g = b.build().unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let g2 = connect_components(g, &mut rng, Range::new(1.0, 1.0));
        assert!(is_weakly_connected(&g2));
    }
}
