//! Layered random DAGs — the workhorse of the scheduling literature.
//!
//! Tasks are partitioned into consecutive layers; every non-entry task
//! draws 1–`max_in_degree` predecessors from the `locality` preceding
//! layers. The result is weakly connected (a post-pass links stray
//! components with level-respecting edges).

use super::{connect_components, Range, DEFAULT_WORK, PAPER_VOLUMES};
use crate::graph::{Dag, DagBuilder, TaskId};
use rand::Rng;

/// Configuration for [`layered`].
#[derive(Debug, Clone)]
pub struct LayeredConfig {
    /// Total number of tasks.
    pub tasks: usize,
    /// Mean layer width; actual widths are uniform in `[1, 2·mean − 1]`.
    pub mean_width: usize,
    /// Maximum number of predecessors drawn per non-entry task.
    pub max_in_degree: usize,
    /// How many preceding layers a task may draw predecessors from.
    pub locality: usize,
    /// Distribution of raw task work (calibrated later for granularity).
    pub work: Range,
    /// Distribution of edge data volumes.
    pub volumes: Range,
}

impl LayeredConfig {
    /// Paper-style configuration for a graph of `tasks` tasks: mean width
    /// `√tasks`, up to 4 predecessors, locality 3, volumes `U[50, 150]`.
    pub fn paper(tasks: usize) -> Self {
        let mean_width = (tasks as f64).sqrt().round().max(2.0) as usize;
        LayeredConfig {
            tasks,
            mean_width,
            max_in_degree: 4,
            locality: 3,
            work: DEFAULT_WORK,
            volumes: PAPER_VOLUMES,
        }
    }
}

/// Generates a layered random DAG.
pub fn layered(rng: &mut impl Rng, cfg: &LayeredConfig) -> Dag {
    assert!(cfg.tasks > 0, "need at least one task");
    assert!(cfg.mean_width > 0 && cfg.max_in_degree > 0 && cfg.locality > 0);

    // Partition tasks into layers.
    let mut layer_of: Vec<Vec<TaskId>> = Vec::new();
    let mut b = DagBuilder::with_capacity(cfg.tasks, cfg.tasks * 2);
    let mut remaining = cfg.tasks;
    while remaining > 0 {
        let hi = (2 * cfg.mean_width).saturating_sub(1).max(1);
        let width = rng.gen_range(1..=hi).min(remaining);
        let layer: Vec<TaskId> = (0..width)
            .map(|_| b.add_task(cfg.work.sample(rng)))
            .collect();
        layer_of.push(layer);
        remaining -= width;
    }

    // Draw predecessors for every task beyond layer 0.
    for li in 1..layer_of.len() {
        let lo_layer = li.saturating_sub(cfg.locality);
        let pool: Vec<TaskId> = layer_of[lo_layer..li].iter().flatten().copied().collect();
        for &t in &layer_of[li] {
            let k = rng.gen_range(1..=cfg.max_in_degree).min(pool.len());
            // Partial Fisher–Yates over a scratch copy for distinct picks.
            let mut scratch = pool.clone();
            for i in 0..k {
                let j = rng.gen_range(i..scratch.len());
                scratch.swap(i, j);
                b.add_edge(scratch[i], t, cfg.volumes.sample(rng));
            }
        }
    }

    let dag = b
        .build()
        .expect("layered construction is acyclic by layer order");
    connect_components(dag, rng, cfg.volumes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{is_weakly_connected, levels};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn respects_task_count() {
        let mut rng = StdRng::seed_from_u64(42);
        for tasks in [1, 2, 17, 100, 137] {
            let g = layered(&mut rng, &LayeredConfig::paper(tasks));
            assert_eq!(g.num_tasks(), tasks);
        }
    }

    #[test]
    fn connected_and_acyclic() {
        let mut rng = StdRng::seed_from_u64(7);
        for seed in 0..20 {
            let mut r2 = StdRng::seed_from_u64(seed);
            let g = layered(&mut r2, &LayeredConfig::paper(120));
            assert!(is_weakly_connected(&g), "seed {seed}");
            assert_eq!(g.topological_order().len(), g.num_tasks());
            let _ = &mut rng;
        }
    }

    #[test]
    fn volumes_and_work_within_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = LayeredConfig::paper(100);
        let g = layered(&mut rng, &cfg);
        for t in g.tasks() {
            assert!(g.work(t) >= cfg.work.lo && g.work(t) <= cfg.work.hi);
        }
        for (_, _, _, v) in g.edge_list() {
            assert!((cfg.volumes.lo..=cfg.volumes.hi).contains(&v));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g1 = layered(&mut StdRng::seed_from_u64(9), &LayeredConfig::paper(80));
        let g2 = layered(&mut StdRng::seed_from_u64(9), &LayeredConfig::paper(80));
        assert_eq!(g1.num_edges(), g2.num_edges());
        let e1: Vec<_> = g1.edge_list().collect();
        let e2: Vec<_> = g2.edge_list().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn locality_bounds_edge_span() {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = LayeredConfig {
            locality: 1,
            ..LayeredConfig::paper(90)
        };
        let g = layered(&mut rng, &cfg);
        // With locality 1, in the pre-connection graph every edge spans
        // exactly one layer. The connection pass may add longer edges, so
        // only check that *most* edges are short.
        let lv = levels(&g);
        let short = g
            .edge_list()
            .filter(|(_, s, d, _)| lv[d.index()] - lv[s.index()] <= 1)
            .count();
        assert!(short * 10 >= g.num_edges() * 9);
    }

    #[test]
    fn single_task() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = layered(&mut rng, &LayeredConfig::paper(1));
        assert_eq!(g.num_tasks(), 1);
        assert_eq!(g.num_edges(), 0);
    }
}
