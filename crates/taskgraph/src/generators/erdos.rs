//! Erdős–Rényi-style random DAGs: a random topological permutation with
//! independent forward edges.

use super::{connect_components, Range, DEFAULT_WORK, PAPER_VOLUMES};
use crate::graph::{Dag, DagBuilder, TaskId};
use rand::Rng;

/// Configuration for [`erdos`].
#[derive(Debug, Clone)]
pub struct ErdosConfig {
    /// Total number of tasks.
    pub tasks: usize,
    /// Probability of each forward pair `(i, j)` being an edge.
    pub edge_prob: f64,
    /// Cap on the out-degree of a task (keeps dense instances bounded);
    /// `usize::MAX` disables the cap.
    pub max_out_degree: usize,
    /// Distribution of raw task work.
    pub work: Range,
    /// Distribution of edge data volumes.
    pub volumes: Range,
}

impl ErdosConfig {
    /// Sparse default: expected out-degree ≈ 3, paper-style volumes.
    pub fn sparse(tasks: usize) -> Self {
        ErdosConfig {
            tasks,
            edge_prob: (3.0 / tasks.max(2) as f64).min(1.0),
            max_out_degree: 8,
            work: DEFAULT_WORK,
            volumes: PAPER_VOLUMES,
        }
    }
}

/// Generates a random DAG by sampling forward edges over a random
/// permutation of the tasks, then connecting stray components.
pub fn erdos(rng: &mut impl Rng, cfg: &ErdosConfig) -> Dag {
    assert!(cfg.tasks > 0);
    assert!((0.0..=1.0).contains(&cfg.edge_prob));

    let mut b = DagBuilder::with_capacity(cfg.tasks, cfg.tasks * 4);
    let ids: Vec<TaskId> = (0..cfg.tasks)
        .map(|_| b.add_task(cfg.work.sample(rng)))
        .collect();

    // Random topological permutation.
    let mut order: Vec<usize> = (0..cfg.tasks).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }

    for i in 0..cfg.tasks {
        let mut out = 0usize;
        for j in (i + 1)..cfg.tasks {
            if out >= cfg.max_out_degree {
                break;
            }
            if rng.gen_bool(cfg.edge_prob) {
                b.add_edge(ids[order[i]], ids[order[j]], cfg.volumes.sample(rng));
                out += 1;
            }
        }
    }

    let dag = b
        .build()
        .expect("forward edges over a permutation are acyclic");
    connect_components(dag, rng, cfg.volumes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::is_weakly_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn basic_properties() {
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = erdos(&mut rng, &ErdosConfig::sparse(100));
            assert_eq!(g.num_tasks(), 100);
            assert!(is_weakly_connected(&g));
            assert_eq!(g.topological_order().len(), 100);
        }
    }

    #[test]
    fn out_degree_cap_respected_before_connection() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = ErdosConfig {
            tasks: 60,
            edge_prob: 0.9,
            max_out_degree: 3,
            work: Range::new(1.0, 1.0),
            volumes: Range::new(1.0, 1.0),
        };
        let g = erdos(&mut rng, &cfg);
        // Connection pass may add a handful of extra edges; allow slack 1.
        for t in g.tasks() {
            assert!(g.out_degree(t) <= 4, "task {t} exceeds capped degree");
        }
    }

    #[test]
    fn zero_probability_still_connects() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = ErdosConfig {
            edge_prob: 0.0,
            ..ErdosConfig::sparse(20)
        };
        let g = erdos(&mut rng, &cfg);
        assert!(is_weakly_connected(&g));
        // Connecting 20 isolated nodes takes >= 19 edges.
        assert!(g.num_edges() >= 19);
    }

    #[test]
    fn dense_graph_has_many_edges() {
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = ErdosConfig {
            tasks: 30,
            edge_prob: 0.5,
            max_out_degree: usize::MAX,
            work: DEFAULT_WORK,
            volumes: PAPER_VOLUMES,
        };
        let g = erdos(&mut rng, &cfg);
        assert!(g.num_edges() > 100);
    }
}
