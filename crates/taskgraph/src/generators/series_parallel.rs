//! Random series–parallel DAGs.
//!
//! Built by recursive composition starting from a single edge: a
//! component is either a *series* composition (two components chained)
//! or a *parallel* composition (two components sharing endpoints).
//! Series–parallel graphs are a classic benchmark family in the
//! scheduling literature; their recursive structure gives schedulers
//! clean join points that random layered graphs lack.

use super::Range;
use crate::graph::{Dag, DagBuilder, TaskId};
use rand::Rng;

/// Configuration for [`series_parallel`].
#[derive(Debug, Clone)]
pub struct SeriesParallelConfig {
    /// Approximate number of tasks (the recursion stops once reached;
    /// actual counts land within a small factor).
    pub target_tasks: usize,
    /// Probability of a parallel (vs series) composition at each step.
    pub parallel_prob: f64,
    /// Distribution of raw task work.
    pub work: Range,
    /// Distribution of edge data volumes.
    pub volumes: Range,
}

impl SeriesParallelConfig {
    /// Balanced default: equal series/parallel mix.
    pub fn new(target_tasks: usize) -> Self {
        SeriesParallelConfig {
            target_tasks,
            parallel_prob: 0.5,
            work: Range::new(10.0, 100.0),
            volumes: Range::new(50.0, 150.0),
        }
    }
}

/// Generates a random series–parallel DAG with a single entry and a
/// single exit.
pub fn series_parallel(rng: &mut impl Rng, cfg: &SeriesParallelConfig) -> Dag {
    assert!(cfg.target_tasks >= 2);
    assert!((0.0..=1.0).contains(&cfg.parallel_prob));
    let mut b = DagBuilder::new();
    let source = b.add_task(cfg.work.sample(rng));
    let sink = b.add_task(cfg.work.sample(rng));
    expand(
        rng,
        cfg,
        &mut b,
        source,
        sink,
        cfg.target_tasks.saturating_sub(2),
    );
    b.build().expect("series-parallel construction is acyclic")
}

/// Recursively expands the component between `from` and `to` using up to
/// `budget` additional tasks.
fn expand(
    rng: &mut impl Rng,
    cfg: &SeriesParallelConfig,
    b: &mut DagBuilder,
    from: TaskId,
    to: TaskId,
    budget: usize,
) {
    if budget == 0 {
        b.add_edge(from, to, cfg.volumes.sample(rng));
        return;
    }
    if rng.gen_bool(cfg.parallel_prob) {
        // Parallel: split the budget over 2 branches sharing (from, to).
        // Each branch gets an intermediate node so the two branches stay
        // distinct edges.
        let left_budget = rng.gen_range(0..=budget.saturating_sub(1));
        let right_budget = budget - 1 - left_budget.min(budget - 1);
        let mid = b.add_task(cfg.work.sample(rng));
        expand(rng, cfg, b, from, mid, left_budget.min(budget - 1));
        b.add_edge(mid, to, cfg.volumes.sample(rng));
        if right_budget == 0 {
            // Second branch may collapse to a direct edge — allowed only
            // if no such edge exists yet; otherwise give it a node.
            let mid2 = b.add_task(cfg.work.sample(rng));
            b.add_edge(from, mid2, cfg.volumes.sample(rng));
            b.add_edge(mid2, to, cfg.volumes.sample(rng));
        } else {
            let mid2 = b.add_task(cfg.work.sample(rng));
            expand(rng, cfg, b, from, mid2, right_budget - 1);
            b.add_edge(mid2, to, cfg.volumes.sample(rng));
        }
    } else {
        // Series: from → mid → to, budget split across the two halves.
        let mid = b.add_task(cfg.work.sample(rng));
        let first = rng.gen_range(0..budget);
        expand(rng, cfg, b, from, mid, first);
        expand(rng, cfg, b, mid, to, budget - 1 - first);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::is_weakly_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_source_and_sink() {
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = series_parallel(&mut rng, &SeriesParallelConfig::new(50));
            assert_eq!(g.entries().len(), 1, "seed {seed}");
            assert_eq!(g.exits().len(), 1, "seed {seed}");
            assert!(is_weakly_connected(&g));
            assert_eq!(g.topological_order().len(), g.num_tasks());
        }
    }

    #[test]
    fn task_count_near_target() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = series_parallel(&mut rng, &SeriesParallelConfig::new(100));
        assert!(
            g.num_tasks() >= 50 && g.num_tasks() <= 300,
            "{}",
            g.num_tasks()
        );
    }

    #[test]
    fn all_series_is_a_chain() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = SeriesParallelConfig {
            parallel_prob: 0.0,
            ..SeriesParallelConfig::new(20)
        };
        let g = series_parallel(&mut rng, &cfg);
        // A pure series composition is a path: every node has in/out
        // degree at most 1.
        for t in g.tasks() {
            assert!(g.in_degree(t) <= 1);
            assert!(g.out_degree(t) <= 1);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = SeriesParallelConfig::new(40);
        let a = series_parallel(&mut StdRng::seed_from_u64(9), &cfg);
        let b = series_parallel(&mut StdRng::seed_from_u64(9), &cfg);
        assert_eq!(a.num_tasks(), b.num_tasks());
        assert_eq!(
            a.edge_list().collect::<Vec<_>>(),
            b.edge_list().collect::<Vec<_>>()
        );
    }

    #[test]
    fn minimum_size() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = series_parallel(&mut rng, &SeriesParallelConfig::new(2));
        assert_eq!(g.num_tasks(), 2);
        assert_eq!(g.num_edges(), 1);
    }
}
