//! Weighted precedence task graphs for fault-tolerant scheduling.
//!
//! The execution model of the FTSA paper (Section 2): a weighted DAG
//! `G = (V, E)` where nodes are tasks and edge `(t_i, t_j)` carries the
//! data volume `V(t_i, t_j)` that `t_i` must ship to `t_j`. Entry nodes
//! have no predecessors, exit nodes no successors. `Γ⁻(t)` / `Γ⁺(t)` are
//! immediate predecessors / successors; the *width* `ω` is the maximum
//! antichain size, which bounds the free list `|α| ≤ ω` in FTSA.
//!
//! Provided here, all built from scratch:
//!
//! * [`Dag`] — the graph representation: dense ids, edge volumes,
//!   abstract per-task work, and bidirectional adjacency in a flat CSR
//!   layout (`preds`/`succs` are O(1) slice views into one contiguous
//!   arena, in edge-insertion order; entry/exit sets and a topological
//!   order are precomputed at build time — see [`graph`]).
//! * [`generators`] — random DAGs: layered (the shape used in the paper's
//!   experiments and the scheduling literature), Erdős–Rényi-style, and
//!   fork–join families.
//! * [`workloads`] — structured application graphs: Gaussian elimination,
//!   FFT butterfly, 1-D stencil/wavefront sweeps, and map–reduce, used by
//!   the examples and extended benchmarks.
//! * [`metrics`] — critical paths, levels, exact width (via the matching
//!   crate), degree statistics.
//! * [`io`] — DOT export and JSON (de)serialization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod graph;
pub mod io;
pub mod metrics;
pub mod topology;
pub mod workloads;

pub use graph::{Dag, DagBuilder, EdgeId, TaskId};
