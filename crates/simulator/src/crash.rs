//! The event-queue crash-execution engine.
//!
//! # MC-FTSA delivery semantics
//!
//! For matched (MC-FTSA) communications two delivery policies are
//! offered, because Proposition 4.3 of the paper is a *per-edge*
//! statement: for every precedence edge, some selected communication
//! survives any `ε` failures. Composed across several predecessors it
//! does **not** guarantee that a single replica receives *all* its
//! inputs — one failed processor can starve different replicas of a task
//! through different predecessors' matchings (see the
//! `strict_semantics_composition_gap` test for a concrete instance).
//!
//! * [`FallbackPolicy::Strict`] — the literal reading: a replica only
//!   ever receives from its matched sender. Rare failure patterns can
//!   then lose a task even with `≤ ε` failures.
//! * [`FallbackPolicy::Rerouted`] (default for matched schedules) — when
//!   a matched sender is dead, the receiver accepts the first copy from
//!   any surviving replica of the predecessor. This models the natural
//!   runtime recovery (fail-stop senders are silent, so any functional
//!   system must re-route) and restores the Theorem 4.1 guarantee; the
//!   fault-free message count — the paper's `e(ε+1)` headline — is
//!   unchanged, since fallback messages flow only after a failure.
//!   Supported for fail-at-time-zero scenarios (the paper's experimental
//!   model).
//!
//! # Memory layout / zero-allocation replications
//!
//! All replay state lives in a [`CrashWorkspace`] as flat arrays indexed
//! by a dense *global replica id* (`rep_off[t] + k`) and a dense
//! *(replica, predecessor-slot)* id (`slot_off[rid] + slot`) — no nested
//! `Vec<Vec<…>>`, no per-replica allocation. Reusing the workspace
//! across runs makes everything after the first replication
//! allocation-free: [`simulate_replication_outcomes_into`] is the
//! sequential zero-allocation driver (pinned by the root
//! `tests/alloc_counter.rs` suite), and the parallel campaigns
//! ([`simulate_replications`], [`simulate_replication_outcomes`]) hand
//! each deterministic chunk of replications one workspace.

use ftcollections::{IndexedHeap, OrdF64};
use ftsched_core::{CommSelection, Schedule};
use platform::{FailureScenario, Instance};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use taskgraph::TaskId;

/// Delivery policy for matched (MC-FTSA) communications under failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackPolicy {
    /// Matched sender only (the paper's literal Proposition 4.3).
    Strict,
    /// Re-route to any surviving replica when the matched sender dies.
    Rerouted,
}

/// Status of a replica at the end of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaStatus {
    /// Completed successfully.
    Done,
    /// Never completed: hosted on a failed processor, killed mid-run, or
    /// starved of an input.
    Dead,
}

/// Whether the application survived the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimOutcome {
    /// Every task completed at least one replica.
    Completed,
    /// Some task lost all its replicas.
    Failed {
        /// The first task (by id) with no surviving replica.
        lost_task: TaskId,
    },
}

/// Result of a crash simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Achieved application latency: max over exit tasks of the earliest
    /// completed replica. `f64::INFINITY` when the outcome is `Failed`.
    pub latency: f64,
    /// Outcome of the run.
    pub outcome: SimOutcome,
    /// Per task, per replica: final status.
    pub status: Vec<Vec<ReplicaStatus>>,
    /// Per task, per replica: simulated `(start, finish)`; `None` for
    /// dead replicas.
    pub times: Vec<Vec<Option<(f64, f64)>>>,
    /// Number of events processed (diagnostics).
    pub events: usize,
}

impl SimResult {
    /// Simulated finish of the earliest completed replica of `t`.
    pub fn earliest_finish(&self, t: TaskId) -> Option<f64> {
        self.times[t.index()]
            .iter()
            .flatten()
            .map(|&(_, f)| f)
            .min_by(f64::total_cmp)
    }

    /// Whether the application completed.
    pub fn completed(&self) -> bool {
        matches!(self.outcome, SimOutcome::Completed)
    }
}

/// Scalar summary of one Monte-Carlo replication — everything the
/// campaign statistics need, with no per-replica payload (and therefore
/// no allocation per replication).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicationOutcome {
    /// Achieved latency (`f64::INFINITY` when a task was lost).
    pub latency: f64,
    /// The first task (by id) that lost every replica, if any.
    pub lost_task: Option<TaskId>,
    /// Number of events processed (diagnostics).
    pub events: usize,
}

impl ReplicationOutcome {
    /// Whether every task completed at least one replica.
    pub fn completed(&self) -> bool {
        self.lost_task.is_none()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Waiting,
    Running,
    Done,
    Dead,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Data for replica `(task, rep)` along predecessor slot `slot`.
    Arrival { task: TaskId, rep: u32, slot: u32 },
    /// Replica `(task, rep)` on processor `proc` completes.
    Finish { task: TaskId, rep: u32, proc: u32 },
}

const NO_SRC: u32 = u32::MAX;

/// Flat, reusable crash-replay state. See the [module docs](self) for
/// the layout; every buffer is cleared and refilled in place, so a
/// workspace driven over many replications (or many schedules of the
/// same shape) allocates nothing after its first run.
#[derive(Debug, Default)]
pub struct CrashWorkspace {
    // --- schedule/instance shape (rebuilt by `prepare`) -----------------
    /// Prefix sums of per-task replica counts; `rid = rep_off[t] + k`.
    rep_off: Vec<u32>,
    /// Prefix sums of per-replica predecessor-slot counts.
    slot_off: Vec<u32>,
    /// Hosting processor per global replica id.
    rep_proc: Vec<u32>,
    /// Slot of each edge within its destination's predecessor list.
    slot_of_edge: Vec<u32>,
    /// Matched schedules: prefix sums of per-edge destination replica
    /// counts into `matched_src`.
    matched_off: Vec<u32>,
    /// Matched schedules: per (edge, dst replica), the matched source
    /// replica index (`NO_SRC` when unmatched).
    matched_src: Vec<u32>,
    /// Flattened per-processor placement order (prefix offsets + items).
    order_off: Vec<u32>,
    order_items: Vec<(TaskId, u32)>,
    // --- per-run state ---------------------------------------------------
    fail_at: Vec<f64>,
    /// Per (replica, slot): first arrival received?
    satisfied: Vec<bool>,
    /// Per (replica, slot): potential senders that may still deliver.
    remaining: Vec<u32>,
    /// Per (replica, slot): has the matched sender died (rerouted mode)?
    matched_dead: Vec<bool>,
    satisfied_count: Vec<u32>,
    ready_time: Vec<f64>,
    phase: Vec<Phase>,
    times: Vec<Option<(f64, f64)>>,
    ptr: Vec<u32>,
    free_at: Vec<f64>,
    proc_dead: Vec<bool>,
    events: IndexedHeap<(OrdF64, usize)>,
    event_data: Vec<Event>,
    pending_advance: Vec<u32>,
    start_queue: Vec<(f64, TaskId, u32, u32)>,
    kill_work: Vec<(TaskId, u32)>,
    processed: usize,
    matched: bool,
    rerouted: bool,
    // --- replication-driver scratch --------------------------------------
    scenario: FailureScenario,
    ids: Vec<u32>,
}

impl CrashWorkspace {
    /// Creates an empty workspace; buffers are sized by the first run.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn rid(&self, t: TaskId, k: usize) -> usize {
        self.rep_off[t.index()] as usize + k
    }

    #[inline]
    fn reps(&self, t: TaskId) -> usize {
        (self.rep_off[t.index() + 1] - self.rep_off[t.index()]) as usize
    }

    #[inline]
    fn slot_idx(&self, rid: usize, slot: usize) -> usize {
        self.slot_off[rid] as usize + slot
    }

    #[inline]
    fn matched_src_of(&self, eid: usize, d: usize) -> u32 {
        self.matched_src[self.matched_off[eid] as usize + d]
    }

    /// Rebuilds the shape tables for `(inst, sched)` — O(v + e + R)
    /// overwrites, allocation-free once the buffers are warm.
    fn prepare(&mut self, inst: &Instance, sched: &Schedule, policy: FallbackPolicy) {
        let dag = &inst.dag;
        let m = inst.num_procs();

        self.matched = matches!(sched.comm, CommSelection::Matched(_));
        self.rerouted = self.matched && policy == FallbackPolicy::Rerouted;

        self.rep_off.clear();
        self.rep_off.push(0);
        for t in dag.tasks() {
            let prev = *self.rep_off.last().expect("nonempty");
            self.rep_off.push(prev + sched.replicas_of(t).len() as u32);
        }
        let total_reps = *self.rep_off.last().expect("nonempty") as usize;

        self.slot_off.clear();
        self.slot_off.push(0);
        self.rep_proc.clear();
        for t in dag.tasks() {
            let preds = dag.preds(t).len() as u32;
            for r in sched.replicas_of(t) {
                let prev = *self.slot_off.last().expect("nonempty");
                self.slot_off.push(prev + preds);
                self.rep_proc.push(r.proc.index() as u32);
            }
        }
        debug_assert_eq!(self.rep_proc.len(), total_reps);

        self.slot_of_edge.clear();
        self.slot_of_edge.resize(dag.num_edges(), u32::MAX);
        for t in dag.tasks() {
            for (slot, &(_, eid)) in dag.preds(t).iter().enumerate() {
                self.slot_of_edge[eid.index()] = slot as u32;
            }
        }

        self.matched_off.clear();
        self.matched_src.clear();
        if let CommSelection::Matched(mm) = &sched.comm {
            self.matched_off.push(0);
            for (eid, _, dst, _) in dag.edge_list() {
                let prev = *self.matched_off.last().expect("nonempty");
                self.matched_off
                    .push(prev + sched.replicas_of(dst).len() as u32);
                let _ = eid;
            }
            self.matched_src
                .resize(*self.matched_off.last().expect("nonempty") as usize, NO_SRC);
            for (eid, _, _, _) in dag.edge_list() {
                let base = self.matched_off[eid.index()] as usize;
                for &(s, d) in &mm[eid.index()] {
                    self.matched_src[base + d] = s as u32;
                }
            }
        }

        self.order_off.clear();
        self.order_off.push(0);
        self.order_items.clear();
        for j in 0..m {
            self.order_items
                .extend(sched.proc_order(j).map(|(t, k)| (t, k as u32)));
            self.order_off.push(self.order_items.len() as u32);
        }
    }

    /// Resets the per-run state for `scenario`.
    fn reset_run(&mut self, inst: &Instance, sched: &Schedule, scenario: &FailureScenario) {
        let dag = &inst.dag;
        let m = inst.num_procs();
        let total_reps = self.rep_proc.len();
        let total_slots = *self.slot_off.last().map_or(&0, |x| x) as usize;

        self.fail_at.clear();
        self.fail_at.resize(m, f64::INFINITY);
        for (p, t) in scenario.iter() {
            self.fail_at[p.index()] = t;
        }

        self.satisfied.clear();
        self.satisfied.resize(total_slots, false);
        self.matched_dead.clear();
        self.matched_dead.resize(total_slots, false);
        self.satisfied_count.clear();
        self.satisfied_count.resize(total_reps, 0);
        self.ready_time.clear();
        self.ready_time.resize(total_reps, 0.0);
        self.phase.clear();
        self.phase.resize(total_reps, Phase::Waiting);
        self.times.clear();
        self.times.resize(total_reps, None);

        // `remaining` counts the senders that may still deliver per
        // (replica, slot): all replicas of the predecessor for
        // all-to-all and for rerouted matched delivery; exactly the
        // matched sender for strict.
        self.remaining.clear();
        for t in dag.tasks() {
            let preds = dag.preds(t);
            let reps = sched.replicas_of(t).len();
            for rep in 0..reps {
                for &(p, eid) in preds {
                    let senders = if self.matched && !self.rerouted {
                        u32::from(self.matched_src_of(eid.index(), rep) != NO_SRC)
                    } else {
                        sched.replicas_of(p).len() as u32
                    };
                    self.remaining.push(senders);
                }
            }
        }
        debug_assert_eq!(self.remaining.len(), total_slots);

        self.ptr.clear();
        self.ptr.resize(m, 0);
        self.free_at.clear();
        self.free_at.resize(m, 0.0);
        self.proc_dead.clear();
        self.proc_dead.resize(m, false);
        self.events.clear();
        self.event_data.clear();
        self.pending_advance.clear();
        self.start_queue.clear();
        self.kill_work.clear();
        self.processed = 0;
    }

    /// Kill cascade: marks replicas dead, propagates starvation, flags
    /// matched-dead slots in rerouted mode, and queues the touched
    /// processors for re-advancement.
    fn kill_cascade(&mut self, dag: &taskgraph::Dag) {
        while let Some((t, k)) = self.kill_work.pop() {
            let rid = self.rid(t, k as usize);
            if self.phase[rid] != Phase::Waiting {
                continue;
            }
            self.phase[rid] = Phase::Dead;
            self.pending_advance.push(self.rep_proc[rid]);
            for &(s, eid) in dag.succs(t) {
                let slot = self.slot_of_edge[eid.index()] as usize;
                let sreps = self.reps(s);
                // Who loses a potential sender? All receivers for
                // all-to-all and rerouted matched delivery (the latter
                // additionally flags the matched receivers for fallback
                // delivery); only the matched receivers for strict.
                if self.matched && self.rerouted {
                    for d in 0..sreps {
                        if self.matched_src_of(eid.index(), d) == k {
                            let si = self.slot_idx(self.rid(s, d), slot);
                            self.matched_dead[si] = true;
                        }
                    }
                }
                for d in 0..sreps {
                    if self.matched && !self.rerouted && self.matched_src_of(eid.index(), d) != k {
                        continue;
                    }
                    let rid_s = self.rid(s, d);
                    let si = self.slot_idx(rid_s, slot);
                    if self.phase[rid_s] == Phase::Waiting && !self.satisfied[si] {
                        self.remaining[si] -= 1;
                        if self.remaining[si] == 0 {
                            self.kill_work.push((s, d as u32));
                        }
                    }
                }
            }
        }
    }

    /// Advances processor `j`: skips dead replicas, starts the head when
    /// its inputs are ready, detects fail-stop overruns.
    fn try_advance(&mut self, j: usize, inst: &Instance) {
        if self.proc_dead[j] {
            return;
        }
        let lo = self.order_off[j] as usize;
        let hi = self.order_off[j + 1] as usize;
        while lo + (self.ptr[j] as usize) < hi {
            let (t, k) = self.order_items[lo + self.ptr[j] as usize];
            let rid = self.rid(t, k as usize);
            match self.phase[rid] {
                Phase::Dead => {
                    self.ptr[j] += 1;
                }
                Phase::Running | Phase::Done => return,
                Phase::Waiting => {
                    if (self.satisfied_count[rid] as usize) < inst.dag.preds(t).len() {
                        return; // head waits for inputs
                    }
                    let start = self.ready_time[rid].max(self.free_at[j]);
                    let finish = start + inst.exec.time(t.index(), j);
                    if finish > self.fail_at[j] {
                        // Fail-stop during (or before) this replica: it
                        // and everything after it on this queue are lost.
                        self.proc_dead[j] = true;
                        let at = lo + self.ptr[j] as usize;
                        for idx in at..hi {
                            self.kill_work.push(self.order_items[idx]);
                        }
                        return;
                    }
                    self.phase[rid] = Phase::Running;
                    self.times[rid] = Some((start, finish));
                    self.free_at[j] = finish;
                    self.ptr[j] += 1;
                    self.start_queue.push((finish, t, k, j as u32));
                }
            }
        }
    }

    /// The main event loop. `prepare` and `reset_run` must have run.
    fn run(&mut self, inst: &Instance) {
        let dag = &inst.dag;
        let m = inst.num_procs();

        for j in 0..m {
            if self.fail_at[j] <= 0.0 {
                self.proc_dead[j] = true;
                let lo = self.order_off[j] as usize;
                let hi = self.order_off[j + 1] as usize;
                for idx in lo..hi {
                    self.kill_work.push(self.order_items[idx]);
                }
            }
        }
        self.pending_advance.extend(0..m as u32);
        self.kill_cascade(dag);

        loop {
            while let Some(j) = self.pending_advance.pop() {
                self.try_advance(j as usize, inst);
                if !self.kill_work.is_empty() {
                    self.kill_cascade(dag);
                }
                // FIFO drain (the queue is taken out and restored so the
                // loop body can push events — no allocation either way).
                let mut sq = std::mem::take(&mut self.start_queue);
                for (finish, t, k, j2) in sq.drain(..) {
                    let id = self.event_data.len();
                    self.event_data.push(Event::Finish {
                        task: t,
                        rep: k,
                        proc: j2,
                    });
                    self.events.push(id, (OrdF64::new(finish), id));
                }
                self.start_queue = sq;
            }

            let Some((id, (time, _))) = self.events.pop() else {
                break;
            };
            self.processed += 1;
            let now = time.get();
            match self.event_data[id] {
                Event::Arrival { task, rep, slot } => {
                    let rid = self.rid(task, rep as usize);
                    let si = self.slot_idx(rid, slot as usize);
                    if self.phase[rid] != Phase::Waiting || self.satisfied[si] {
                        continue; // first-input-wins: later copies ignored
                    }
                    self.satisfied[si] = true;
                    self.satisfied_count[rid] += 1;
                    self.ready_time[rid] = self.ready_time[rid].max(now);
                    if self.satisfied_count[rid] as usize == dag.preds(task).len() {
                        self.pending_advance.push(self.rep_proc[rid]);
                    }
                }
                Event::Finish { task, rep, proc } => {
                    let rid = self.rid(task, rep as usize);
                    self.phase[rid] = Phase::Done;
                    for &(s, eid) in dag.succs(task) {
                        let vol = dag.volume(eid);
                        let slot = self.slot_of_edge[eid.index()];
                        // Candidate receivers: everyone for all-to-all
                        // and rerouted matched; the matched receivers
                        // for strict. Iterated directly over the
                        // destination-replica range — no index
                        // collection per event.
                        for d in 0..self.reps(s) {
                            if self.matched
                                && !self.rerouted
                                && self.matched_src_of(eid.index(), d) != rep
                            {
                                continue;
                            }
                            let rid_s = self.rid(s, d);
                            let si = self.slot_idx(rid_s, slot as usize);
                            if self.phase[rid_s] != Phase::Waiting || self.satisfied[si] {
                                continue;
                            }
                            // Rerouted matched delivery: a non-matched
                            // sender only feeds receivers whose matched
                            // sender died.
                            if self.rerouted
                                && self.matched_src_of(eid.index(), d) != rep
                                && !self.matched_dead[si]
                            {
                                continue;
                            }
                            let dst_proc = self.rep_proc[rid_s] as usize;
                            let at = now + vol * inst.platform.delay(proc as usize, dst_proc);
                            let nid = self.event_data.len();
                            self.event_data.push(Event::Arrival {
                                task: s,
                                rep: d as u32,
                                slot,
                            });
                            self.events.push(nid, (OrdF64::new(at), nid));
                        }
                    }
                    self.pending_advance.push(proc);
                }
            }
        }
    }

    /// Scalar outcome of the completed run (no allocation).
    fn outcome(&self, inst: &Instance) -> ReplicationOutcome {
        let dag = &inst.dag;
        let mut lost_task = None;
        for t in dag.tasks() {
            let lo = self.rep_off[t.index()] as usize;
            let hi = self.rep_off[t.index() + 1] as usize;
            if !self.times[lo..hi].iter().any(Option::is_some) {
                lost_task = Some(t);
                break;
            }
        }
        let latency = if lost_task.is_some() {
            f64::INFINITY
        } else {
            dag.exits()
                .iter()
                .map(|&t| {
                    let lo = self.rep_off[t.index()] as usize;
                    let hi = self.rep_off[t.index() + 1] as usize;
                    self.times[lo..hi]
                        .iter()
                        .flatten()
                        .map(|&(_, f)| f)
                        .fold(f64::INFINITY, f64::min)
                })
                .fold(0.0, f64::max)
        };
        ReplicationOutcome {
            latency,
            lost_task,
            events: self.processed,
        }
    }

    /// Expands the completed run into the nested [`SimResult`] form
    /// (allocates the per-replica payload).
    fn to_result(&self, inst: &Instance) -> SimResult {
        let dag = &inst.dag;
        let out = self.outcome(inst);
        let status: Vec<Vec<ReplicaStatus>> = dag
            .tasks()
            .map(|t| {
                let lo = self.rep_off[t.index()] as usize;
                let hi = self.rep_off[t.index() + 1] as usize;
                self.phase[lo..hi]
                    .iter()
                    .map(|p| match p {
                        Phase::Done => ReplicaStatus::Done,
                        _ => ReplicaStatus::Dead,
                    })
                    .collect()
            })
            .collect();
        let times: Vec<Vec<Option<(f64, f64)>>> = dag
            .tasks()
            .map(|t| {
                let lo = self.rep_off[t.index()] as usize;
                let hi = self.rep_off[t.index() + 1] as usize;
                self.times[lo..hi].to_vec()
            })
            .collect();
        SimResult {
            latency: out.latency,
            outcome: match out.lost_task {
                None => SimOutcome::Completed,
                Some(lost_task) => SimOutcome::Failed { lost_task },
            },
            status,
            times,
            events: out.events,
        }
    }
}

fn check_rerouted_scenario(rerouted: bool, scenario: &FailureScenario) {
    if rerouted {
        assert!(
            scenario.iter().all(|(_, t)| t == 0.0),
            "rerouted matched delivery supports fail-at-time-zero scenarios only"
        );
    }
}

/// Simulates `sched` under `scenario` with the default policy:
/// [`FallbackPolicy::Rerouted`] for matched schedules (requires
/// fail-at-time-zero scenarios), plain first-input-wins for all-to-all.
pub fn simulate(inst: &Instance, sched: &Schedule, scenario: &FailureScenario) -> SimResult {
    simulate_with(inst, sched, scenario, FallbackPolicy::Rerouted)
}

/// Simulates with an explicit matched-communication policy.
///
/// Failure time 0 means the processor never runs anything (the paper's
/// experimental model); positive times model mid-execution fail-stops
/// (a replica whose execution spans the failure instant is lost together
/// with everything planned after it on that processor; a replica
/// finishing at or before the instant completes and its messages are
/// delivered — fail-silent semantics). Rerouted matched delivery is
/// restricted to fail-at-time-zero scenarios.
///
/// Builds a throwaway [`CrashWorkspace`]; batch callers should hold one
/// and use [`simulate_outcome_into`] (scalar result, allocation-free) or
/// [`simulate_into`] (full result).
pub fn simulate_with(
    inst: &Instance,
    sched: &Schedule,
    scenario: &FailureScenario,
    policy: FallbackPolicy,
) -> SimResult {
    let mut ws = CrashWorkspace::new();
    simulate_into(inst, sched, scenario, policy, &mut ws)
}

/// [`simulate_with`] reusing the caller's workspace for the replay state;
/// only the returned [`SimResult`]'s nested payload allocates.
pub fn simulate_into(
    inst: &Instance,
    sched: &Schedule,
    scenario: &FailureScenario,
    policy: FallbackPolicy,
    ws: &mut CrashWorkspace,
) -> SimResult {
    run_into(inst, sched, scenario, policy, ws);
    ws.to_result(inst)
}

/// [`simulate_with`] reusing the caller's workspace and returning only
/// the scalar [`ReplicationOutcome`] — fully allocation-free once the
/// workspace is warm.
pub fn simulate_outcome_into(
    inst: &Instance,
    sched: &Schedule,
    scenario: &FailureScenario,
    policy: FallbackPolicy,
    ws: &mut CrashWorkspace,
) -> ReplicationOutcome {
    run_into(inst, sched, scenario, policy, ws);
    ws.outcome(inst)
}

/// [`simulate_outcome_into`] on a **pre-occupied platform**: each
/// processor becomes free for this DAG's replicas only at
/// `floors[j]` (a persistent occupancy floor, typically
/// `OccupancyTimeline::floors()` from the streaming driver) instead of
/// `0.0`. Failure times in `scenario` are interpreted on the same
/// absolute clock. All-zero floors are bit-identical to
/// [`simulate_outcome_into`]. Allocation-free once the workspace is
/// warm.
pub fn simulate_outcome_from_into(
    inst: &Instance,
    sched: &Schedule,
    scenario: &FailureScenario,
    policy: FallbackPolicy,
    floors: &[f64],
    ws: &mut CrashWorkspace,
) -> ReplicationOutcome {
    assert_eq!(
        floors.len(),
        inst.num_procs(),
        "occupancy floors must cover all processors"
    );
    ws.prepare(inst, sched, policy);
    check_rerouted_scenario(ws.rerouted, scenario);
    ws.reset_run(inst, sched, scenario);
    ws.free_at.copy_from_slice(floors);
    ws.run(inst);
    ws.outcome(inst)
}

impl CrashWorkspace {
    /// Streaming support: folds every simulated replica's busy span of
    /// the completed run into `occ` (per processor, in execution order,
    /// so inserts are tail-appends) and returns the earliest simulated
    /// start across all replicas (`INFINITY` when nothing ran).
    pub(crate) fn fold_busy_into(&self, occ: &mut platform::OccupancyTimeline) -> f64 {
        let mut first = f64::INFINITY;
        for j in 0..self.order_off.len().saturating_sub(1) {
            let lo = self.order_off[j] as usize;
            let hi = self.order_off[j + 1] as usize;
            for &(t, k) in &self.order_items[lo..hi] {
                let rid = self.rid(t, k as usize);
                if let Some((s, f)) = self.times[rid] {
                    occ.insert(j, s, f);
                    if s < first {
                        first = s;
                    }
                }
            }
        }
        first
    }
}

fn run_into(
    inst: &Instance,
    sched: &Schedule,
    scenario: &FailureScenario,
    policy: FallbackPolicy,
    ws: &mut CrashWorkspace,
) {
    ws.prepare(inst, sched, policy);
    run_prepared(inst, sched, scenario, ws);
}

/// The per-scenario half of a run: `ws.prepare` must already have been
/// called for this `(inst, sched, policy)`. The replication campaigns
/// prepare once and then only re-run this part — the shape tables are
/// identical across a campaign.
fn run_prepared(
    inst: &Instance,
    sched: &Schedule,
    scenario: &FailureScenario,
    ws: &mut CrashWorkspace,
) {
    check_rerouted_scenario(ws.rerouted, scenario);
    ws.reset_run(inst, sched, scenario);
    ws.run(inst);
}

/// Deterministic chunking for the parallel campaigns: depends only on
/// the replication count, so results are identical at any thread count.
fn campaign_chunk(replications: usize) -> usize {
    replications.div_ceil(64).max(1)
}

/// Monte-Carlo crash campaign: simulates `replications` independent
/// uniform `crashes`-processor fail-at-time-zero scenarios against
/// `sched`, fanned out over the ambient rayon thread pool (pin the
/// worker count with `ThreadPool::install` or `FTSCHED_THREADS` in the
/// experiment layers). Each deterministic chunk of replications shares
/// one [`CrashWorkspace`], so per-replication state is reused; only the
/// returned [`SimResult`] payloads allocate — prefer
/// [`simulate_replication_outcomes`] when the per-replica traces are not
/// needed.
///
/// Replication `r` draws its scenario from
/// [`crate::replication_seed`]`(base_seed, r)`, so the returned vector is
/// bit-identical whatever the thread count and stable across reruns —
/// the contract `tests/parallel_determinism.rs` (repo root) enforces.
pub fn simulate_replications(
    inst: &Instance,
    sched: &Schedule,
    crashes: usize,
    replications: usize,
    base_seed: u64,
) -> Vec<SimResult> {
    let idx: Vec<u32> = (0..replications as u32).collect();
    let nested: Vec<Vec<SimResult>> = idx
        .par_chunks(campaign_chunk(replications))
        .map(|chunk| {
            let mut ws = CrashWorkspace::new();
            ws.prepare(inst, sched, FallbackPolicy::Rerouted);
            chunk
                .iter()
                .map(|&r| {
                    prep_scenario(&mut ws, inst.num_procs(), crashes, base_seed, r);
                    let scen = std::mem::take(&mut ws.scenario);
                    run_prepared(inst, sched, &scen, &mut ws);
                    ws.scenario = scen;
                    ws.to_result(inst)
                })
                .collect()
        })
        .collect();
    nested.into_iter().flatten().collect()
}

/// Scalar-result Monte-Carlo crash campaign: like
/// [`simulate_replications`] but returning only the per-replication
/// [`ReplicationOutcome`]s — the event replay allocates nothing after
/// each chunk's first replication.
pub fn simulate_replication_outcomes(
    inst: &Instance,
    sched: &Schedule,
    crashes: usize,
    replications: usize,
    base_seed: u64,
) -> Vec<ReplicationOutcome> {
    let idx: Vec<u32> = (0..replications as u32).collect();
    let nested: Vec<Vec<ReplicationOutcome>> = idx
        .par_chunks(campaign_chunk(replications))
        .map(|chunk| {
            let mut ws = CrashWorkspace::new();
            ws.prepare(inst, sched, FallbackPolicy::Rerouted);
            let mut out = Vec::with_capacity(chunk.len());
            for &r in chunk {
                out.push(replication_outcome(
                    inst, sched, crashes, base_seed, r, &mut ws,
                ));
            }
            out
        })
        .collect();
    nested.into_iter().flatten().collect()
}

/// Sequential zero-allocation Monte-Carlo driver: runs `replications`
/// scenarios into `out` (cleared first) reusing `ws` throughout. After
/// the first replication on a warm workspace, the entire campaign
/// performs **no** heap allocation — the counting-allocator regression
/// test at the repo root pins this. Bit-identical to
/// [`simulate_replication_outcomes`].
pub fn simulate_replication_outcomes_into(
    inst: &Instance,
    sched: &Schedule,
    crashes: usize,
    replications: usize,
    base_seed: u64,
    out: &mut Vec<ReplicationOutcome>,
    ws: &mut CrashWorkspace,
) {
    out.clear();
    out.reserve(replications);
    ws.prepare(inst, sched, FallbackPolicy::Rerouted);
    for r in 0..replications as u32 {
        out.push(replication_outcome(inst, sched, crashes, base_seed, r, ws));
    }
}

/// Draws replication `r`'s scenario into `ws.scenario` exactly as the
/// pre-workspace implementation drew it (same seed derivation, same RNG
/// consumption), reusing the workspace scratch.
fn prep_scenario(ws: &mut CrashWorkspace, m: usize, crashes: usize, base_seed: u64, r: u32) {
    let mut rng = StdRng::seed_from_u64(crate::replication_seed(base_seed, r as u64));
    if crashes == 0 {
        ws.scenario.clear();
    } else {
        let CrashWorkspace { scenario, ids, .. } = ws;
        scenario.refill_uniform(&mut rng, m, crashes, ids);
    }
}

/// One replication against a workspace already `prepare`d for
/// `(inst, sched, Rerouted)`.
fn replication_outcome(
    inst: &Instance,
    sched: &Schedule,
    crashes: usize,
    base_seed: u64,
    r: u32,
    ws: &mut CrashWorkspace,
) -> ReplicationOutcome {
    prep_scenario(ws, inst.num_procs(), crashes, base_seed, r);
    let scen = std::mem::take(&mut ws.scenario);
    run_prepared(inst, sched, &scen, ws);
    ws.scenario = scen;
    ws.outcome(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsched_core::{schedule, Algorithm, Replica};
    use platform::gen::{paper_instance, PaperInstanceConfig};
    use platform::{ExecutionMatrix, Platform, ProcId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use taskgraph::DagBuilder;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn diamond_instance(m: usize) -> Instance {
        let mut b = DagBuilder::new();
        let t: Vec<TaskId> = (0..4).map(|_| b.add_task(10.0)).collect();
        b.add_edge(t[0], t[1], 5.0);
        b.add_edge(t[0], t[2], 5.0);
        b.add_edge(t[1], t[3], 5.0);
        b.add_edge(t[2], t[3], 5.0);
        let dag = b.build().unwrap();
        let plat = Platform::uniform_delay(m, 1.0);
        let exec = ExecutionMatrix::consistent(&dag, &vec![1.0; m]);
        Instance::new(dag, plat, exec)
    }

    #[test]
    fn no_failure_matches_lower_bound_ftsa() {
        for seed in 0..4u64 {
            let mut r = rng(seed);
            let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
            for eps in [0usize, 1, 2] {
                let s = schedule(&inst, eps, Algorithm::Ftsa, &mut rng(seed)).unwrap();
                let sim = simulate(&inst, &s, &FailureScenario::none());
                assert!(sim.completed());
                assert!(
                    (sim.latency - s.latency_lower_bound()).abs() < 1e-6,
                    "sim(∅) must equal M* for FTSA (eps={eps}, seed={seed}): \
                     {} vs {}",
                    sim.latency,
                    s.latency_lower_bound()
                );
            }
        }
    }

    #[test]
    fn no_failure_matches_lower_bound_mc_ftsa() {
        let mut r = rng(10);
        let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
        let s = schedule(&inst, 2, Algorithm::McFtsaGreedy, &mut rng(10)).unwrap();
        let sim = simulate(&inst, &s, &FailureScenario::none());
        assert!(sim.completed());
        assert!((sim.latency - s.latency_lower_bound()).abs() < 1e-6);
    }

    #[test]
    fn no_failure_ftbar_within_bounds() {
        let mut r = rng(11);
        let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
        let s = schedule(&inst, 1, Algorithm::Ftbar, &mut rng(11)).unwrap();
        let sim = simulate(&inst, &s, &FailureScenario::none());
        assert!(sim.completed());
        // FTBAR duplicates placed after a consumer can only improve
        // arrivals, so the simulation may beat the stored bound.
        assert!(sim.latency <= s.latency_lower_bound() + 1e-6);
    }

    #[test]
    fn proposition_4_2_bounds_hold_for_all_to_all() {
        for seed in 0..4u64 {
            let mut r = rng(seed + 50);
            let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
            // Every all-to-all pipeline configuration (the eq. 3/4
            // guarantee is specific to all-to-all first-arrival
            // semantics; matched schedules are covered separately).
            let all_to_all = Algorithm::ALL
                .into_iter()
                .filter(|a| a.scheduler().comm == ftsched_core::pipeline::CommAxis::AllToAll);
            for (eps, alg) in [1usize, 2]
                .into_iter()
                .flat_map(|e| all_to_all.clone().map(move |a| (e, a)))
            {
                let s = schedule(&inst, eps, alg, &mut rng(seed)).unwrap();
                for probe in 0..6u64 {
                    let scen = FailureScenario::uniform(
                        &mut rng(seed * 100 + probe),
                        inst.num_procs(),
                        eps,
                    );
                    let sim = simulate(&inst, &s, &scen);
                    assert!(sim.completed(), "Theorem 4.1 violated ({alg:?})");
                    assert!(
                        sim.latency <= s.latency_upper_bound() + 1e-6,
                        "L <= M violated ({alg:?}, eps={eps})"
                    );
                    assert!(
                        sim.latency >= s.latency_lower_bound() - 1e-6,
                        "M* <= L violated ({alg:?}, eps={eps})"
                    );
                }
            }
        }
    }

    #[test]
    fn mc_ftsa_rerouted_always_completes() {
        for seed in 0..4u64 {
            let mut r = rng(seed + 70);
            let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
            for eps in [1usize, 2] {
                let s = schedule(&inst, eps, Algorithm::McFtsaGreedy, &mut rng(seed)).unwrap();
                for probe in 0..6u64 {
                    let scen = FailureScenario::uniform(
                        &mut rng(seed * 131 + probe),
                        inst.num_procs(),
                        eps,
                    );
                    let sim = simulate(&inst, &s, &scen);
                    assert!(sim.completed(), "rerouted MC-FTSA must complete");
                    assert!(sim.latency.is_finite());
                }
            }
        }
    }

    #[test]
    fn mc_ftsa_strict_times_match_plan_when_completed() {
        // Under strict delivery, every surviving replica runs exactly at
        // its planned (deterministic) times.
        let mut r = rng(12);
        let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
        let s = schedule(&inst, 2, Algorithm::McFtsaGreedy, &mut rng(12)).unwrap();
        for probe in 0..10u64 {
            let scen = FailureScenario::uniform(&mut rng(probe), inst.num_procs(), 2);
            let sim = simulate_with(&inst, &s, &scen, FallbackPolicy::Strict);
            if !sim.completed() {
                continue; // the composition gap: allowed under strict
            }
            for t in inst.dag.tasks() {
                for (k, tm) in sim.times[t.index()].iter().enumerate() {
                    if let Some((st, fi)) = *tm {
                        let r = s.replicas_of(t)[k];
                        assert!((st - r.start_lb).abs() < 1e-6);
                        assert!((fi - r.finish_lb).abs() < 1e-6);
                    }
                }
            }
            assert!(sim.latency >= s.latency_lower_bound() - 1e-6);
            assert!(sim.latency <= s.latency_upper_bound() + 1e-6);
        }
    }

    /// Documents the Proposition 4.3 composition gap: per-edge robust
    /// matchings do not guarantee joint input survival. One failure kills
    /// both replicas of the join task under strict delivery; rerouted
    /// delivery recovers it.
    #[test]
    fn strict_semantics_composition_gap() {
        // DAG: a → t, b → t. ε = 1.
        // a replicas: P0, P1; b replicas: P0, P2; t replicas: P3, P4.
        // Matchings: a@P0 → t@P3, a@P1 → t@P4; b@P0 → t@P4, b@P2 → t@P3.
        // Failure of P0 kills a@P0 (starving t@P3 via a) and b@P0
        // (starving t@P4 via b): both replicas of t starve.
        let mut bd = DagBuilder::new();
        let a = bd.add_task(1.0);
        let b = bd.add_task(1.0);
        let t = bd.add_task(1.0);
        let e_at = bd.add_edge(a, t, 1.0);
        let e_bt = bd.add_edge(b, t, 1.0);
        let dag = bd.build().unwrap();
        let plat = Platform::uniform_delay(5, 1.0);
        let exec = ExecutionMatrix::consistent(&dag, &[1.0; 5]);
        let inst = Instance::new(dag, plat, exec);

        let mk = |proc: u32, s: f64, f: f64| Replica {
            proc: ProcId(proc),
            start_lb: s,
            finish_lb: f,
            start_ub: s,
            finish_ub: f,
        };
        let mut matched = vec![Vec::new(); 2];
        matched[e_at.index()] = vec![(0usize, 0usize), (1, 1)];
        matched[e_bt.index()] = vec![(0usize, 1usize), (1, 0)];
        let sched = ftsched_core::Schedule::from_parts(
            1,
            vec![
                vec![mk(0, 0.0, 1.0), mk(1, 0.0, 1.0)],
                vec![mk(0, 1.0, 2.0), mk(2, 0.0, 1.0)],
                vec![mk(3, 3.0, 4.0), mk(4, 3.0, 4.0)],
            ],
            vec![
                vec![(a, 0), (b, 0)],
                vec![(a, 1)],
                vec![(b, 1)],
                vec![(t, 0)],
                vec![(t, 1)],
            ],
            CommSelection::Matched(matched),
            vec![a, b, t],
        );

        let scen = FailureScenario::at_time_zero([ProcId(0)]);
        let strict = simulate_with(&inst, &sched, &scen, FallbackPolicy::Strict);
        assert!(
            !strict.completed(),
            "strict matched delivery must exhibit the composition gap"
        );
        let rerouted = simulate_with(&inst, &sched, &scen, FallbackPolicy::Rerouted);
        assert!(rerouted.completed(), "rerouting must recover the join task");
    }

    #[test]
    fn exhaustive_single_failures_diamond() {
        let inst = diamond_instance(4);
        for alg in Algorithm::ALL {
            let s = schedule(&inst, 1, alg, &mut rng(3)).unwrap();
            for p in 0..4u32 {
                let scen = FailureScenario::at_time_zero([ProcId(p)]);
                let sim = simulate(&inst, &s, &scen);
                assert!(sim.completed(), "{alg:?} lost a task when P{p} failed");
            }
        }
    }

    #[test]
    fn exhaustive_double_failures_diamond() {
        let inst = diamond_instance(5);
        for alg in Algorithm::ALL {
            let s = schedule(&inst, 2, alg, &mut rng(4)).unwrap();
            for a in 0..5u32 {
                for b in (a + 1)..5u32 {
                    let scen = FailureScenario::at_time_zero([ProcId(a), ProcId(b)]);
                    let sim = simulate(&inst, &s, &scen);
                    assert!(sim.completed(), "{alg:?} failed under {{P{a}, P{b}}}");
                }
            }
        }
    }

    #[test]
    fn more_failures_than_tolerated_can_lose_tasks() {
        let inst = diamond_instance(3);
        let s = schedule(&inst, 0, Algorithm::Ftsa, &mut rng(5)).unwrap();
        let scen = FailureScenario::at_time_zero((0..3).map(ProcId));
        let sim = simulate(&inst, &s, &scen);
        assert!(!sim.completed());
        assert_eq!(sim.latency, f64::INFINITY);
    }

    #[test]
    fn failed_processor_executes_nothing() {
        let inst = diamond_instance(4);
        let s = schedule(&inst, 1, Algorithm::Ftsa, &mut rng(6)).unwrap();
        let scen = FailureScenario::at_time_zero([ProcId(0)]);
        let sim = simulate(&inst, &s, &scen);
        for t in inst.dag.tasks() {
            for (k, r) in s.replicas_of(t).iter().enumerate() {
                if r.proc == ProcId(0) {
                    assert_eq!(sim.status[t.index()][k], ReplicaStatus::Dead);
                    assert!(sim.times[t.index()][k].is_none());
                }
            }
        }
    }

    #[test]
    fn mid_execution_failure_keeps_earlier_work() {
        // Single proc chain: a (0..10) then c (10..20); proc fails at 15:
        // a completes, c dies.
        let mut b = DagBuilder::new();
        let a = b.add_task(10.0);
        let c = b.add_task(10.0);
        b.add_edge(a, c, 0.0);
        let dag = b.build().unwrap();
        let plat = Platform::uniform_delay(2, 1.0);
        let exec = ExecutionMatrix::consistent(&dag, &[1.0, 0.01]);
        let inst = Instance::new(dag, plat, exec);
        let s = schedule(&inst, 0, Algorithm::Ftsa, &mut rng(7)).unwrap();
        // Both tasks land on fast P0 (P1 is 100x slower; intra comm free).
        assert_eq!(s.replicas_of(a)[0].proc, ProcId(0));
        assert_eq!(s.replicas_of(c)[0].proc, ProcId(0));
        let scen = FailureScenario::new(vec![(ProcId(0), 15.0)]);
        let sim = simulate(&inst, &s, &scen);
        assert_eq!(sim.status[a.index()][0], ReplicaStatus::Done);
        assert_eq!(sim.status[c.index()][0], ReplicaStatus::Dead);
        assert!(!sim.completed());
    }

    #[test]
    fn failure_exactly_at_finish_boundary_completes() {
        let mut b = DagBuilder::new();
        b.add_task(10.0);
        let dag = b.build().unwrap();
        let plat = Platform::uniform_delay(1, 1.0);
        let exec = ExecutionMatrix::consistent(&dag, &[1.0]);
        let inst = Instance::new(dag, plat, exec);
        let s = schedule(&inst, 0, Algorithm::Ftsa, &mut rng(8)).unwrap();
        let sim = simulate(&inst, &s, &FailureScenario::new(vec![(ProcId(0), 10.0)]));
        assert!(
            sim.completed(),
            "fail-silent boundary: finish == τ completes"
        );
        assert_eq!(sim.latency, 10.0);
    }

    #[test]
    fn mc_ftsa_exhaustive_double_failures_rerouted() {
        let mut r = rng(60);
        let inst = paper_instance(
            &mut r,
            &PaperInstanceConfig {
                tasks_lo: 30,
                tasks_hi: 30,
                procs: 6,
                ..Default::default()
            },
        );
        let s = schedule(&inst, 2, Algorithm::McFtsaGreedy, &mut rng(60)).unwrap();
        for a in 0..6u32 {
            for b in (a + 1)..6u32 {
                let scen = FailureScenario::at_time_zero([ProcId(a), ProcId(b)]);
                let sim = simulate(&inst, &s, &scen);
                assert!(sim.completed(), "rerouted delivery failed {{P{a}, P{b}}}");
                assert!(sim.latency.is_finite());
            }
        }
    }

    #[test]
    fn replications_complete_within_design_point() {
        let mut r = rng(90);
        let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
        let s = schedule(&inst, 2, Algorithm::Ftsa, &mut rng(90)).unwrap();
        let sims = simulate_replications(&inst, &s, 2, 20, 0xCAFE);
        assert_eq!(sims.len(), 20);
        for sim in &sims {
            assert!(sim.completed(), "≤ ε crashes must not lose tasks");
            assert!(sim.latency <= s.latency_upper_bound() + 1e-6);
            assert!(sim.latency >= s.latency_lower_bound() - 1e-6);
        }
    }

    #[test]
    fn replications_are_thread_count_invariant() {
        let mut r = rng(91);
        let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
        let s = schedule(&inst, 1, Algorithm::Ftsa, &mut rng(91)).unwrap();
        let run = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| simulate_replications(&inst, &s, 1, 16, 7))
        };
        let a = run(1);
        let b = run(4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.latency.to_bits(), y.latency.to_bits());
            assert_eq!(x.times, y.times);
        }
    }

    #[test]
    fn outcomes_agree_with_full_results() {
        // The scalar campaign must be bit-identical to the full one, and
        // the sequential zero-allocation driver must match both.
        let mut r = rng(92);
        let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
        let s = schedule(&inst, 2, Algorithm::McFtsaGreedy, &mut rng(92)).unwrap();
        let full = simulate_replications(&inst, &s, 2, 24, 0xBEEF);
        let scalar = simulate_replication_outcomes(&inst, &s, 2, 24, 0xBEEF);
        let mut seq = Vec::new();
        let mut ws = CrashWorkspace::new();
        simulate_replication_outcomes_into(&inst, &s, 2, 24, 0xBEEF, &mut seq, &mut ws);
        assert_eq!(scalar.len(), full.len());
        assert_eq!(seq, scalar);
        for (f, o) in full.iter().zip(&scalar) {
            assert_eq!(f.latency.to_bits(), o.latency.to_bits());
            assert_eq!(f.completed(), o.completed());
            assert_eq!(f.events, o.events);
        }
    }

    #[test]
    fn workspace_reuse_across_scenarios_and_policies() {
        // One workspace driven across different scenarios, policies and
        // schedules must match fresh-workspace runs exactly.
        let inst = diamond_instance(4);
        let mut ws = CrashWorkspace::new();
        for alg in [Algorithm::Ftsa, Algorithm::McFtsaGreedy] {
            let s = schedule(&inst, 1, alg, &mut rng(13)).unwrap();
            for p in 0..4u32 {
                let scen = FailureScenario::at_time_zero([ProcId(p)]);
                let reused = simulate_into(&inst, &s, &scen, FallbackPolicy::Rerouted, &mut ws);
                let fresh = simulate(&inst, &s, &scen);
                assert_eq!(reused.latency.to_bits(), fresh.latency.to_bits());
                assert_eq!(reused.times, fresh.times);
                assert_eq!(reused.status, fresh.status);
            }
        }
    }

    #[test]
    fn deterministic_simulation() {
        let inst = diamond_instance(4);
        let s = schedule(&inst, 1, Algorithm::Ftsa, &mut rng(9)).unwrap();
        let scen = FailureScenario::at_time_zero([ProcId(1)]);
        let a = simulate(&inst, &s, &scen);
        let b = simulate(&inst, &s, &scen);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.times, b.times);
    }
}
