//! The event-queue crash-execution engine.
//!
//! # MC-FTSA delivery semantics
//!
//! For matched (MC-FTSA) communications two delivery policies are
//! offered, because Proposition 4.3 of the paper is a *per-edge*
//! statement: for every precedence edge, some selected communication
//! survives any `ε` failures. Composed across several predecessors it
//! does **not** guarantee that a single replica receives *all* its
//! inputs — one failed processor can starve different replicas of a task
//! through different predecessors' matchings (see the
//! `strict_semantics_composition_gap` test for a concrete instance).
//!
//! * [`FallbackPolicy::Strict`] — the literal reading: a replica only
//!   ever receives from its matched sender. Rare failure patterns can
//!   then lose a task even with `≤ ε` failures.
//! * [`FallbackPolicy::Rerouted`] (default for matched schedules) — when
//!   a matched sender is dead, the receiver accepts the first copy from
//!   any surviving replica of the predecessor. This models the natural
//!   runtime recovery (fail-stop senders are silent, so any functional
//!   system must re-route) and restores the Theorem 4.1 guarantee; the
//!   fault-free message count — the paper's `e(ε+1)` headline — is
//!   unchanged, since fallback messages flow only after a failure.
//!   Supported for fail-at-time-zero scenarios (the paper's experimental
//!   model).

use ftcollections::{IndexedHeap, OrdF64};
use ftsched_core::{CommSelection, Schedule};
use platform::{FailureScenario, Instance};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use taskgraph::TaskId;

/// Delivery policy for matched (MC-FTSA) communications under failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackPolicy {
    /// Matched sender only (the paper's literal Proposition 4.3).
    Strict,
    /// Re-route to any surviving replica when the matched sender dies.
    Rerouted,
}

/// Status of a replica at the end of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaStatus {
    /// Completed successfully.
    Done,
    /// Never completed: hosted on a failed processor, killed mid-run, or
    /// starved of an input.
    Dead,
}

/// Whether the application survived the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimOutcome {
    /// Every task completed at least one replica.
    Completed,
    /// Some task lost all its replicas.
    Failed {
        /// The first task (by id) with no surviving replica.
        lost_task: TaskId,
    },
}

/// Result of a crash simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Achieved application latency: max over exit tasks of the earliest
    /// completed replica. `f64::INFINITY` when the outcome is `Failed`.
    pub latency: f64,
    /// Outcome of the run.
    pub outcome: SimOutcome,
    /// Per task, per replica: final status.
    pub status: Vec<Vec<ReplicaStatus>>,
    /// Per task, per replica: simulated `(start, finish)`; `None` for
    /// dead replicas.
    pub times: Vec<Vec<Option<(f64, f64)>>>,
    /// Number of events processed (diagnostics).
    pub events: usize,
}

impl SimResult {
    /// Simulated finish of the earliest completed replica of `t`.
    pub fn earliest_finish(&self, t: TaskId) -> Option<f64> {
        self.times[t.index()]
            .iter()
            .flatten()
            .map(|&(_, f)| f)
            .min_by(f64::total_cmp)
    }

    /// Whether the application completed.
    pub fn completed(&self) -> bool {
        matches!(self.outcome, SimOutcome::Completed)
    }
}

#[derive(Debug, Clone)]
struct RepState {
    /// Per predecessor slot: first arrival received?
    satisfied: Vec<bool>,
    /// Per predecessor slot: potential senders that may still deliver.
    remaining: Vec<usize>,
    /// Per predecessor slot: has the matched sender died (rerouted mode)?
    matched_dead: Vec<bool>,
    /// Number of satisfied slots.
    satisfied_count: usize,
    /// Time the latest first-arrival landed.
    ready_time: f64,
    phase: Phase,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Waiting,
    Running,
    Done,
    Dead,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Data for replica `(task, rep)` along predecessor slot `slot`.
    Arrival {
        task: TaskId,
        rep: usize,
        slot: usize,
    },
    /// Replica `(task, rep)` on processor `proc` completes.
    Finish {
        task: TaskId,
        rep: usize,
        proc: usize,
    },
}

/// Simulates `sched` under `scenario` with the default policy:
/// [`FallbackPolicy::Rerouted`] for matched schedules (requires
/// fail-at-time-zero scenarios), plain first-input-wins for all-to-all.
pub fn simulate(inst: &Instance, sched: &Schedule, scenario: &FailureScenario) -> SimResult {
    simulate_with(inst, sched, scenario, FallbackPolicy::Rerouted)
}

/// Simulates with an explicit matched-communication policy.
///
/// Failure time 0 means the processor never runs anything (the paper's
/// experimental model); positive times model mid-execution fail-stops
/// (a replica whose execution spans the failure instant is lost together
/// with everything planned after it on that processor; a replica
/// finishing at or before the instant completes and its messages are
/// delivered — fail-silent semantics). Rerouted matched delivery is
/// restricted to fail-at-time-zero scenarios.
pub fn simulate_with(
    inst: &Instance,
    sched: &Schedule,
    scenario: &FailureScenario,
    policy: FallbackPolicy,
) -> SimResult {
    let matched = matches!(sched.comm, CommSelection::Matched(_));
    let rerouted = matched && policy == FallbackPolicy::Rerouted;
    if rerouted {
        assert!(
            scenario.iter().all(|(_, t)| t == 0.0),
            "rerouted matched delivery supports fail-at-time-zero scenarios only"
        );
    }

    let m = inst.num_procs();
    let dag = &inst.dag;

    let mut fail_at = vec![f64::INFINITY; m];
    for (p, t) in scenario.iter() {
        fail_at[p.index()] = t;
    }

    // Slot of each edge within its destination's predecessor list.
    let mut slot_of_edge = vec![usize::MAX; dag.num_edges()];
    for t in dag.tasks() {
        for (slot, &(_, eid)) in dag.preds(t).iter().enumerate() {
            slot_of_edge[eid.index()] = slot;
        }
    }

    // matched_of[eid][dst_rep] = src replica index (matched schedules).
    let matched_of: Vec<Vec<usize>> = match &sched.comm {
        CommSelection::AllToAll => Vec::new(),
        CommSelection::Matched(mm) => dag
            .edge_list()
            .map(|(eid, _, dst, _)| {
                let mut v = vec![usize::MAX; sched.replicas_of(dst).len()];
                for &(s, d) in &mm[eid.index()] {
                    v[d] = s;
                }
                v
            })
            .collect(),
    };

    // Per-replica state. `remaining` counts the senders that may still
    // deliver: all replicas of the predecessor for all-to-all and for
    // rerouted matched delivery; exactly the matched sender for strict.
    let mut state: Vec<Vec<RepState>> = Vec::with_capacity(dag.num_tasks());
    for t in dag.tasks() {
        let preds = dag.preds(t);
        let reps = sched.replicas_of(t).len();
        let mut per_task = Vec::with_capacity(reps);
        #[allow(clippy::needless_range_loop)] // `rep` indexes parallel tables
        for rep in 0..reps {
            let remaining: Vec<usize> = preds
                .iter()
                .map(|&(p, eid)| {
                    if matched && !rerouted {
                        usize::from(matched_of[eid.index()][rep] != usize::MAX)
                    } else {
                        sched.replicas_of(p).len()
                    }
                })
                .collect();
            per_task.push(RepState {
                satisfied: vec![false; preds.len()],
                remaining,
                matched_dead: vec![false; preds.len()],
                satisfied_count: 0,
                ready_time: 0.0,
                phase: Phase::Waiting,
            });
        }
        state.push(per_task);
    }

    let mut times: Vec<Vec<Option<(f64, f64)>>> = dag
        .tasks()
        .map(|t| vec![None; sched.replicas_of(t).len()])
        .collect();

    let mut ptr = vec![0usize; m];
    let mut free_at = vec![0.0f64; m];
    let mut proc_dead = vec![false; m];
    let mut events: IndexedHeap<(OrdF64, usize)> = IndexedHeap::new(1024);
    let mut event_data: Vec<Event> = Vec::with_capacity(1024);

    // Receivers a dying/finishing sender replica `k` is *matched* to.
    let matched_receivers = |eid: taskgraph::EdgeId, k: usize| -> Vec<usize> {
        match &sched.comm {
            CommSelection::AllToAll => Vec::new(),
            CommSelection::Matched(mm) => mm[eid.index()]
                .iter()
                .filter(|&&(s, _)| s == k)
                .map(|&(_, d)| d)
                .collect(),
        }
    };

    // Kill cascade: marks replicas dead, propagates starvation, flags
    // matched_dead slots in rerouted mode. Returns touched processors.
    let kill_cascade = |seed: Vec<(TaskId, usize)>, state: &mut Vec<Vec<RepState>>| -> Vec<usize> {
        let mut work = seed;
        let mut touched = Vec::new();
        while let Some((t, k)) = work.pop() {
            if state[t.index()][k].phase != Phase::Waiting {
                continue;
            }
            state[t.index()][k].phase = Phase::Dead;
            touched.push(sched.replicas_of(t)[k].proc.index());
            for &(s, eid) in dag.succs(t) {
                let slot = slot_of_edge[eid.index()];
                // Who loses a potential sender?
                let affected: Vec<usize> = match (&sched.comm, rerouted) {
                    (CommSelection::AllToAll, _) => (0..sched.replicas_of(s).len()).collect(),
                    (CommSelection::Matched(_), true) => {
                        // Every receiver counted all senders; also flag
                        // the matched ones for fallback delivery.
                        for d in matched_receivers(eid, k) {
                            state[s.index()][d].matched_dead[slot] = true;
                        }
                        (0..sched.replicas_of(s).len()).collect()
                    }
                    (CommSelection::Matched(_), false) => matched_receivers(eid, k),
                };
                for d in affected {
                    let rst = &mut state[s.index()][d];
                    if rst.phase == Phase::Waiting && !rst.satisfied[slot] {
                        rst.remaining[slot] -= 1;
                        if rst.remaining[slot] == 0 {
                            work.push((s, d));
                        }
                    }
                }
            }
        }
        touched
    };

    // Advances processor `j`: skips dead replicas, starts the head when
    // its inputs are ready, detects fail-stop overruns.
    #[allow(clippy::too_many_arguments)]
    fn try_advance(
        j: usize,
        inst: &Instance,
        sched: &Schedule,
        state: &mut [Vec<RepState>],
        times: &mut [Vec<Option<(f64, f64)>>],
        ptr: &mut [usize],
        free_at: &mut [f64],
        proc_dead: &mut [bool],
        fail_at: &[f64],
        start_queue: &mut Vec<(f64, TaskId, usize, usize)>,
        kill_queue: &mut Vec<(TaskId, usize)>,
    ) {
        if proc_dead[j] {
            return;
        }
        let order = &sched.proc_order[j];
        while ptr[j] < order.len() {
            let (t, k) = order[ptr[j]];
            let st = &state[t.index()][k];
            match st.phase {
                Phase::Dead => {
                    ptr[j] += 1;
                }
                Phase::Running | Phase::Done => return,
                Phase::Waiting => {
                    if st.satisfied_count < inst.dag.preds(t).len() {
                        return; // head waits for inputs
                    }
                    let start = st.ready_time.max(free_at[j]);
                    let finish = start + inst.exec.time(t.index(), j);
                    if finish > fail_at[j] {
                        // Fail-stop during (or before) this replica: it
                        // and everything after it on this queue are lost.
                        proc_dead[j] = true;
                        for &(t2, k2) in &order[ptr[j]..] {
                            kill_queue.push((t2, k2));
                        }
                        return;
                    }
                    state[t.index()][k].phase = Phase::Running;
                    times[t.index()][k] = Some((start, finish));
                    free_at[j] = finish;
                    ptr[j] += 1;
                    start_queue.push((finish, t, k, j));
                }
            }
        }
    }

    // --- main loop -------------------------------------------------------

    let mut seed_kills = Vec::new();
    for j in 0..m {
        if fail_at[j] <= 0.0 {
            proc_dead[j] = true;
            seed_kills.extend(sched.proc_order[j].iter().copied());
        }
    }
    let mut pending_advance: Vec<usize> = (0..m).collect();
    pending_advance.extend(kill_cascade(seed_kills, &mut state));

    let mut start_queue: Vec<(f64, TaskId, usize, usize)> = Vec::new();
    let mut kill_queue: Vec<(TaskId, usize)> = Vec::new();
    let mut processed = 0usize;

    loop {
        while let Some(j) = pending_advance.pop() {
            try_advance(
                j,
                inst,
                sched,
                &mut state,
                &mut times,
                &mut ptr,
                &mut free_at,
                &mut proc_dead,
                &fail_at,
                &mut start_queue,
                &mut kill_queue,
            );
            if !kill_queue.is_empty() {
                let seeds = std::mem::take(&mut kill_queue);
                pending_advance.extend(kill_cascade(seeds, &mut state));
            }
            for (finish, t, k, j2) in start_queue.drain(..) {
                let id = event_data.len();
                event_data.push(Event::Finish {
                    task: t,
                    rep: k,
                    proc: j2,
                });
                events.push(id, (OrdF64::new(finish), id));
            }
        }

        let Some((id, (time, _))) = events.pop() else {
            break;
        };
        processed += 1;
        let now = time.get();
        match event_data[id] {
            Event::Arrival { task, rep, slot } => {
                let st = &mut state[task.index()][rep];
                if st.phase != Phase::Waiting || st.satisfied[slot] {
                    continue; // first-input-wins: later copies ignored
                }
                st.satisfied[slot] = true;
                st.satisfied_count += 1;
                st.ready_time = st.ready_time.max(now);
                if st.satisfied_count == dag.preds(task).len() {
                    pending_advance.push(sched.replicas_of(task)[rep].proc.index());
                }
            }
            Event::Finish { task, rep, proc } => {
                state[task.index()][rep].phase = Phase::Done;
                for &(s, eid) in dag.succs(task) {
                    let vol = dag.volume(eid);
                    let slot = slot_of_edge[eid.index()];
                    let candidates: Vec<usize> = match &sched.comm {
                        CommSelection::AllToAll => (0..sched.replicas_of(s).len()).collect(),
                        CommSelection::Matched(_) if rerouted => {
                            (0..sched.replicas_of(s).len()).collect()
                        }
                        CommSelection::Matched(_) => matched_receivers(eid, rep),
                    };
                    for d in candidates {
                        let rst = &state[s.index()][d];
                        if rst.phase != Phase::Waiting || rst.satisfied[slot] {
                            continue;
                        }
                        // Rerouted matched delivery: a non-matched sender
                        // only feeds receivers whose matched sender died.
                        if rerouted && matched_of[eid.index()][d] != rep && !rst.matched_dead[slot]
                        {
                            continue;
                        }
                        let dst_proc = sched.replicas_of(s)[d].proc.index();
                        let at = now + vol * inst.platform.delay(proc, dst_proc);
                        let nid = event_data.len();
                        event_data.push(Event::Arrival {
                            task: s,
                            rep: d,
                            slot,
                        });
                        events.push(nid, (OrdF64::new(at), nid));
                    }
                }
                pending_advance.push(proc);
            }
        }
    }

    // --- results ----------------------------------------------------------

    let status: Vec<Vec<ReplicaStatus>> = state
        .iter()
        .map(|per| {
            per.iter()
                .map(|s| match s.phase {
                    Phase::Done => ReplicaStatus::Done,
                    _ => ReplicaStatus::Dead,
                })
                .collect()
        })
        .collect();

    let mut outcome = SimOutcome::Completed;
    for t in dag.tasks() {
        if !times[t.index()].iter().any(Option::is_some) {
            outcome = SimOutcome::Failed { lost_task: t };
            break;
        }
    }
    let latency = if matches!(outcome, SimOutcome::Failed { .. }) {
        f64::INFINITY
    } else {
        dag.exits()
            .iter()
            .map(|&t| {
                times[t.index()]
                    .iter()
                    .flatten()
                    .map(|&(_, f)| f)
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(0.0, f64::max)
    };

    SimResult {
        latency,
        outcome,
        status,
        times,
        events: processed,
    }
}

/// Monte-Carlo crash campaign: simulates `replications` independent
/// uniform `crashes`-processor fail-at-time-zero scenarios against
/// `sched`, fanned out over the ambient rayon thread pool (pin the
/// worker count with `ThreadPool::install` or `FTSCHED_THREADS` in the
/// experiment layers).
///
/// Replication `r` draws its scenario from
/// [`crate::replication_seed`]`(base_seed, r)`, so the returned vector is
/// bit-identical whatever the thread count and stable across reruns —
/// the contract `tests/parallel_determinism.rs` (repo root) enforces.
pub fn simulate_replications(
    inst: &Instance,
    sched: &Schedule,
    crashes: usize,
    replications: usize,
    base_seed: u64,
) -> Vec<SimResult> {
    (0..replications)
        .into_par_iter()
        .map(|r| {
            let mut rng = StdRng::seed_from_u64(crate::replication_seed(base_seed, r as u64));
            let scenario = if crashes == 0 {
                FailureScenario::none()
            } else {
                FailureScenario::uniform(&mut rng, inst.num_procs(), crashes)
            };
            simulate(inst, sched, &scenario)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsched_core::{schedule, Algorithm, Replica};
    use platform::gen::{paper_instance, PaperInstanceConfig};
    use platform::{ExecutionMatrix, Platform, ProcId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use taskgraph::DagBuilder;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn diamond_instance(m: usize) -> Instance {
        let mut b = DagBuilder::new();
        let t: Vec<TaskId> = (0..4).map(|_| b.add_task(10.0)).collect();
        b.add_edge(t[0], t[1], 5.0);
        b.add_edge(t[0], t[2], 5.0);
        b.add_edge(t[1], t[3], 5.0);
        b.add_edge(t[2], t[3], 5.0);
        let dag = b.build().unwrap();
        let plat = Platform::uniform_delay(m, 1.0);
        let exec = ExecutionMatrix::consistent(&dag, &vec![1.0; m]);
        Instance::new(dag, plat, exec)
    }

    #[test]
    fn no_failure_matches_lower_bound_ftsa() {
        for seed in 0..4u64 {
            let mut r = rng(seed);
            let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
            for eps in [0usize, 1, 2] {
                let s = schedule(&inst, eps, Algorithm::Ftsa, &mut rng(seed)).unwrap();
                let sim = simulate(&inst, &s, &FailureScenario::none());
                assert!(sim.completed());
                assert!(
                    (sim.latency - s.latency_lower_bound()).abs() < 1e-6,
                    "sim(∅) must equal M* for FTSA (eps={eps}, seed={seed}): \
                     {} vs {}",
                    sim.latency,
                    s.latency_lower_bound()
                );
            }
        }
    }

    #[test]
    fn no_failure_matches_lower_bound_mc_ftsa() {
        let mut r = rng(10);
        let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
        let s = schedule(&inst, 2, Algorithm::McFtsaGreedy, &mut rng(10)).unwrap();
        let sim = simulate(&inst, &s, &FailureScenario::none());
        assert!(sim.completed());
        assert!((sim.latency - s.latency_lower_bound()).abs() < 1e-6);
    }

    #[test]
    fn no_failure_ftbar_within_bounds() {
        let mut r = rng(11);
        let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
        let s = schedule(&inst, 1, Algorithm::Ftbar, &mut rng(11)).unwrap();
        let sim = simulate(&inst, &s, &FailureScenario::none());
        assert!(sim.completed());
        // FTBAR duplicates placed after a consumer can only improve
        // arrivals, so the simulation may beat the stored bound.
        assert!(sim.latency <= s.latency_lower_bound() + 1e-6);
    }

    #[test]
    fn proposition_4_2_bounds_hold_for_all_to_all() {
        for seed in 0..4u64 {
            let mut r = rng(seed + 50);
            let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
            // Every all-to-all pipeline configuration (the eq. 3/4
            // guarantee is specific to all-to-all first-arrival
            // semantics; matched schedules are covered separately).
            let all_to_all = Algorithm::ALL
                .into_iter()
                .filter(|a| a.scheduler().comm == ftsched_core::pipeline::CommAxis::AllToAll);
            for (eps, alg) in [1usize, 2]
                .into_iter()
                .flat_map(|e| all_to_all.clone().map(move |a| (e, a)))
            {
                let s = schedule(&inst, eps, alg, &mut rng(seed)).unwrap();
                for probe in 0..6u64 {
                    let scen = FailureScenario::uniform(
                        &mut rng(seed * 100 + probe),
                        inst.num_procs(),
                        eps,
                    );
                    let sim = simulate(&inst, &s, &scen);
                    assert!(sim.completed(), "Theorem 4.1 violated ({alg:?})");
                    assert!(
                        sim.latency <= s.latency_upper_bound() + 1e-6,
                        "L <= M violated ({alg:?}, eps={eps})"
                    );
                    assert!(
                        sim.latency >= s.latency_lower_bound() - 1e-6,
                        "M* <= L violated ({alg:?}, eps={eps})"
                    );
                }
            }
        }
    }

    #[test]
    fn mc_ftsa_rerouted_always_completes() {
        for seed in 0..4u64 {
            let mut r = rng(seed + 70);
            let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
            for eps in [1usize, 2] {
                let s = schedule(&inst, eps, Algorithm::McFtsaGreedy, &mut rng(seed)).unwrap();
                for probe in 0..6u64 {
                    let scen = FailureScenario::uniform(
                        &mut rng(seed * 131 + probe),
                        inst.num_procs(),
                        eps,
                    );
                    let sim = simulate(&inst, &s, &scen);
                    assert!(sim.completed(), "rerouted MC-FTSA must complete");
                    assert!(sim.latency.is_finite());
                }
            }
        }
    }

    #[test]
    fn mc_ftsa_strict_times_match_plan_when_completed() {
        // Under strict delivery, every surviving replica runs exactly at
        // its planned (deterministic) times.
        let mut r = rng(12);
        let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
        let s = schedule(&inst, 2, Algorithm::McFtsaGreedy, &mut rng(12)).unwrap();
        for probe in 0..10u64 {
            let scen = FailureScenario::uniform(&mut rng(probe), inst.num_procs(), 2);
            let sim = simulate_with(&inst, &s, &scen, FallbackPolicy::Strict);
            if !sim.completed() {
                continue; // the composition gap: allowed under strict
            }
            for t in inst.dag.tasks() {
                for (k, tm) in sim.times[t.index()].iter().enumerate() {
                    if let Some((st, fi)) = *tm {
                        let r = s.replicas_of(t)[k];
                        assert!((st - r.start_lb).abs() < 1e-6);
                        assert!((fi - r.finish_lb).abs() < 1e-6);
                    }
                }
            }
            assert!(sim.latency >= s.latency_lower_bound() - 1e-6);
            assert!(sim.latency <= s.latency_upper_bound() + 1e-6);
        }
    }

    /// Documents the Proposition 4.3 composition gap: per-edge robust
    /// matchings do not guarantee joint input survival. One failure kills
    /// both replicas of the join task under strict delivery; rerouted
    /// delivery recovers it.
    #[test]
    fn strict_semantics_composition_gap() {
        // DAG: a → t, b → t. ε = 1.
        // a replicas: P0, P1; b replicas: P0, P2; t replicas: P3, P4.
        // Matchings: a@P0 → t@P3, a@P1 → t@P4; b@P0 → t@P4, b@P2 → t@P3.
        // Failure of P0 kills a@P0 (starving t@P3 via a) and b@P0
        // (starving t@P4 via b): both replicas of t starve.
        let mut bd = DagBuilder::new();
        let a = bd.add_task(1.0);
        let b = bd.add_task(1.0);
        let t = bd.add_task(1.0);
        let e_at = bd.add_edge(a, t, 1.0);
        let e_bt = bd.add_edge(b, t, 1.0);
        let dag = bd.build().unwrap();
        let plat = Platform::uniform_delay(5, 1.0);
        let exec = ExecutionMatrix::consistent(&dag, &[1.0; 5]);
        let inst = Instance::new(dag, plat, exec);

        let mk = |proc: u32, s: f64, f: f64| Replica {
            proc: ProcId(proc),
            start_lb: s,
            finish_lb: f,
            start_ub: s,
            finish_ub: f,
        };
        let mut sched = ftsched_core::Schedule {
            epsilon: 1,
            replicas: vec![
                vec![mk(0, 0.0, 1.0), mk(1, 0.0, 1.0)],
                vec![mk(0, 1.0, 2.0), mk(2, 0.0, 1.0)],
                vec![mk(3, 3.0, 4.0), mk(4, 3.0, 4.0)],
            ],
            proc_order: vec![
                vec![(a, 0), (b, 0)],
                vec![(a, 1)],
                vec![(b, 1)],
                vec![(t, 0)],
                vec![(t, 1)],
            ],
            comm: CommSelection::AllToAll,
            schedule_order: vec![a, b, t],
        };
        let mut matched = vec![Vec::new(); 2];
        matched[e_at.index()] = vec![(0usize, 0usize), (1, 1)];
        matched[e_bt.index()] = vec![(0usize, 1usize), (1, 0)];
        sched.comm = CommSelection::Matched(matched);

        let scen = FailureScenario::at_time_zero([ProcId(0)]);
        let strict = simulate_with(&inst, &sched, &scen, FallbackPolicy::Strict);
        assert!(
            !strict.completed(),
            "strict matched delivery must exhibit the composition gap"
        );
        let rerouted = simulate_with(&inst, &sched, &scen, FallbackPolicy::Rerouted);
        assert!(rerouted.completed(), "rerouting must recover the join task");
    }

    #[test]
    fn exhaustive_single_failures_diamond() {
        let inst = diamond_instance(4);
        for alg in Algorithm::ALL {
            let s = schedule(&inst, 1, alg, &mut rng(3)).unwrap();
            for p in 0..4u32 {
                let scen = FailureScenario::at_time_zero([ProcId(p)]);
                let sim = simulate(&inst, &s, &scen);
                assert!(sim.completed(), "{alg:?} lost a task when P{p} failed");
            }
        }
    }

    #[test]
    fn exhaustive_double_failures_diamond() {
        let inst = diamond_instance(5);
        for alg in Algorithm::ALL {
            let s = schedule(&inst, 2, alg, &mut rng(4)).unwrap();
            for a in 0..5u32 {
                for b in (a + 1)..5u32 {
                    let scen = FailureScenario::at_time_zero([ProcId(a), ProcId(b)]);
                    let sim = simulate(&inst, &s, &scen);
                    assert!(sim.completed(), "{alg:?} failed under {{P{a}, P{b}}}");
                }
            }
        }
    }

    #[test]
    fn more_failures_than_tolerated_can_lose_tasks() {
        let inst = diamond_instance(3);
        let s = schedule(&inst, 0, Algorithm::Ftsa, &mut rng(5)).unwrap();
        let scen = FailureScenario::at_time_zero((0..3).map(ProcId));
        let sim = simulate(&inst, &s, &scen);
        assert!(!sim.completed());
        assert_eq!(sim.latency, f64::INFINITY);
    }

    #[test]
    fn failed_processor_executes_nothing() {
        let inst = diamond_instance(4);
        let s = schedule(&inst, 1, Algorithm::Ftsa, &mut rng(6)).unwrap();
        let scen = FailureScenario::at_time_zero([ProcId(0)]);
        let sim = simulate(&inst, &s, &scen);
        for t in inst.dag.tasks() {
            for (k, r) in s.replicas_of(t).iter().enumerate() {
                if r.proc == ProcId(0) {
                    assert_eq!(sim.status[t.index()][k], ReplicaStatus::Dead);
                    assert!(sim.times[t.index()][k].is_none());
                }
            }
        }
    }

    #[test]
    fn mid_execution_failure_keeps_earlier_work() {
        // Single proc chain: a (0..10) then c (10..20); proc fails at 15:
        // a completes, c dies.
        let mut b = DagBuilder::new();
        let a = b.add_task(10.0);
        let c = b.add_task(10.0);
        b.add_edge(a, c, 0.0);
        let dag = b.build().unwrap();
        let plat = Platform::uniform_delay(2, 1.0);
        let exec = ExecutionMatrix::consistent(&dag, &[1.0, 0.01]);
        let inst = Instance::new(dag, plat, exec);
        let s = schedule(&inst, 0, Algorithm::Ftsa, &mut rng(7)).unwrap();
        // Both tasks land on fast P0 (P1 is 100x slower; intra comm free).
        assert_eq!(s.replicas_of(a)[0].proc, ProcId(0));
        assert_eq!(s.replicas_of(c)[0].proc, ProcId(0));
        let scen = FailureScenario::new(vec![(ProcId(0), 15.0)]);
        let sim = simulate(&inst, &s, &scen);
        assert_eq!(sim.status[a.index()][0], ReplicaStatus::Done);
        assert_eq!(sim.status[c.index()][0], ReplicaStatus::Dead);
        assert!(!sim.completed());
    }

    #[test]
    fn failure_exactly_at_finish_boundary_completes() {
        let mut b = DagBuilder::new();
        b.add_task(10.0);
        let dag = b.build().unwrap();
        let plat = Platform::uniform_delay(1, 1.0);
        let exec = ExecutionMatrix::consistent(&dag, &[1.0]);
        let inst = Instance::new(dag, plat, exec);
        let s = schedule(&inst, 0, Algorithm::Ftsa, &mut rng(8)).unwrap();
        let sim = simulate(&inst, &s, &FailureScenario::new(vec![(ProcId(0), 10.0)]));
        assert!(
            sim.completed(),
            "fail-silent boundary: finish == τ completes"
        );
        assert_eq!(sim.latency, 10.0);
    }

    #[test]
    fn mc_ftsa_exhaustive_double_failures_rerouted() {
        let mut r = rng(60);
        let inst = paper_instance(
            &mut r,
            &PaperInstanceConfig {
                tasks_lo: 30,
                tasks_hi: 30,
                procs: 6,
                ..Default::default()
            },
        );
        let s = schedule(&inst, 2, Algorithm::McFtsaGreedy, &mut rng(60)).unwrap();
        for a in 0..6u32 {
            for b in (a + 1)..6u32 {
                let scen = FailureScenario::at_time_zero([ProcId(a), ProcId(b)]);
                let sim = simulate(&inst, &s, &scen);
                assert!(sim.completed(), "rerouted delivery failed {{P{a}, P{b}}}");
                assert!(sim.latency.is_finite());
            }
        }
    }

    #[test]
    fn replications_complete_within_design_point() {
        let mut r = rng(90);
        let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
        let s = schedule(&inst, 2, Algorithm::Ftsa, &mut rng(90)).unwrap();
        let sims = simulate_replications(&inst, &s, 2, 20, 0xCAFE);
        assert_eq!(sims.len(), 20);
        for sim in &sims {
            assert!(sim.completed(), "≤ ε crashes must not lose tasks");
            assert!(sim.latency <= s.latency_upper_bound() + 1e-6);
            assert!(sim.latency >= s.latency_lower_bound() - 1e-6);
        }
    }

    #[test]
    fn replications_are_thread_count_invariant() {
        let mut r = rng(91);
        let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
        let s = schedule(&inst, 1, Algorithm::Ftsa, &mut rng(91)).unwrap();
        let run = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| simulate_replications(&inst, &s, 1, 16, 7))
        };
        let a = run(1);
        let b = run(4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.latency.to_bits(), y.latency.to_bits());
            assert_eq!(x.times, y.times);
        }
    }

    #[test]
    fn deterministic_simulation() {
        let inst = diamond_instance(4);
        let s = schedule(&inst, 1, Algorithm::Ftsa, &mut rng(9)).unwrap();
        let scen = FailureScenario::at_time_zero([ProcId(1)]);
        let a = simulate(&inst, &s, &scen);
        let b = simulate(&inst, &s, &scen);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.times, b.times);
    }
}
