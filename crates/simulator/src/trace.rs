//! Execution traces and ASCII Gantt rendering.

use crate::crash::SimResult;
use ftsched_core::Schedule;
use platform::Instance;
use std::fmt::Write as _;

/// One executed interval on a processor.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Processor index.
    pub proc: usize,
    /// The task (its workload label when present, else `t<i>`).
    pub label: String,
    /// Simulated start time.
    pub start: f64,
    /// Simulated finish time.
    pub finish: f64,
}

/// Extracts the executed intervals of a simulation, sorted by processor
/// then start time.
pub fn trace(inst: &Instance, sched: &Schedule, sim: &SimResult) -> Vec<TraceEntry> {
    let mut out = Vec::new();
    for t in inst.dag.tasks() {
        for (k, times) in sim.times[t.index()].iter().enumerate() {
            if let Some((start, finish)) = *times {
                out.push(TraceEntry {
                    proc: sched.replicas_of(t)[k].proc.index(),
                    label: inst
                        .dag
                        .label(t)
                        .map_or_else(|| t.to_string(), str::to_owned),
                    start,
                    finish,
                });
            }
        }
    }
    out.sort_by(|a, b| a.proc.cmp(&b.proc).then(a.start.total_cmp(&b.start)));
    out
}

/// Renders an ASCII Gantt chart of the simulation, `width` columns wide.
///
/// Each processor gets one row; `#` marks busy time, `.` idle. A legend
/// of `proc: task[start, finish)` lines follows the chart.
pub fn gantt(inst: &Instance, sched: &Schedule, sim: &SimResult, width: usize) -> String {
    let entries = trace(inst, sched, sim);
    let horizon = entries
        .iter()
        .map(|e| e.finish)
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let m = inst.num_procs();
    let width = width.max(10);
    let scale = width as f64 / horizon;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "time 0 {:-^w$} {horizon:.1}",
        "",
        w = width.saturating_sub(8)
    );
    for j in 0..m {
        let mut row = vec!['.'; width];
        for e in entries.iter().filter(|e| e.proc == j) {
            let a = ((e.start * scale) as usize).min(width - 1);
            let b = ((e.finish * scale).ceil() as usize).clamp(a + 1, width);
            for c in &mut row[a..b] {
                *c = '#';
            }
        }
        let _ = writeln!(out, "P{j:<3} {}", row.iter().collect::<String>());
    }
    out.push('\n');
    for e in &entries {
        let _ = writeln!(
            out,
            "P{}: {} [{:.2}, {:.2})",
            e.proc, e.label, e.start, e.finish
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::simulate;
    use ftsched_core::{schedule, Algorithm};
    use platform::{ExecutionMatrix, FailureScenario, Platform};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use taskgraph::DagBuilder;

    fn instance() -> Instance {
        let mut b = DagBuilder::new();
        let a = b.add_labelled_task(10.0, "prep");
        let c = b.add_task(10.0);
        b.add_edge(a, c, 5.0);
        let dag = b.build().unwrap();
        let plat = Platform::uniform_delay(2, 1.0);
        let exec = ExecutionMatrix::consistent(&dag, &[1.0, 1.0]);
        Instance::new(dag, plat, exec)
    }

    #[test]
    fn trace_contains_all_completed_replicas() {
        let inst = instance();
        let s = schedule(&inst, 1, Algorithm::Ftsa, &mut StdRng::seed_from_u64(1)).unwrap();
        let sim = simulate(&inst, &s, &FailureScenario::none());
        let tr = trace(&inst, &s, &sim);
        // 2 tasks × 2 replicas, all complete without failures.
        assert_eq!(tr.len(), 4);
        assert!(tr.iter().any(|e| e.label == "prep"));
        // Sorted by processor then start.
        for w in tr.windows(2) {
            assert!(w[0].proc <= w[1].proc);
        }
    }

    #[test]
    fn gantt_renders_rows_per_processor() {
        let inst = instance();
        let s = schedule(&inst, 1, Algorithm::Ftsa, &mut StdRng::seed_from_u64(2)).unwrap();
        let sim = simulate(&inst, &s, &FailureScenario::none());
        let g = gantt(&inst, &s, &sim, 40);
        assert!(g.contains("P0"));
        assert!(g.contains("P1"));
        assert!(g.contains('#'));
        assert!(g.contains("prep"));
    }

    #[test]
    fn gantt_of_empty_sim() {
        let inst = instance();
        let s = schedule(&inst, 0, Algorithm::Ftsa, &mut StdRng::seed_from_u64(3)).unwrap();
        let scen = FailureScenario::at_time_zero(inst.platform.procs());
        let sim = simulate(&inst, &s, &scen);
        let g = gantt(&inst, &s, &sim, 30);
        assert!(!g.contains('#'), "nothing executed, nothing drawn");
    }
}
