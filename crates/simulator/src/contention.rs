//! Contention-aware execution: the bounded multi-port and one-port
//! communication models of the paper's future work (Section 7).
//!
//! The base model charges every message only its link latency
//! `V · d(P_k, P_h)`, with unlimited concurrency. Real network cards
//! serialize: under the **one-port** model a processor drives at most one
//! outgoing transfer at a time; under the **bounded multi-port** model at
//! most `k` concurrent transfers. The paper predicts: "With these models,
//! we expect MC-FTSA to be superior to other scheduling algorithms, since
//! it already accounts for reduced communications" — FTSA's `e(ε+1)²`
//! messages fight for ports, MC-FTSA's `e(ε+1)` do not.
//!
//! Model details (documented simplifications):
//!
//! * Contention is applied on the *sender* side only; receivers accept
//!   any number of concurrent incoming transfers. (The symmetric
//!   receiver-side port would need a global transfer schedule; the
//!   sender-side model already exhibits the serialization effect the
//!   paper anticipates.)
//! * A transfer occupies the sender's port for its whole duration
//!   `V · d(src, dst)`; intra-processor deliveries bypass the port.
//! * Pending transfers leave the port in FIFO order of their enqueue
//!   time (ties: insertion order), which keeps runs deterministic.
//! * Failure scenarios are fail-at-time-zero (the paper's experimental
//!   model); matched communications use the rerouted delivery policy of
//!   [`crate::crash`].

use ftcollections::{IndexedHeap, OrdF64};
use ftsched_core::{CommSelection, Schedule};
use platform::{FailureScenario, Instance};
use taskgraph::TaskId;

/// How many concurrent outgoing transfers a processor may drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortModel {
    /// Unlimited concurrency — the paper's base model; matches
    /// [`crate::crash::simulate`] exactly.
    Unbounded,
    /// At most one outgoing transfer at a time.
    OnePort,
    /// At most `k ≥ 1` concurrent outgoing transfers.
    BoundedMultiPort(usize),
}

impl PortModel {
    fn capacity(self) -> usize {
        match self {
            PortModel::Unbounded => usize::MAX,
            PortModel::OnePort => 1,
            PortModel::BoundedMultiPort(k) => {
                assert!(k >= 1, "multi-port capacity must be >= 1");
                k
            }
        }
    }
}

/// Result of a contention-aware simulation.
#[derive(Debug, Clone)]
pub struct ContentionResult {
    /// Achieved latency (`f64::INFINITY` if a task lost every replica).
    pub latency: f64,
    /// Whether every task completed at least one replica.
    pub completed: bool,
    /// Total number of port-serialized transfers.
    pub transfers: usize,
    /// Total time transfers spent *queued* behind busy ports (a direct
    /// measure of contention).
    pub queueing_delay: f64,
}

#[derive(Debug, Clone, Copy)]
struct Transfer {
    dst_task: TaskId,
    dst_rep: usize,
    slot: usize,
    duration: f64,
    enqueued: f64,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Replica `(task, rep)` finishes computing on `proc`.
    Finish {
        task: TaskId,
        rep: usize,
        proc: usize,
    },
    /// A transfer out of `proc` completes; its payload lands at the
    /// destination replica.
    TransferDone { proc: usize, t: Transfer },
}

/// Simulates `sched` under `scenario` with sender-side port contention.
///
/// With [`PortModel::Unbounded`] the result matches
/// [`crate::crash::simulate`] latencies (the transfer accounting differs
/// from the base engine only in bookkeeping).
pub fn simulate_contention(
    inst: &Instance,
    sched: &Schedule,
    scenario: &FailureScenario,
    ports: PortModel,
) -> ContentionResult {
    assert!(
        scenario.iter().all(|(_, t)| t == 0.0),
        "contention simulation supports fail-at-time-zero scenarios only"
    );
    let capacity = ports.capacity();
    let m = inst.num_procs();
    let dag = &inst.dag;
    let matched = matches!(sched.comm, CommSelection::Matched(_));

    let failed: Vec<bool> = (0..m)
        .map(|j| scenario.fails(platform::ProcId(j as u32)))
        .collect();

    // Static death marking (rerouted semantics — see crash.rs): a replica
    // dies iff its processor failed or some predecessor lost all replicas.
    let mut dead: Vec<Vec<bool>> = dag
        .tasks()
        .map(|t| {
            sched
                .replicas_of(t)
                .iter()
                .map(|r| failed[r.proc.index()])
                .collect()
        })
        .collect();
    for &t in dag.topological_order() {
        let starved = dag
            .preds(t)
            .iter()
            .any(|&(p, _)| dead[p.index()].iter().all(|&d| d));
        if starved {
            dead[t.index()].iter_mut().for_each(|d| *d = true);
        }
    }

    // matched_of[eid][dst_rep] = sender index.
    let matched_of: Vec<Vec<usize>> = match &sched.comm {
        CommSelection::AllToAll => Vec::new(),
        CommSelection::Matched(mm) => dag
            .edge_list()
            .map(|(eid, _, dst, _)| {
                let mut v = vec![usize::MAX; sched.replicas_of(dst).len()];
                for &(s, d) in &mm[eid.index()] {
                    v[d] = s;
                }
                v
            })
            .collect(),
    };
    let mut slot_of_edge = vec![usize::MAX; dag.num_edges()];
    for t in dag.tasks() {
        for (slot, &(_, eid)) in dag.preds(t).iter().enumerate() {
            slot_of_edge[eid.index()] = slot;
        }
    }

    // Per-replica input state: satisfied flags + ready time.
    let mut satisfied: Vec<Vec<Vec<bool>>> = dag
        .tasks()
        .map(|t| vec![vec![false; dag.preds(t).len()]; sched.replicas_of(t).len()])
        .collect();
    let mut sat_count: Vec<Vec<usize>> = dag
        .tasks()
        .map(|t| vec![0usize; sched.replicas_of(t).len()])
        .collect();
    let mut ready_time: Vec<Vec<f64>> = dag
        .tasks()
        .map(|t| vec![0.0f64; sched.replicas_of(t).len()])
        .collect();
    let mut finish_time: Vec<Vec<Option<f64>>> = dag
        .tasks()
        .map(|t| vec![None; sched.replicas_of(t).len()])
        .collect();

    // Per-processor compute queue state. The placement chains are
    // materialized once so the advance loop can index a flat slice.
    let proc_orders: Vec<Vec<(TaskId, usize)>> =
        (0..m).map(|j| sched.proc_order(j).collect()).collect();
    let mut ptr = vec![0usize; m];
    let mut free_at = vec![0.0f64; m];

    // Per-processor port state.
    let mut port_busy = vec![0usize; m];
    let mut port_queue: Vec<std::collections::VecDeque<Transfer>> =
        vec![std::collections::VecDeque::new(); m];

    let mut events: IndexedHeap<(OrdF64, usize)> = IndexedHeap::new(1024);
    let mut event_data: Vec<Ev> = Vec::with_capacity(1024);
    let mut transfers = 0usize;
    let mut queueing_delay = 0.0f64;

    macro_rules! push_ev {
        ($time:expr, $ev:expr) => {{
            let id = event_data.len();
            event_data.push($ev);
            events.push(id, (OrdF64::new($time), id));
        }};
    }

    // Should sender replica `k` feed destination replica `d` on `eid`?
    let feeds = |eid: taskgraph::EdgeId, k: usize, src: TaskId, d: usize| -> bool {
        if !matched {
            return true;
        }
        let mo = matched_of[eid.index()][d];
        if mo == k {
            return true;
        }
        // Rerouted delivery: non-matched senders step in only when the
        // matched sender is dead.
        mo == usize::MAX || dead[src.index()][mo]
    };

    // Start queued head replicas on processor `j` whenever possible.
    // Returns true if progress was made.
    macro_rules! try_advance {
        ($j:expr, $sched:expr) => {{
            let j = $j;
            if !failed[j] {
                let order = &proc_orders[j];
                while ptr[j] < order.len() {
                    let (t, k) = order[ptr[j]];
                    if dead[t.index()][k] {
                        ptr[j] += 1;
                        continue;
                    }
                    if finish_time[t.index()][k].is_some() {
                        break; // running or done
                    }
                    if sat_count[t.index()][k] < dag.preds(t).len() {
                        break; // waiting for inputs
                    }
                    let start = ready_time[t.index()][k].max(free_at[j]);
                    let fin = start + inst.exec.time(t.index(), j);
                    finish_time[t.index()][k] = Some(fin);
                    free_at[j] = fin;
                    ptr[j] += 1;
                    push_ev!(
                        fin,
                        Ev::Finish {
                            task: t,
                            rep: k,
                            proc: j
                        }
                    );
                }
            }
        }};
    }

    for j in 0..m {
        try_advance!(j, sched);
    }

    while let Some((id, (time, _))) = events.pop() {
        let now = time.get();
        match event_data[id] {
            Ev::Finish { task, rep, proc } => {
                // Enqueue outgoing transfers; deliver intra-processor
                // payloads immediately.
                for &(s, eid) in dag.succs(task) {
                    let vol = dag.volume(eid);
                    let slot = slot_of_edge[eid.index()];
                    for d in 0..sched.replicas_of(s).len() {
                        if dead[s.index()][d]
                            || satisfied[s.index()][d][slot]
                            || !feeds(eid, rep, task, d)
                        {
                            continue;
                        }
                        let dst_proc = sched.replicas_of(s)[d].proc.index();
                        if dst_proc == proc {
                            satisfied[s.index()][d][slot] = true;
                            sat_count[s.index()][d] += 1;
                            ready_time[s.index()][d] = ready_time[s.index()][d].max(now);
                            try_advance!(dst_proc, sched);
                            continue;
                        }
                        let t = Transfer {
                            dst_task: s,
                            dst_rep: d,
                            slot,
                            duration: vol * inst.platform.delay(proc, dst_proc),
                            enqueued: now,
                        };
                        if port_busy[proc] < capacity {
                            port_busy[proc] += 1;
                            transfers += 1;
                            push_ev!(now + t.duration, Ev::TransferDone { proc, t });
                        } else {
                            port_queue[proc].push_back(t);
                        }
                    }
                }
                try_advance!(proc, sched);
            }
            Ev::TransferDone { proc, t } => {
                // Payload lands.
                let (s, d, slot) = (t.dst_task, t.dst_rep, t.slot);
                if !dead[s.index()][d] && !satisfied[s.index()][d][slot] {
                    satisfied[s.index()][d][slot] = true;
                    sat_count[s.index()][d] += 1;
                    ready_time[s.index()][d] = ready_time[s.index()][d].max(now);
                    try_advance!(sched.replicas_of(s)[d].proc.index(), sched);
                }
                // Free the port and start the next queued transfer.
                port_busy[proc] -= 1;
                if let Some(next) = port_queue[proc].pop_front() {
                    port_busy[proc] += 1;
                    transfers += 1;
                    queueing_delay += now - next.enqueued;
                    push_ev!(now + next.duration, Ev::TransferDone { proc, t: next });
                }
            }
        }
    }

    let completed = dag
        .tasks()
        .all(|t| (0..sched.replicas_of(t).len()).any(|k| finish_time[t.index()][k].is_some()));
    let latency = if !completed {
        f64::INFINITY
    } else {
        dag.exits()
            .iter()
            .map(|&t| {
                finish_time[t.index()]
                    .iter()
                    .flatten()
                    .copied()
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(0.0, f64::max)
    };

    ContentionResult {
        latency,
        completed,
        transfers,
        queueing_delay,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::simulate;
    use ftsched_core::{schedule, Algorithm};
    use platform::gen::{paper_instance, PaperInstanceConfig};
    use platform::ProcId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance(seed: u64) -> Instance {
        let mut r = StdRng::seed_from_u64(seed);
        paper_instance(&mut r, &PaperInstanceConfig::default())
    }

    #[test]
    fn unbounded_matches_base_engine() {
        for seed in 0..3u64 {
            let inst = instance(seed);
            for alg in Algorithm::ALL {
                let s = schedule(&inst, 2, alg, &mut StdRng::seed_from_u64(seed)).unwrap();
                let base = simulate(&inst, &s, &FailureScenario::none());
                let cont =
                    simulate_contention(&inst, &s, &FailureScenario::none(), PortModel::Unbounded);
                assert!(
                    (base.latency - cont.latency).abs() < 1e-9,
                    "{alg:?} seed {seed}: {} vs {}",
                    base.latency,
                    cont.latency
                );
                assert!(cont.completed);
                assert_eq!(cont.queueing_delay, 0.0);
            }
        }
    }

    #[test]
    fn one_port_can_only_slow_things_down() {
        for seed in 0..3u64 {
            let inst = instance(seed + 10);
            let s = schedule(&inst, 2, Algorithm::Ftsa, &mut StdRng::seed_from_u64(seed)).unwrap();
            let unb =
                simulate_contention(&inst, &s, &FailureScenario::none(), PortModel::Unbounded);
            let one = simulate_contention(&inst, &s, &FailureScenario::none(), PortModel::OnePort);
            assert!(one.latency >= unb.latency - 1e-9);
            assert!(one.completed);
        }
    }

    #[test]
    fn capacity_is_monotone() {
        let inst = instance(30);
        let s = schedule(&inst, 2, Algorithm::Ftsa, &mut StdRng::seed_from_u64(1)).unwrap();
        let mut last = f64::INFINITY;
        for k in [1usize, 2, 4, 64] {
            let r = simulate_contention(
                &inst,
                &s,
                &FailureScenario::none(),
                PortModel::BoundedMultiPort(k),
            );
            assert!(
                r.latency <= last + 1e-9,
                "more ports must not increase latency (k={k})"
            );
            last = r.latency;
        }
    }

    #[test]
    fn mc_ftsa_suffers_less_contention_than_ftsa() {
        // The paper's Section 7 prediction, quantified: under one-port,
        // MC-FTSA's e(ε+1) messages queue less than FTSA's e(ε+1)².
        let mut ftsa_penalty = 0.0;
        let mut mc_penalty = 0.0;
        for seed in 0..5u64 {
            let inst = instance(seed + 60);
            let f = schedule(&inst, 2, Algorithm::Ftsa, &mut StdRng::seed_from_u64(seed)).unwrap();
            let mc = schedule(
                &inst,
                2,
                Algorithm::McFtsaGreedy,
                &mut StdRng::seed_from_u64(seed),
            )
            .unwrap();
            let pen = |s: &ftsched_core::Schedule| {
                let unb =
                    simulate_contention(&inst, s, &FailureScenario::none(), PortModel::Unbounded);
                let one =
                    simulate_contention(&inst, s, &FailureScenario::none(), PortModel::OnePort);
                one.latency / unb.latency
            };
            ftsa_penalty += pen(&f);
            mc_penalty += pen(&mc);
        }
        assert!(
            mc_penalty < ftsa_penalty,
            "MC-FTSA should pay a smaller one-port penalty \
             (MC {mc_penalty:.3} vs FTSA {ftsa_penalty:.3})"
        );
    }

    #[test]
    fn transfers_counted_and_failures_handled() {
        let inst = instance(90);
        let s = schedule(&inst, 1, Algorithm::Ftsa, &mut StdRng::seed_from_u64(2)).unwrap();
        let scen = FailureScenario::at_time_zero([ProcId(0)]);
        let r = simulate_contention(&inst, &s, &scen, PortModel::OnePort);
        assert!(r.completed);
        assert!(r.transfers > 0);
        assert!(r.latency.is_finite());
    }

    #[test]
    #[should_panic]
    fn rejects_timed_failures() {
        let inst = instance(91);
        let s = schedule(&inst, 1, Algorithm::Ftsa, &mut StdRng::seed_from_u64(3)).unwrap();
        let scen = FailureScenario::new(vec![(ProcId(0), 5.0)]);
        let _ = simulate_contention(&inst, &s, &scen, PortModel::OnePort);
    }
}
