//! Streaming DAG arrivals on a shared, persistently occupied platform.
//!
//! The offline experiments schedule one DAG on an empty platform. This
//! driver models the online scenario family: task graphs arrive over
//! time (Poisson or trace-driven, [`ArrivalProcess`]) onto processors
//! that still carry earlier work, failures consume replicas mid-stream,
//! and completed DAGs release their recorded intervals.
//!
//! # Two timelines
//!
//! The driver threads **two** [`OccupancyTimeline`]s through the
//! stream:
//!
//! * **planned** — fed by each schedule's optimistic replica spans
//!   (`start_lb..finish_lb`); its floors seed the *next* DAG's
//!   [`ftsched_core::schedule_onto`] call. The scheduler plans against
//!   what it promised, not against what failures later did — it has no
//!   failure oracle.
//! * **actual** — fed by the *simulated* spans under the failure
//!   scenario; its floors seed each DAG's crash replay
//!   ([`crate::crash::simulate_outcome_from_into`]), so real execution
//!   on a processor is serialized across DAGs.
//!
//! Both are advanced to each DAG's arrival instant (nothing can run on
//! a DAG's behalf before it arrives) and released up to the arrival
//! (retiring drained bookkeeping so memory stays bounded).
//!
//! # Determinism and conservation
//!
//! DAG `i`'s tie-break RNG derives from
//! [`crate::replication_seed`]`(seed, i)`, so a stream is bit-identical
//! across reruns and thread counts. A single DAG arriving at `t = 0`
//! on an empty stream reduces exactly to the offline
//! `schedule_into` + `simulate_outcome_into` pair — the occupancy
//! contract pinned by the platform/core test suites.
//!
//! # Zero-allocation steady state
//!
//! All per-arrival state lives in a [`StreamWorkspace`]; after a warm-up
//! pass over a stream shape, re-running the stream performs no heap
//! allocation (pinned by the root `tests/alloc_counter.rs` suite).

use crate::crash::{self, CrashWorkspace, FallbackPolicy};
use ftsched_core::{Algorithm, ScheduleError, ScheduleWorkspace};
use platform::{FailureScenario, Instance, OccupancyTimeline};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Poisson arrivals: `count` DAGs with exponential inter-arrival times
/// of rate `rate` (mean gap `1/rate`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoissonArrivals {
    /// Arrival rate λ (> 0): expected DAGs per unit time.
    pub rate: f64,
    /// Number of DAGs in the stream.
    pub count: usize,
}

/// Trace-driven arrivals: explicit absolute arrival instants
/// (non-decreasing, finite, ≥ 0).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceArrivals {
    /// Absolute arrival times, one per DAG.
    pub times: Vec<f64>,
}

/// The arrival process of a DAG stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a fixed rate.
    Poisson(PoissonArrivals),
    /// Replay of recorded arrival instants.
    Trace(TraceArrivals),
}

impl ArrivalProcess {
    /// Number of DAGs the process emits.
    pub fn count(&self) -> usize {
        match self {
            ArrivalProcess::Poisson(p) => p.count,
            ArrivalProcess::Trace(t) => t.times.len(),
        }
    }

    /// Samples the absolute, non-decreasing arrival instants into `out`
    /// (cleared first). Poisson draws consume exactly one `f64` per
    /// arrival from `rng`; traces copy verbatim and consume none.
    pub fn sample_into(&self, rng: &mut StdRng, out: &mut Vec<f64>) {
        out.clear();
        match self {
            ArrivalProcess::Poisson(p) => {
                assert!(
                    p.rate > 0.0 && p.rate.is_finite(),
                    "Poisson rate must be > 0"
                );
                let mut t = 0.0;
                for _ in 0..p.count {
                    let u: f64 = rng.gen();
                    t += -(1.0 - u).ln() / p.rate;
                    out.push(t);
                }
            }
            ArrivalProcess::Trace(tr) => {
                let mut prev = 0.0;
                for &t in &tr.times {
                    assert!(
                        t.is_finite() && t >= prev,
                        "trace arrivals must be finite, >= 0 and non-decreasing"
                    );
                    prev = t;
                }
                out.extend_from_slice(&tr.times);
            }
        }
    }
}

/// Per-DAG result of one stream run. All times are on the stream's
/// absolute clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DagOutcome {
    /// When the DAG arrived.
    pub arrival: f64,
    /// Earliest simulated replica start (`INFINITY` if nothing ran).
    pub first_start: f64,
    /// Simulated application finish (`INFINITY` when a task lost every
    /// replica).
    pub finish: f64,
    /// The schedule's optimistic finish `M*` (absolute — includes the
    /// wait behind earlier planned work).
    pub planned_finish: f64,
    /// Whether every task completed at least one replica.
    pub completed: bool,
}

impl DagOutcome {
    /// Sojourn time in the system: finish − arrival.
    pub fn response_time(&self) -> f64 {
        self.finish - self.arrival
    }

    /// Queueing delay before the first replica ran: first start −
    /// arrival.
    pub fn wait_time(&self) -> f64 {
        self.first_start - self.arrival
    }

    /// Pure execution latency once started: finish − first start.
    pub fn latency(&self) -> f64 {
        self.finish - self.first_start
    }
}

/// Reusable state for a whole stream run; see the [module docs](self).
#[derive(Debug, Default)]
pub struct StreamWorkspace {
    sched_ws: ScheduleWorkspace,
    crash_ws: CrashWorkspace,
    planned: OccupancyTimeline,
    actual: OccupancyTimeline,
}

impl StreamWorkspace {
    /// Creates an empty workspace; buffers are sized by the first run.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, m: usize) {
        if self.planned.num_procs() != m {
            self.planned = OccupancyTimeline::new(m);
            self.actual = OccupancyTimeline::new(m);
        } else {
            self.planned.reset();
            self.actual.reset();
        }
    }
}

/// Runs a whole DAG stream: for each `(instance, arrival)` pair in
/// arrival order, schedules onto the planned occupancy, simulates the
/// schedule from the actual occupancy floors under `scenario` (failure
/// times on the absolute stream clock), and folds both outcomes
/// forward. One `DagOutcome` per DAG is pushed to `out` (cleared
/// first). `policy` governs matched (MC-FTSA) delivery under failures:
/// `Rerouted` is only defined when every failure time is `0.0`
/// (processors dead for the whole stream); positive-time scenarios must
/// use `Strict` — under which a matched schedule can genuinely lose a
/// DAG mid-stream (`completed == false`, infinite `finish`).
///
/// All instances must share the processor count; arrivals must be
/// non-decreasing. DAG `i`'s tie-break RNG is
/// [`crate::replication_seed`]`(seed, i)` — independent of every other
/// DAG, so streams are reproducible and extendable.
#[allow(clippy::too_many_arguments)]
pub fn run_stream_into(
    insts: &[Instance],
    arrivals: &[f64],
    epsilon: usize,
    algorithm: Algorithm,
    scenario: &FailureScenario,
    policy: FallbackPolicy,
    seed: u64,
    ws: &mut StreamWorkspace,
    out: &mut Vec<DagOutcome>,
) -> Result<(), ScheduleError> {
    assert_eq!(
        insts.len(),
        arrivals.len(),
        "one arrival instant per instance"
    );
    out.clear();
    out.reserve(insts.len());
    let m = insts.first().map_or(0, Instance::num_procs);
    ws.reset(m);

    for (i, (inst, &arrival)) in insts.iter().zip(arrivals).enumerate() {
        assert_eq!(
            inst.num_procs(),
            m,
            "stream instances must share the platform"
        );
        debug_assert!(arrival >= 0.0 && arrival.is_finite());
        // Nothing on this DAG's behalf may run before it arrives, and
        // intervals fully drained by now are bookkeeping we can retire.
        ws.planned.advance(arrival);
        ws.actual.advance(arrival);
        ws.planned.release_until(arrival);
        ws.actual.release_until(arrival);

        let mut rng = StdRng::seed_from_u64(crate::replication_seed(seed, i as u64));
        let sched = ftsched_core::schedule_onto(
            inst,
            epsilon,
            algorithm,
            &mut rng,
            &ws.planned,
            &mut ws.sched_ws,
        )?;

        // Commit the planned spans: per processor in placement order,
        // so inserts are tail-appends past the floor.
        for j in 0..m {
            for (t, k) in sched.proc_order(j) {
                let r = sched.replicas_of(t)[k];
                ws.planned.insert(j, r.start_lb, r.finish_lb);
            }
        }
        let planned_finish = sched.latency_lower_bound();

        let outcome = crash::simulate_outcome_from_into(
            inst,
            sched,
            scenario,
            policy,
            ws.actual.floors(),
            &mut ws.crash_ws,
        );
        let first_start = ws.crash_ws.fold_busy_into(&mut ws.actual);

        out.push(DagOutcome {
            arrival,
            first_start,
            finish: outcome.latency,
            planned_finish,
            completed: outcome.completed(),
        });
    }
    Ok(())
}

/// Optimistic isolated makespan lower bound of one DAG: the longest
/// path where every task runs at its fastest execution time and
/// communications are free. Used as the per-DAG deadline base
/// (`deadline = arrival + stretch · bound`) — unlike the schedule's
/// `M*` it is independent of the platform's occupancy, so deadlines
/// don't stretch under load. `scratch` is reused (allocation-free when
/// warm).
pub fn isolated_lower_bound_into(inst: &Instance, scratch: &mut Vec<f64>) -> f64 {
    let dag = &inst.dag;
    let v = dag.num_tasks();
    scratch.clear();
    scratch.resize(v, 0.0);
    let mut best: f64 = 0.0;
    for &t in dag.topological_order() {
        let exec = inst
            .exec
            .times_row(t.index())
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let ready = dag
            .preds(t)
            .iter()
            .map(|&(p, _)| scratch[p.index()])
            .fold(0.0, f64::max);
        let finish = ready + exec;
        scratch[t.index()] = finish;
        if finish > best {
            best = finish;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::simulate_outcome_into;
    use ftsched_core::schedule_into;
    use platform::gen::{paper_instance, PaperInstanceConfig};
    use platform::ProcId;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn small_instances(n: usize, procs: usize, seed: u64) -> Vec<Instance> {
        let mut r = rng(seed);
        (0..n)
            .map(|_| {
                paper_instance(
                    &mut r,
                    &PaperInstanceConfig {
                        tasks_lo: 20,
                        tasks_hi: 25,
                        procs,
                        ..Default::default()
                    },
                )
            })
            .collect()
    }

    #[test]
    fn poisson_arrivals_are_increasing_and_deterministic() {
        let p = ArrivalProcess::Poisson(PoissonArrivals {
            rate: 0.5,
            count: 20,
        });
        assert_eq!(p.count(), 20);
        let mut a = Vec::new();
        let mut b = Vec::new();
        p.sample_into(&mut rng(7), &mut a);
        p.sample_into(&mut rng(7), &mut b);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        let mut prev = 0.0;
        for &t in &a {
            assert!(t > prev && t.is_finite());
            prev = t;
        }
    }

    #[test]
    fn trace_arrivals_copy_verbatim() {
        let p = ArrivalProcess::Trace(TraceArrivals {
            times: vec![0.0, 1.5, 1.5, 9.0],
        });
        let mut out = Vec::new();
        p.sample_into(&mut rng(1), &mut out);
        assert_eq!(out, vec![0.0, 1.5, 1.5, 9.0]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn trace_rejects_decreasing_times() {
        let p = ArrivalProcess::Trace(TraceArrivals {
            times: vec![2.0, 1.0],
        });
        p.sample_into(&mut rng(1), &mut Vec::new());
    }

    #[test]
    fn single_dag_stream_reduces_to_offline_pair() {
        // One DAG at t = 0, no failures: the stream outcome must be
        // bit-identical to schedule_into + simulate_outcome_into.
        let insts = small_instances(1, 8, 11);
        let mut ws = StreamWorkspace::new();
        let mut out = Vec::new();
        for alg in [Algorithm::Ftsa, Algorithm::McFtsaGreedy, Algorithm::Ftbar] {
            run_stream_into(
                &insts,
                &[0.0],
                1,
                alg,
                &FailureScenario::none(),
                FallbackPolicy::Strict,
                0xABCD,
                &mut ws,
                &mut out,
            )
            .unwrap();
            let mut sws = ScheduleWorkspace::new();
            let mut seed_rng = StdRng::seed_from_u64(crate::replication_seed(0xABCD, 0));
            let sched = schedule_into(&insts[0], 1, alg, &mut seed_rng, &mut sws).unwrap();
            let mut cws = CrashWorkspace::new();
            let offline = simulate_outcome_into(
                &insts[0],
                sched,
                &FailureScenario::none(),
                FallbackPolicy::Strict,
                &mut cws,
            );
            assert_eq!(out.len(), 1);
            assert!(out[0].completed);
            assert_eq!(
                out[0].finish.to_bits(),
                offline.latency.to_bits(),
                "{alg:?}"
            );
            assert_eq!(
                out[0].planned_finish.to_bits(),
                sched.latency_lower_bound().to_bits()
            );
        }
    }

    #[test]
    fn stream_outcomes_respect_arrivals_and_complete() {
        let insts = small_instances(6, 8, 21);
        let arrivals: Vec<f64> = (0..6).map(|i| i as f64 * 10.0).collect();
        let mut ws = StreamWorkspace::new();
        let mut out = Vec::new();
        run_stream_into(
            &insts,
            &arrivals,
            1,
            Algorithm::Ftsa,
            &FailureScenario::none(),
            FallbackPolicy::Strict,
            0xFEED,
            &mut ws,
            &mut out,
        )
        .unwrap();
        assert_eq!(out.len(), 6);
        for o in &out {
            assert!(o.completed);
            assert!(o.first_start >= o.arrival - 1e-9, "ran before arrival");
            assert!(o.finish >= o.first_start);
            assert!(o.wait_time() >= -1e-9);
            assert!(o.response_time() >= o.latency() - 1e-9);
        }
    }

    #[test]
    fn congestion_increases_waiting() {
        // The same 4 DAGs arriving all at t=0 versus far apart: the
        // all-at-once stream must wait at least as much in total.
        let insts = small_instances(4, 4, 33);
        let mut ws = StreamWorkspace::new();
        let (mut burst, mut spaced) = (Vec::new(), Vec::new());
        run_stream_into(
            &insts,
            &[0.0; 4],
            1,
            Algorithm::Ftsa,
            &FailureScenario::none(),
            FallbackPolicy::Strict,
            5,
            &mut ws,
            &mut burst,
        )
        .unwrap();
        run_stream_into(
            &insts,
            &[0.0, 1e4, 2e4, 3e4],
            1,
            Algorithm::Ftsa,
            &FailureScenario::none(),
            FallbackPolicy::Strict,
            5,
            &mut ws,
            &mut spaced,
        )
        .unwrap();
        let wait = |v: &[DagOutcome]| v.iter().map(DagOutcome::wait_time).sum::<f64>();
        assert!(wait(&burst) >= wait(&spaced) - 1e-9);
        // Far-apart arrivals see an effectively empty platform.
        for o in &spaced {
            assert!(o.wait_time() < 1e4, "spaced arrivals should not queue");
        }
    }

    #[test]
    fn mid_stream_failure_kills_later_dags_only() {
        // One processor fails deep into the stream: earlier DAGs keep
        // their fault-free latency; with eps = 1 every DAG still
        // completes (strict all-to-all replication).
        let insts = small_instances(4, 6, 44);
        let arrivals = [0.0, 500.0, 1000.0, 1500.0];
        let mut ws = StreamWorkspace::new();
        let (mut clean, mut failed) = (Vec::new(), Vec::new());
        run_stream_into(
            &insts,
            &arrivals,
            1,
            Algorithm::Ftsa,
            &FailureScenario::none(),
            FallbackPolicy::Strict,
            9,
            &mut ws,
            &mut clean,
        )
        .unwrap();
        // Crash strictly after DAG 0 completes but (comfortably) before
        // the stream drains, so the failure is genuinely mid-stream.
        let t_fail = clean[0].finish + 1.0;
        assert!(t_fail < clean.last().unwrap().finish);
        let scen = FailureScenario::new(vec![(ProcId(0), t_fail)]);
        run_stream_into(
            &insts,
            &arrivals,
            1,
            Algorithm::Ftsa,
            &scen,
            FallbackPolicy::Strict,
            9,
            &mut ws,
            &mut failed,
        )
        .unwrap();
        assert_eq!(clean.len(), failed.len());
        // DAG 0 finished before the crash — identical outcome.
        assert_eq!(clean[0].finish.to_bits(), failed[0].finish.to_bits());
        // Every DAG completes despite the crash (ε = 1 replication).
        for o in &failed {
            assert!(o.completed, "eps=1 must survive a single crash");
        }
    }

    #[test]
    fn stream_is_rerun_stable() {
        let insts = small_instances(5, 8, 55);
        let p = ArrivalProcess::Poisson(PoissonArrivals {
            rate: 0.05,
            count: 5,
        });
        let mut arrivals = Vec::new();
        p.sample_into(&mut rng(3), &mut arrivals);
        let mut ws = StreamWorkspace::new();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let scen = FailureScenario::new(vec![(ProcId(2), 40.0)]);
        run_stream_into(
            &insts,
            &arrivals,
            2,
            Algorithm::McFtsaGreedy,
            &scen,
            FallbackPolicy::Strict,
            77,
            &mut ws,
            &mut a,
        )
        .unwrap();
        let mut ws2 = StreamWorkspace::new();
        run_stream_into(
            &insts,
            &arrivals,
            2,
            Algorithm::McFtsaGreedy,
            &scen,
            FallbackPolicy::Strict,
            77,
            &mut ws2,
            &mut b,
        )
        .unwrap();
        assert_eq!(a, b);
        // And reusing the same workspace is also stable.
        run_stream_into(
            &insts,
            &arrivals,
            2,
            Algorithm::McFtsaGreedy,
            &scen,
            FallbackPolicy::Strict,
            77,
            &mut ws,
            &mut b,
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn isolated_bound_is_a_true_lower_bound() {
        let insts = small_instances(3, 8, 66);
        let mut scratch = Vec::new();
        for inst in &insts {
            let bound = isolated_lower_bound_into(inst, &mut scratch);
            assert!(bound > 0.0);
            let mut ws = ScheduleWorkspace::new();
            let s = schedule_into(inst, 1, Algorithm::Ftsa, &mut rng(1), &mut ws).unwrap();
            assert!(
                s.latency_lower_bound() >= bound - 1e-9,
                "no schedule can beat the free-communication critical path"
            );
        }
    }
}
