//! Analytic replay: a queue-free re-derivation of the crash execution
//! for *fail-at-time-zero* scenarios.
//!
//! Because FTSA and MC-FTSA place all replicas of a task when the task is
//! scheduled, every data or processor dependency of a replica points to a
//! task earlier in `schedule_order`. The simulated times can therefore be
//! computed by one pass in that order — no event queue — which gives an
//! independent oracle for the discrete-event engine (the two must agree
//! exactly; see the cross-check property tests).
//!
//! Matched (MC-FTSA) communications follow the
//! [`Rerouted`](crate::crash::FallbackPolicy::Rerouted) policy, matching
//! [`crate::crash::simulate`]'s default: a receiver whose matched sender
//! died accepts the earliest copy from any surviving replica.
//!
//! The replay rejects schedules containing extra duplicates (FTBAR's
//! minimize-start-time output) because a later-placed duplicate may feed
//! an earlier replica, breaking the one-pass order; use
//! [`crate::crash::simulate`] for those.

use ftsched_core::{CommSelection, Schedule};
use platform::{FailureScenario, Instance};

/// Outcome of an analytic replay.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// Achieved latency (`f64::INFINITY` if some task lost all replicas).
    pub latency: f64,
    /// Whether every task completed at least one replica.
    pub completed: bool,
    /// Per task, per replica: `(start, finish)` or `None` if dead.
    pub times: Vec<Vec<Option<(f64, f64)>>>,
}

/// Replays `sched` under `scenario` (all failure times must be 0).
///
/// # Panics
/// Panics if the scenario contains positive failure times or the schedule
/// carries extra duplicates (both unsupported by the one-pass order).
pub fn replay(inst: &Instance, sched: &Schedule, scenario: &FailureScenario) -> ReplayResult {
    assert!(
        scenario.iter().all(|(_, t)| t == 0.0),
        "analytic replay supports fail-at-time-zero scenarios only"
    );
    let dag = &inst.dag;
    assert!(
        dag.tasks()
            .all(|t| sched.replicas_of(t).len() == sched.epsilon + 1),
        "analytic replay requires exactly ε+1 replicas per task (no duplicates)"
    );

    let failed: Vec<bool> = (0..inst.num_procs())
        .map(|j| scenario.fails(platform::ProcId(j as u32)))
        .collect();

    // matched_of[eid][dst_rep] = src replica index (matched schedules).
    let matched_of: Vec<Vec<usize>> = match &sched.comm {
        CommSelection::AllToAll => Vec::new(),
        CommSelection::Matched(mm) => dag
            .edge_list()
            .map(|(eid, _, dst, _)| {
                let mut v = vec![usize::MAX; sched.replicas_of(dst).len()];
                for &(s, d) in &mm[eid.index()] {
                    v[d] = s;
                }
                v
            })
            .collect(),
    };

    // --- static death marking ---------------------------------------------
    // With rerouted matched delivery the starvation rule coincides with
    // the all-to-all rule: a replica dies iff its processor failed or,
    // for some predecessor, *every* replica of that predecessor is dead.
    // Tasks are processed in topological order, so one pass suffices.
    let mut dead: Vec<Vec<bool>> = dag
        .tasks()
        .map(|t| {
            sched
                .replicas_of(t)
                .iter()
                .map(|r| failed[r.proc.index()])
                .collect()
        })
        .collect();
    for &t in dag.topological_order() {
        for k in 0..sched.replicas_of(t).len() {
            if dead[t.index()][k] {
                continue;
            }
            let starved = dag
                .preds(t)
                .iter()
                .any(|&(p, _)| dead[p.index()].iter().all(|&d| d));
            if starved {
                dead[t.index()][k] = true;
            }
        }
    }

    // --- one-pass time computation in schedule order ------------------------
    let mut times: Vec<Vec<Option<(f64, f64)>>> = dag
        .tasks()
        .map(|t| vec![None; sched.replicas_of(t).len()])
        .collect();
    let mut proc_last = vec![0.0f64; inst.num_procs()];

    for &t in &sched.schedule_order {
        for (k, rep) in sched.replicas_of(t).iter().enumerate() {
            if dead[t.index()][k] {
                continue;
            }
            let j = rep.proc.index();
            let mut arrival = 0.0f64;
            for &(p, eid) in dag.preds(t) {
                let vol = dag.volume(eid);
                let fallback_min = || {
                    sched
                        .replicas_of(p)
                        .iter()
                        .enumerate()
                        .filter(|&(sk, _)| !dead[p.index()][sk])
                        .map(|(sk, s)| {
                            let (_, f) =
                                times[p.index()][sk].expect("live sender computed earlier");
                            f + vol * inst.platform.delay(s.proc.index(), j)
                        })
                        .fold(f64::INFINITY, f64::min)
                };
                let first = match &sched.comm {
                    CommSelection::AllToAll => fallback_min(),
                    CommSelection::Matched(_) => {
                        let sk = matched_of[eid.index()][k];
                        if sk != usize::MAX && !dead[p.index()][sk] {
                            let s = &sched.replicas_of(p)[sk];
                            let (_, f) =
                                times[p.index()][sk].expect("live sender computed earlier");
                            f + vol * inst.platform.delay(s.proc.index(), j)
                        } else {
                            // Matched sender dead: rerouted delivery.
                            fallback_min()
                        }
                    }
                };
                arrival = arrival.max(first);
            }
            let start = arrival.max(proc_last[j]);
            let finish = start + inst.exec.time(t.index(), j);
            times[t.index()][k] = Some((start, finish));
            proc_last[j] = finish;
        }
    }

    let completed = dag
        .tasks()
        .all(|t| times[t.index()].iter().any(Option::is_some));
    let latency = if !completed {
        f64::INFINITY
    } else {
        dag.exits()
            .iter()
            .map(|&t| {
                times[t.index()]
                    .iter()
                    .flatten()
                    .map(|&(_, f)| f)
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(0.0, f64::max)
    };

    ReplayResult {
        latency,
        completed,
        times,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::simulate;
    use ftsched_core::pipeline::PlacementAxis;
    use ftsched_core::{schedule, Algorithm};
    use platform::gen::{paper_instance, PaperInstanceConfig};
    use platform::ProcId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The algorithms replay supports: every pipeline configuration
    /// whose placement never appends duplicates (exactly ε+1 replicas
    /// per task — the one-pass order's precondition).
    fn replayable() -> impl Iterator<Item = Algorithm> {
        Algorithm::ALL
            .into_iter()
            .filter(|a| a.scheduler().placement != PlacementAxis::MinStart { duplicate: true })
    }

    #[test]
    fn replay_matches_des_no_failures() {
        for seed in 0..4u64 {
            let mut r = StdRng::seed_from_u64(seed);
            let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
            for alg in replayable() {
                let s = schedule(&inst, 2, alg, &mut StdRng::seed_from_u64(seed)).unwrap();
                let a = replay(&inst, &s, &FailureScenario::none());
                let b = simulate(&inst, &s, &FailureScenario::none());
                assert!((a.latency - b.latency).abs() < 1e-9, "{alg:?} seed {seed}");
            }
        }
    }

    #[test]
    fn replay_matches_des_under_failures() {
        for seed in 0..4u64 {
            let mut r = StdRng::seed_from_u64(seed + 40);
            let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
            for alg in replayable() {
                let s = schedule(&inst, 2, alg, &mut StdRng::seed_from_u64(seed)).unwrap();
                for probe in 0..8u64 {
                    let scen = FailureScenario::uniform(
                        &mut StdRng::seed_from_u64(seed * 97 + probe),
                        inst.num_procs(),
                        2,
                    );
                    let a = replay(&inst, &s, &scen);
                    let b = simulate(&inst, &s, &scen);
                    assert!(
                        (a.latency - b.latency).abs() < 1e-9,
                        "{alg:?} seed {seed} probe {probe}: {} vs {}",
                        a.latency,
                        b.latency
                    );
                    assert_eq!(a.completed, b.completed());
                    assert_eq!(a.times, b.times, "full trace must agree");
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn rejects_timed_failures() {
        let mut r = StdRng::seed_from_u64(1);
        let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
        let s = schedule(&inst, 1, Algorithm::Ftsa, &mut StdRng::seed_from_u64(1)).unwrap();
        let scen = FailureScenario::new(vec![(ProcId(0), 5.0)]);
        let _ = replay(&inst, &s, &scen);
    }
}
