//! Discrete-event crash-execution simulator.
//!
//! The paper's Section 6 evaluates schedules "when processors crash down
//! by computing the real execution time for a given schedule rather than
//! just bounds". The authors' evaluation harness is not public; this
//! crate rebuilds it as a discrete-event simulator implementing exactly
//! the execution semantics the paper's proofs rely on:
//!
//! * **Fail-silent / fail-stop processors** — a failed processor computes
//!   and sends nothing from its failure time onwards. A replica that
//!   finishes strictly before the failure still delivers its messages.
//! * **Active replication, first-input-wins** — "as soon as it receives
//!   the first input data, the task is executed and ignores later
//!   incoming data" (proof of Proposition 4.2).
//! * **In-order processors** — each processor executes its planned
//!   replica sequence non-preemptively, skipping replicas that are dead
//!   (placed on a failed processor, or starved because every potential
//!   sender of some input died).
//!
//! Two engines are provided and cross-checked against each other:
//! [`crash::simulate`], the full event-queue engine (supports
//! mid-execution failures), and [`replay::replay`], a memoized analytic
//! pass valid for fail-at-time-zero scenarios.
//!
//! Key invariants (covered by the test suites):
//!
//! * `simulate(∅) == M*` for FTSA/MC-FTSA schedules, `≤ M*` for FTBAR
//!   (later duplicates can only improve arrivals);
//! * `M* ≤ simulate(F) ≤ M` for every scenario `F` with at most `ε`
//!   fail-at-zero failures (Proposition 4.2);
//! * every task completes at least one replica under at most `ε`
//!   failures (Theorem 4.1 / Proposition 4.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contention;
pub mod crash;
pub mod reliability;
pub mod replay;
pub mod trace;

pub use contention::{simulate_contention, ContentionResult, PortModel};
pub use crash::{simulate, SimOutcome, SimResult};
