//! Discrete-event crash-execution simulator.
//!
//! The paper's Section 6 evaluates schedules "when processors crash down
//! by computing the real execution time for a given schedule rather than
//! just bounds". The authors' evaluation harness is not public; this
//! crate rebuilds it as a discrete-event simulator implementing exactly
//! the execution semantics the paper's proofs rely on:
//!
//! * **Fail-silent / fail-stop processors** — a failed processor computes
//!   and sends nothing from its failure time onwards. A replica that
//!   finishes strictly before the failure still delivers its messages.
//! * **Active replication, first-input-wins** — "as soon as it receives
//!   the first input data, the task is executed and ignores later
//!   incoming data" (proof of Proposition 4.2).
//! * **In-order processors** — each processor executes its planned
//!   replica sequence non-preemptively, skipping replicas that are dead
//!   (placed on a failed processor, or starved because every potential
//!   sender of some input died).
//!
//! Beyond single-schedule replay, [`streaming`] drives whole **DAG
//! streams** on a shared platform: arrivals (Poisson or trace-driven)
//! schedule onto the persistent [`platform::OccupancyTimeline`] left by
//! earlier DAGs, failures strike mid-stream on the absolute clock, and
//! an empty occupancy reduces every step bit-for-bit to the offline
//! single-DAG pair.
//!
//! Two engines are provided and cross-checked against each other:
//! [`crash::simulate`], the full event-queue engine (supports
//! mid-execution failures), and [`replay::replay`], a memoized analytic
//! pass valid for fail-at-time-zero scenarios.
//!
//! Key invariants (covered by the test suites):
//!
//! * `simulate(∅) == M*` for FTSA/MC-FTSA schedules, `≤ M*` for FTBAR
//!   (later duplicates can only improve arrivals);
//! * `M* ≤ simulate(F) ≤ M` for every scenario `F` with at most `ε`
//!   fail-at-zero failures (Proposition 4.2);
//! * every task completes at least one replica under at most `ε`
//!   failures (Theorem 4.1 / Proposition 4.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contention;
pub mod crash;
pub mod reliability;
pub mod replay;
pub mod streaming;
pub mod trace;

pub use contention::{simulate_contention, ContentionResult, PortModel};
pub use crash::{simulate, simulate_replications, SimOutcome, SimResult};
pub use streaming::{
    run_stream_into, ArrivalProcess, DagOutcome, PoissonArrivals, StreamWorkspace, TraceArrivals,
};

/// Derives the RNG seed of Monte-Carlo replication `index` from a base
/// seed (a SplitMix64 finalizer over `base ^ index`). Replications seeded
/// this way are independent of evaluation order, which is what lets the
/// crash and reliability campaigns fan out over threads while returning
/// bit-identical results at any worker count.
pub fn replication_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod seed_tests {
    use super::replication_seed;

    #[test]
    fn replication_seeds_are_stable_and_distinct() {
        let a = replication_seed(42, 0);
        let b = replication_seed(42, 1);
        let c = replication_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, replication_seed(42, 0));
    }
}
