//! Reliability analysis: the failure-probability model of the paper's
//! future work (Section 7: "we want to study a more complex failure
//! model, in which we would also account for the failure probability of
//! the application").
//!
//! Processors fail independently with probability `p` (fail-stop, from
//! time 0). A schedule *survives* a failure pattern when every task
//! keeps at least one live, non-starved replica. Two estimators:
//!
//! * [`survival_probability_exact`] — sums over all `2^m` failure
//!   patterns. The per-pattern check reduces to bitmask tests: a task
//!   dies iff the failure mask covers its replica-processor mask, so the
//!   exact computation handles `m ≤ ~24` comfortably after mask
//!   deduplication.
//! * [`survival_probability_monte_carlo`] — samples failure patterns;
//!   also reports the conditional expected latency `E[L | survival]`
//!   via the analytic replay.
//!
//! For all-to-all communication the mask reduction is *exact* (Theorem
//! 4.1's argument: a task dies iff all its replica processors fail).
//! For matched communication under the rerouted delivery policy the same
//! rule applies (see `crash.rs`), so both schedule families are covered.

use crate::replay::replay;
use ftsched_core::Schedule;
use platform::{FailureScenario, Instance, ProcId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Per-task replica-processor masks, deduplicated. The schedule fails
/// under failure mask `F` iff some task mask `T` satisfies `T & F == T`.
fn task_masks(sched: &Schedule, m: usize) -> Vec<u64> {
    assert!(
        m <= 64,
        "mask-based reliability supports up to 64 processors"
    );
    let mut masks: Vec<u64> = sched
        .tasks_replicas()
        .filter(|reps| !reps.is_empty())
        .map(|reps| {
            reps.iter()
                .fold(0u64, |acc, r| acc | (1u64 << r.proc.index()))
        })
        .collect();
    masks.sort_unstable();
    masks.dedup();
    // Drop masks that are supersets of another mask: if the smaller mask
    // is fully failed, the schedule already failed.
    let reduced: Vec<u64> = masks
        .iter()
        .copied()
        .filter(|&t| !masks.iter().any(|&o| o != t && (t & o) == o))
        .collect();
    reduced
}

/// Exact probability that the schedule survives iid per-processor
/// failure probability `p` (any number of failures may occur — this goes
/// beyond the `≤ ε` design point).
pub fn survival_probability_exact(inst: &Instance, sched: &Schedule, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p));
    let m = inst.num_procs();
    assert!(
        m <= 24,
        "exact enumeration is exponential; use Monte Carlo beyond 24"
    );
    let masks = task_masks(sched, m);
    if masks.is_empty() {
        return 1.0;
    }
    let mut survive = 0.0f64;
    for f in 0u64..(1u64 << m) {
        // Subset test, not equality — clippy's `contains` rewrite would
        // change the semantics.
        #[allow(clippy::manual_contains)]
        let dead_task = masks.iter().any(|&t| (t & f) == t);
        if dead_task {
            continue; // some task lost every replica
        }
        let k = f.count_ones() as i32;
        survive += p.powi(k) * (1.0 - p).powi(m as i32 - k);
    }
    survive
}

/// Result of a Monte Carlo reliability estimate.
#[derive(Debug, Clone)]
pub struct MonteCarloReliability {
    /// Estimated survival probability.
    pub survival: f64,
    /// Mean achieved latency conditioned on survival (`NaN` when no
    /// sample survived).
    pub expected_latency: f64,
    /// Number of samples drawn.
    pub samples: usize,
}

/// Monte Carlo estimate of the survival probability and the conditional
/// expected latency under iid per-processor failure probability `p`.
pub fn survival_probability_monte_carlo(
    inst: &Instance,
    sched: &Schedule,
    p: f64,
    samples: usize,
    rng: &mut impl Rng,
) -> MonteCarloReliability {
    assert!((0.0..=1.0).contains(&p));
    assert!(samples > 0);
    let m = inst.num_procs();
    let mut survived = 0usize;
    let mut latency_acc = 0.0f64;
    for _ in 0..samples {
        let failed: Vec<ProcId> = (0..m as u32)
            .map(ProcId)
            .filter(|_| rng.gen_bool(p))
            .collect();
        let scen = FailureScenario::at_time_zero(failed);
        let r = replay(inst, sched, &scen);
        if r.completed {
            survived += 1;
            latency_acc += r.latency;
        }
    }
    MonteCarloReliability {
        survival: survived as f64 / samples as f64,
        expected_latency: if survived > 0 {
            latency_acc / survived as f64
        } else {
            f64::NAN
        },
        samples,
    }
}

/// Parallel Monte Carlo estimate of the survival probability and the
/// conditional expected latency, fanned out over the ambient rayon
/// thread pool.
///
/// Unlike [`survival_probability_monte_carlo`] — which consumes a
/// caller-provided RNG stream and is therefore inherently sequential —
/// sample `i` here draws its failure pattern from
/// [`crate::replication_seed`]`(base_seed, i)`. The per-sample outcomes
/// are combined in sample order on the calling thread, so the estimate
/// (including the floating-point latency mean) is bit-identical at any
/// thread count.
pub fn survival_probability_monte_carlo_par(
    inst: &Instance,
    sched: &Schedule,
    p: f64,
    samples: usize,
    base_seed: u64,
) -> MonteCarloReliability {
    assert!((0.0..=1.0).contains(&p));
    assert!(samples > 0);
    let m = inst.num_procs();
    let outcomes: Vec<Option<f64>> = (0..samples)
        .into_par_iter()
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(crate::replication_seed(base_seed, i as u64));
            let failed: Vec<ProcId> = (0..m as u32)
                .map(ProcId)
                .filter(|_| rng.gen_bool(p))
                .collect();
            let scen = FailureScenario::at_time_zero(failed);
            let r = replay(inst, sched, &scen);
            r.completed.then_some(r.latency)
        })
        .collect();
    let survived = outcomes.iter().flatten().count();
    let latency_acc: f64 = outcomes.iter().flatten().sum();
    MonteCarloReliability {
        survival: survived as f64 / samples as f64,
        expected_latency: if survived > 0 {
            latency_acc / survived as f64
        } else {
            f64::NAN
        },
        samples,
    }
}

/// Probability that *at most* `epsilon` of `m` processors fail — the
/// design point the ε-replication targets. `P(valid) ≥ P(≤ ε failures)`
/// always holds by Theorem 4.1.
pub fn design_point_probability(m: usize, epsilon: usize, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p));
    let mut total = 0.0f64;
    for k in 0..=epsilon.min(m) {
        total += binomial(m, k) * p.powi(k as i32) * (1.0 - p).powi((m - k) as i32);
    }
    total.min(1.0)
}

fn binomial(n: usize, k: usize) -> f64 {
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsched_core::{schedule, Algorithm};
    use platform::gen::{paper_instance, PaperInstanceConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_instance(procs: usize, seed: u64) -> Instance {
        let mut r = StdRng::seed_from_u64(seed);
        paper_instance(
            &mut r,
            &PaperInstanceConfig {
                tasks_lo: 25,
                tasks_hi: 25,
                procs,
                ..Default::default()
            },
        )
    }

    #[test]
    fn zero_failure_probability_means_certainty() {
        let inst = small_instance(6, 1);
        let s = schedule(&inst, 1, Algorithm::Ftsa, &mut StdRng::seed_from_u64(1)).unwrap();
        assert_eq!(survival_probability_exact(&inst, &s, 0.0), 1.0);
    }

    #[test]
    fn all_processors_failing_kills_everything() {
        let inst = small_instance(6, 2);
        let s = schedule(&inst, 1, Algorithm::Ftsa, &mut StdRng::seed_from_u64(2)).unwrap();
        let surv = survival_probability_exact(&inst, &s, 1.0);
        assert!(surv.abs() < 1e-12);
    }

    #[test]
    fn survival_dominates_design_point() {
        // Theorem 4.1 probabilistically: P(survive) >= P(<= eps failures).
        let inst = small_instance(8, 3);
        for eps in [1usize, 2] {
            let s = schedule(&inst, eps, Algorithm::Ftsa, &mut StdRng::seed_from_u64(3)).unwrap();
            for p in [0.05, 0.2, 0.5] {
                let surv = survival_probability_exact(&inst, &s, p);
                let dp = design_point_probability(8, eps, p);
                assert!(
                    surv >= dp - 1e-12,
                    "eps={eps} p={p}: survival {surv} < design point {dp}"
                );
            }
        }
    }

    #[test]
    fn replication_improves_reliability() {
        let inst = small_instance(8, 4);
        let p = 0.3;
        let mut last = 0.0;
        for eps in [0usize, 1, 2, 3] {
            let s = schedule(&inst, eps, Algorithm::Ftsa, &mut StdRng::seed_from_u64(4)).unwrap();
            let surv = survival_probability_exact(&inst, &s, p);
            assert!(
                surv >= last - 1e-9,
                "more replicas must not hurt reliability"
            );
            last = surv;
        }
        assert!(last > 0.5, "eps=3 of 8 procs at p=0.3 should be quite safe");
    }

    #[test]
    fn monte_carlo_agrees_with_exact() {
        let inst = small_instance(7, 5);
        let s = schedule(&inst, 2, Algorithm::Ftsa, &mut StdRng::seed_from_u64(5)).unwrap();
        let p = 0.25;
        let exact = survival_probability_exact(&inst, &s, p);
        let mc =
            survival_probability_monte_carlo(&inst, &s, p, 4000, &mut StdRng::seed_from_u64(99));
        assert!(
            (mc.survival - exact).abs() < 0.03,
            "MC {} vs exact {exact}",
            mc.survival
        );
        if mc.survival > 0.0 {
            assert!(mc.expected_latency >= s.latency_lower_bound() - 1e-6);
        }
    }

    #[test]
    fn parallel_monte_carlo_agrees_with_exact() {
        let inst = small_instance(7, 8);
        let s = schedule(&inst, 2, Algorithm::Ftsa, &mut StdRng::seed_from_u64(8)).unwrap();
        let p = 0.25;
        let exact = survival_probability_exact(&inst, &s, p);
        let mc = survival_probability_monte_carlo_par(&inst, &s, p, 4000, 0xAB5EED);
        assert!(
            (mc.survival - exact).abs() < 0.03,
            "parallel MC {} vs exact {exact}",
            mc.survival
        );
        if mc.survival > 0.0 {
            assert!(mc.expected_latency >= s.latency_lower_bound() - 1e-6);
        }
    }

    #[test]
    fn parallel_monte_carlo_is_thread_count_invariant() {
        let inst = small_instance(6, 9);
        let s = schedule(&inst, 1, Algorithm::Ftsa, &mut StdRng::seed_from_u64(9)).unwrap();
        let run = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| survival_probability_monte_carlo_par(&inst, &s, 0.3, 1000, 17))
        };
        let a = run(1);
        let b = run(5);
        assert_eq!(a.survival.to_bits(), b.survival.to_bits());
        assert_eq!(a.expected_latency.to_bits(), b.expected_latency.to_bits());
    }

    #[test]
    fn matched_schedules_supported() {
        let inst = small_instance(6, 6);
        let s = schedule(
            &inst,
            2,
            Algorithm::McFtsaGreedy,
            &mut StdRng::seed_from_u64(6),
        )
        .unwrap();
        let surv = survival_probability_exact(&inst, &s, 0.2);
        assert!((0.0..=1.0).contains(&surv));
        // Sanity against Monte Carlo (which uses rerouted replay).
        let mc =
            survival_probability_monte_carlo(&inst, &s, 0.2, 3000, &mut StdRng::seed_from_u64(7));
        assert!((mc.survival - surv).abs() < 0.04);
    }

    #[test]
    fn design_point_formula() {
        // m=2, eps=1, p=0.5: P(0 or 1 failure) = 0.25 + 0.5 = 0.75.
        assert!((design_point_probability(2, 1, 0.5) - 0.75).abs() < 1e-12);
        assert_eq!(design_point_probability(5, 5, 0.9), 1.0);
    }
}
