//! Property tests for mid-execution (timed) fail-stop failures — the
//! extension beyond the paper's fail-at-time-zero experimental model.
//!
//! Key monotonicity: a processor failing at time `τ > 0` has delivered a
//! superset of what it delivers failing at time 0, and the first-input-
//! wins / in-order execution semantics are monotone in deliveries, so
//! the achieved latency can only improve (and `L ≤ M` still holds for
//! all-to-all schedules).

use ftsched_core::{schedule, Algorithm};
use platform::gen::{paper_instance, PaperInstanceConfig};
use platform::{FailureScenario, Instance, ProcId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simulator::simulate;

fn make_instance(seed: u64, procs: usize) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    paper_instance(
        &mut rng,
        &PaperInstanceConfig {
            tasks_lo: 40,
            tasks_hi: 40,
            procs,
            granularity: 1.0,
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn timed_failures_complete_and_respect_upper_bound(
        seed in 0u64..3_000,
        procs in 4usize..9,
        eps_raw in 1usize..3,
        // Failure times as fractions of the guaranteed latency M.
        fracs in proptest::collection::vec(0.0f64..1.5, 1..3),
    ) {
        let eps = eps_raw.min(procs - 1);
        let inst = make_instance(seed, procs);
        let sched =
            schedule(&inst, eps, Algorithm::Ftsa, &mut StdRng::seed_from_u64(seed)).unwrap();
        let m_up = sched.latency_upper_bound();

        // Fail |fracs| <= eps distinct processors at the given times.
        let count = fracs.len().min(eps);
        let mut frng = StdRng::seed_from_u64(seed ^ 0x71D);
        let base = FailureScenario::uniform(&mut frng, procs, count);
        let victims: Vec<ProcId> = base.iter().map(|(p, _)| p).collect();
        let scen = FailureScenario::new(
            victims
                .iter()
                .zip(&fracs)
                .map(|(&p, &f)| (p, f * m_up))
                .collect(),
        );

        let sim = simulate(&inst, &sched, &scen);
        prop_assert!(sim.completed(), "≤ ε timed failures must be masked");
        prop_assert!(
            sim.latency <= m_up + 1e-6,
            "L = {} must stay within M = {m_up}",
            sim.latency
        );
        prop_assert!(sim.latency >= sched.latency_lower_bound() - 1e-6);
    }

    #[test]
    fn later_failure_never_hurts(
        seed in 0u64..3_000,
        procs in 4usize..9,
        frac in 0.0f64..1.2,
    ) {
        let inst = make_instance(seed, procs);
        let sched =
            schedule(&inst, 1, Algorithm::Ftsa, &mut StdRng::seed_from_u64(seed)).unwrap();
        let victim = ProcId((seed % procs as u64) as u32);
        let at_zero = simulate(
            &inst,
            &sched,
            &FailureScenario::at_time_zero([victim]),
        );
        let timed = simulate(
            &inst,
            &sched,
            &FailureScenario::new(vec![(victim, frac * sched.latency_upper_bound())]),
        );
        prop_assert!(timed.completed() && at_zero.completed());
        prop_assert!(
            timed.latency <= at_zero.latency + 1e-6,
            "failing later ({}) must not be worse than failing at 0 ({})",
            timed.latency,
            at_zero.latency
        );
    }

    #[test]
    fn failure_after_completion_is_invisible(
        seed in 0u64..2_000,
        procs in 4usize..8,
    ) {
        let inst = make_instance(seed, procs);
        let sched =
            schedule(&inst, 1, Algorithm::Ftsa, &mut StdRng::seed_from_u64(seed)).unwrap();
        let clean = simulate(&inst, &sched, &FailureScenario::none());
        // Fail every processor strictly after the last replica finished:
        // nothing changes.
        let horizon = sched.latency_upper_bound() + 1.0;
        let scen = FailureScenario::new(
            (0..procs as u32).map(|p| (ProcId(p), horizon)).collect(),
        );
        let sim = simulate(&inst, &sched, &scen);
        prop_assert!(sim.completed());
        prop_assert!((sim.latency - clean.latency).abs() < 1e-9);
    }
}
