//! FTBAR — Fault Tolerance Based Active Replication (Section 5), the
//! baseline competitor, after Girault, Kalla, Sighireanu and Sorel
//! (DSN 2003).
//!
//! FTBAR is a list-scheduling algorithm built on the *schedule pressure*
//! cost function. At step `n`, for a free task `t_i` on processor `p_j`:
//!
//! ```text
//! σ(n)(t_i, p_j) = S(n)(t_i, p_j) + s(t_i) − R(n−1)
//! ```
//!
//! where `S(n)` is the earliest start time of `t_i` on `p_j` given the
//! partial schedule, `s(t_i)` the static bottom-up latest start time
//! (computed here as the average-cost bottom level, like FTSA's `bℓ`),
//! and `R(n−1)` the current schedule length. The algorithm:
//!
//! 1. for each free task, keep the `N_pf + 1` processors minimizing σ;
//! 2. select the *most urgent* pair — the free task whose best-σ set has
//!    the largest pressure — ties broken randomly;
//! 3. schedule the task on those `N_pf + 1` processors;
//! 4. run the Ahmad–Kwok *Minimize-Start-Time* pass: on every chosen
//!    processor, duplicate the arrival-critical parent onto that
//!    processor when doing so strictly lowers the task's start time.
//!
//! The per-step sweep over *all free tasks × all processors* plus the
//! duplication pass is what drives FTBAR's `O(P·N³)` running time
//! (Table 1 of the paper), compared to FTSA's single-task step.
//!
//! Fidelity note: the paper's sketch leaves `S(n)` under replication
//! ambiguous; we use the optimistic earliest start (min over predecessor
//! replicas, like equation 1) for the selection metric and track the
//! pessimistic timeline separately, mirroring how the paper reports both
//! FTBAR-LowerBound and FTBAR-UpperBound curves.

use crate::error::ScheduleError;
use crate::pipeline::{CommAxis, ListScheduler, PlacementAxis, PriorityAxis};
use crate::schedule::Schedule;
use platform::Instance;
use rand::Rng;

/// Runs FTBAR on `inst`, tolerating `epsilon` (`N_pf`) fail-stop
/// failures. `rng` breaks urgency ties.
pub fn ftbar(
    inst: &Instance,
    epsilon: usize,
    rng: &mut impl Rng,
) -> Result<Schedule, ScheduleError> {
    ftbar_with_options(inst, epsilon, true, rng)
}

/// FTBAR with the Minimize-Start-Time duplication pass toggleable (the
/// ablation benches compare both).
///
/// A named configuration of the [`crate::pipeline`]: schedule-pressure
/// priority × minimize-start-time placement × all-to-all communication.
pub fn ftbar_with_options(
    inst: &Instance,
    epsilon: usize,
    minimize_start_time: bool,
    rng: &mut impl Rng,
) -> Result<Schedule, ScheduleError> {
    ListScheduler::new(
        PriorityAxis::Pressure,
        PlacementAxis::MinStart {
            duplicate: minimize_start_time,
        },
        CommAxis::AllToAll,
    )
    .run(inst, epsilon, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftsa::ftsa;
    use platform::gen::{paper_instance, PaperInstanceConfig};
    use platform::{ExecutionMatrix, Platform};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use taskgraph::{DagBuilder, TaskId};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xF7BA)
    }

    fn diamond_instance(m: usize) -> Instance {
        let mut b = DagBuilder::new();
        let t: Vec<TaskId> = (0..4).map(|_| b.add_task(10.0)).collect();
        b.add_edge(t[0], t[1], 5.0);
        b.add_edge(t[0], t[2], 5.0);
        b.add_edge(t[1], t[3], 5.0);
        b.add_edge(t[2], t[3], 5.0);
        let dag = b.build().unwrap();
        let plat = Platform::uniform_delay(m, 1.0);
        let exec = ExecutionMatrix::consistent(&dag, &vec![1.0; m]);
        Instance::new(dag, plat, exec)
    }

    #[test]
    fn primary_replicas_on_distinct_processors() {
        let inst = diamond_instance(4);
        for eps in [0usize, 1, 2] {
            let s = ftbar(&inst, eps, &mut rng()).unwrap();
            for t in inst.dag.tasks() {
                let reps = s.replicas_of(t);
                assert!(reps.len() > eps);
                let primaries: std::collections::HashSet<_> =
                    reps[..eps + 1].iter().map(|r| r.proc).collect();
                assert_eq!(primaries.len(), eps + 1);
            }
        }
    }

    #[test]
    fn too_few_processors_rejected() {
        let inst = diamond_instance(2);
        assert!(matches!(
            ftbar(&inst, 2, &mut rng()),
            Err(ScheduleError::NotEnoughProcessors { .. })
        ));
    }

    #[test]
    fn bounds_ordered() {
        let inst = diamond_instance(4);
        let s = ftbar(&inst, 2, &mut rng()).unwrap();
        assert!(s.latency_lower_bound() <= s.latency_upper_bound() + 1e-9);
    }

    #[test]
    fn duplication_never_hurts_lower_bound() {
        let mut r = StdRng::seed_from_u64(31);
        let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
        let with = ftbar_with_options(&inst, 1, true, &mut StdRng::seed_from_u64(1))
            .unwrap()
            .latency_lower_bound();
        let without = ftbar_with_options(&inst, 1, false, &mut StdRng::seed_from_u64(1))
            .unwrap()
            .latency_lower_bound();
        // Duplication is accepted only when it strictly lowers a start
        // time, but interactions across steps can still go either way;
        // require it not to blow up the schedule.
        assert!(with <= without * 1.25 + 1e-9);
    }

    #[test]
    fn ftsa_tends_to_beat_ftbar_on_lower_bound() {
        // The paper's headline experimental claim: "FTSA always
        // outperforms FTBAR in terms of lower bound". Check it holds on
        // average over several random instances (individual instances may
        // tie or flip due to tie-breaking).
        let mut wins = 0usize;
        let mut total = 0usize;
        for seed in 0..8u64 {
            let mut r = StdRng::seed_from_u64(seed);
            let inst = paper_instance(
                &mut r,
                &PaperInstanceConfig {
                    granularity: 1.0,
                    ..Default::default()
                },
            );
            let f = ftsa(&inst, 1, &mut StdRng::seed_from_u64(seed))
                .unwrap()
                .latency_lower_bound();
            let b = ftbar(&inst, 1, &mut StdRng::seed_from_u64(seed))
                .unwrap()
                .latency_lower_bound();
            if f <= b + 1e-9 {
                wins += 1;
            }
            total += 1;
        }
        assert!(
            wins * 2 > total,
            "FTSA should win on at least half the instances ({wins}/{total})"
        );
    }

    #[test]
    fn schedule_order_is_topological() {
        let inst = diamond_instance(4);
        let s = ftbar(&inst, 1, &mut rng()).unwrap();
        let mut pos = vec![usize::MAX; inst.num_tasks()];
        for (i, t) in s.schedule_order.iter().enumerate() {
            pos[t.index()] = i;
        }
        for (_, src, dst, _) in inst.dag.edge_list() {
            assert!(pos[src.index()] < pos[dst.index()]);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = diamond_instance(4);
        let a = ftbar(&inst, 1, &mut StdRng::seed_from_u64(77)).unwrap();
        let b = ftbar(&inst, 1, &mut StdRng::seed_from_u64(77)).unwrap();
        assert_eq!(a.replicas, b.replicas);
    }

    #[test]
    fn duplication_collocates_heavy_parent() {
        // Parent with huge output volume; duplicating it onto the child's
        // processor(s) avoids the transfer. Build a two-proc-friendly
        // case: parent on P0, child would start late anywhere else.
        let mut b = DagBuilder::new();
        let p = b.add_task(1.0);
        let q = b.add_task(1.0); // decoy entry occupying the other proc
        let c = b.add_task(1.0);
        b.add_edge(p, c, 1000.0);
        b.add_edge(q, c, 1.0);
        let dag = b.build().unwrap();
        let plat = Platform::uniform_delay(3, 1.0);
        let exec = ExecutionMatrix::consistent(&dag, &[1.0, 1.0, 1.0]);
        let inst = Instance::new(dag, plat, exec);
        let s = ftbar_with_options(&inst, 0, true, &mut rng()).unwrap();
        // c must be collocated with *some* replica of p (original or
        // duplicate), making the huge edge free.
        let cproc = s.replicas_of(c)[0].proc;
        assert!(
            s.replicas_of(p).iter().any(|r| r.proc == cproc),
            "minimize-start-time must collocate the critical parent"
        );
    }
}
