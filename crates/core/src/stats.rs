//! Schedule analysis: utilization, load balance, replication overhead
//! breakdown — the quantities the experiment logs and ablations report.

use crate::schedule::Schedule;
use platform::Instance;
use std::fmt;

/// Aggregate statistics of a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleStats {
    /// Latency if nothing fails (`M*`).
    pub latency_lb: f64,
    /// Guaranteed latency under ε failures (`M`).
    pub latency_ub: f64,
    /// Total replicas placed (≥ `v · (ε+1)`; FTBAR duplicates add more).
    pub replicas: usize,
    /// Inter-processor messages shipped in the fault-free run.
    pub messages: usize,
    /// Mean processor utilization on the optimistic timeline:
    /// busy time / (m · M*).
    pub mean_utilization: f64,
    /// Max/min busy-time ratio across *used* processors (1.0 = perfectly
    /// balanced; ∞ if some used processor has zero busy time).
    pub load_imbalance: f64,
    /// Fraction of total busy time spent on replicas beyond the first
    /// copy of each task — the raw compute cost of fault tolerance.
    pub replication_compute_share: f64,
}

/// Computes [`ScheduleStats`] for a schedule on its instance.
pub fn schedule_stats(inst: &Instance, sched: &Schedule) -> ScheduleStats {
    let m = inst.num_procs();
    let latency_lb = sched.latency_lower_bound();
    let latency_ub = sched.latency_upper_bound();

    let mut busy = vec![0.0f64; m];
    let mut primary_time = 0.0f64;
    let mut total_time = 0.0f64;
    let mut replicas = 0usize;
    for t in inst.dag.tasks() {
        for (k, r) in sched.replicas_of(t).iter().enumerate() {
            let dur = r.finish_lb - r.start_lb;
            busy[r.proc.index()] += dur;
            total_time += dur;
            if k == 0 {
                primary_time += dur;
            }
            replicas += 1;
        }
    }

    let used: Vec<f64> = busy.iter().copied().filter(|&b| b > 0.0).collect();
    let load_imbalance = match (
        used.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        used.iter().copied().fold(f64::INFINITY, f64::min),
    ) {
        (max, min) if min > 0.0 => max / min,
        _ => f64::INFINITY,
    };

    ScheduleStats {
        latency_lb,
        latency_ub,
        replicas,
        messages: sched.message_count(&inst.dag),
        mean_utilization: if latency_lb > 0.0 {
            total_time / (m as f64 * latency_lb)
        } else {
            0.0
        },
        load_imbalance,
        replication_compute_share: if total_time > 0.0 {
            (total_time - primary_time) / total_time
        } else {
            0.0
        },
    }
}

impl fmt::Display for ScheduleStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "latency (M*/M):        {:.2} / {:.2}",
            self.latency_lb, self.latency_ub
        )?;
        writeln!(f, "replicas placed:       {}", self.replicas)?;
        writeln!(f, "messages:              {}", self.messages)?;
        writeln!(
            f,
            "mean utilization:      {:.1}%",
            self.mean_utilization * 100.0
        )?;
        writeln!(f, "load imbalance:        {:.2}x", self.load_imbalance)?;
        write!(
            f,
            "replication compute:   {:.1}%",
            self.replication_compute_share * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftsa::ftsa;
    use platform::gen::{paper_instance, PaperInstanceConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn inst() -> Instance {
        let mut r = StdRng::seed_from_u64(21);
        paper_instance(&mut r, &PaperInstanceConfig::default())
    }

    #[test]
    fn basic_invariants() {
        let inst = inst();
        let s = ftsa(&inst, 2, &mut StdRng::seed_from_u64(1)).unwrap();
        let st = schedule_stats(&inst, &s);
        assert_eq!(st.replicas, inst.num_tasks() * 3);
        assert!(st.latency_lb <= st.latency_ub);
        assert!(st.mean_utilization > 0.0 && st.mean_utilization <= 1.0);
        assert!(st.load_imbalance >= 1.0);
        // With 3 replicas of equal-ish cost, ~2/3 of compute is replication.
        assert!((st.replication_compute_share - 2.0 / 3.0).abs() < 0.05);
    }

    #[test]
    fn epsilon_zero_has_no_replication_share() {
        let inst = inst();
        let s = ftsa(&inst, 0, &mut StdRng::seed_from_u64(2)).unwrap();
        let st = schedule_stats(&inst, &s);
        assert_eq!(st.replication_compute_share, 0.0);
        assert_eq!(st.replicas, inst.num_tasks());
    }

    #[test]
    fn display_renders_all_lines() {
        let inst = inst();
        let s = ftsa(&inst, 1, &mut StdRng::seed_from_u64(3)).unwrap();
        let text = schedule_stats(&inst, &s).to_string();
        for key in [
            "latency",
            "replicas",
            "messages",
            "utilization",
            "imbalance",
        ] {
            assert!(text.contains(key), "missing {key} in:\n{text}");
        }
    }

    #[test]
    fn utilization_grows_with_replication() {
        let inst = inst();
        let u = |eps: usize| {
            let s = ftsa(&inst, eps, &mut StdRng::seed_from_u64(4)).unwrap();
            schedule_stats(&inst, &s).mean_utilization
        };
        assert!(u(3) > u(0), "replication must raise platform utilization");
    }
}
