//! Structural validation of fault-tolerant schedules.
//!
//! A schedule is *valid* when (numbering follows the paper):
//!
//! 1. **Proposition 4.1** — every task has at least `ε + 1` replicas and
//!    its first `ε + 1` (primary) replicas sit on pairwise distinct
//!    processors.
//! 2. **Processor exclusivity** — on every processor, the placed replicas
//!    are sequential (no overlap) on both timelines, and the placement
//!    lists mirror the replica records exactly.
//! 3. **Optimistic precedence feasibility** — for every replica `r` of
//!    `t` and every predecessor `t'`, at least one replica of `t'`
//!    delivers its data by `start_lb(r)` (for matched communications, the
//!    matched sender).
//! 4. **Pessimistic guarantee** — `start_ub(r)` is no earlier than the
//!    latest delivery among the *primary* replicas of each predecessor
//!    (the equation-3 term; FTBAR duplicates added later are exempt by
//!    first-arrival semantics).
//! 5. **Proposition 4.3 structure** (matched communications only) — per
//!    DAG edge the selected pairs form a one-to-one mapping saturating
//!    all `ε + 1` senders and receivers, and any sender collocated with a
//!    receiver is matched to itself.
//! 6. **Order sanity** — `schedule_order` is a topological order covering
//!    every task.

use crate::schedule::{CommSelection, Schedule};
use crate::ScheduleError;
use platform::Instance;

const TOL: f64 = 1e-6;

/// Validates `sched` against `inst`; returns the first violation found.
pub fn validate(inst: &Instance, sched: &Schedule) -> Result<(), ScheduleError> {
    let dag = &inst.dag;
    let plat = &inst.platform;
    let eps1 = sched.epsilon + 1;
    let fail = |msg: String| Err(ScheduleError::Invalid(msg));

    // (6) schedule_order is a complete topological order.
    if sched.schedule_order.len() != dag.num_tasks() {
        return fail(format!(
            "schedule_order covers {} of {} tasks",
            sched.schedule_order.len(),
            dag.num_tasks()
        ));
    }
    let mut pos = vec![usize::MAX; dag.num_tasks()];
    for (i, t) in sched.schedule_order.iter().enumerate() {
        if pos[t.index()] != usize::MAX {
            return fail(format!("task {t} scheduled twice"));
        }
        pos[t.index()] = i;
    }
    for (_, s, d, _) in dag.edge_list() {
        if pos[s.index()] >= pos[d.index()] {
            return fail(format!("schedule_order violates edge {s} -> {d}"));
        }
    }

    // (1) replica counts and primary distinctness.
    for t in dag.tasks() {
        let reps = sched.replicas_of(t);
        if reps.len() < eps1 {
            return fail(format!(
                "task {t} has {} replicas, needs at least {eps1}",
                reps.len()
            ));
        }
        let mut procs = std::collections::HashSet::new();
        for r in &reps[..eps1] {
            if !procs.insert(r.proc) {
                return fail(format!(
                    "Proposition 4.1 violated: primary replicas of {t} share {}",
                    r.proc
                ));
            }
        }
        for r in reps {
            if r.proc.index() >= plat.num_procs() {
                return fail(format!("task {t} placed on unknown {}", r.proc));
            }
            if r.start_lb < -TOL || r.finish_lb < r.start_lb - TOL || r.finish_ub < r.start_ub - TOL
            {
                return fail(format!("task {t} has inconsistent replica times"));
            }
        }
    }

    // (2) per-processor sequences.
    let mut seen = vec![vec![false; 0]; dag.num_tasks()];
    for t in dag.tasks() {
        seen[t.index()] = vec![false; sched.replicas_of(t).len()];
    }
    for j in 0..sched.num_procs() {
        let mut last_lb = f64::NEG_INFINITY;
        let mut last_ub = f64::NEG_INFINITY;
        for (t, k) in sched.proc_order(j) {
            let reps = sched.replicas_of(t);
            if k >= reps.len() {
                return fail(format!("proc P{j} references missing replica {k} of {t}"));
            }
            if seen[t.index()][k] {
                return fail(format!("replica {k} of {t} placed twice"));
            }
            seen[t.index()][k] = true;
            let r = reps[k];
            if r.proc.index() != j {
                return fail(format!(
                    "replica {k} of {t} recorded on {} but placed on P{j}",
                    r.proc
                ));
            }
            if r.start_lb < last_lb - TOL || r.start_ub < last_ub - TOL {
                return fail(format!("overlapping replicas on P{j} at task {t}"));
            }
            last_lb = r.finish_lb;
            last_ub = r.finish_ub;
        }
    }
    for t in dag.tasks() {
        if seen[t.index()].iter().any(|&s| !s) {
            return fail(format!("task {t} has replicas missing from proc_order"));
        }
    }

    // (3) + (4) precedence feasibility.
    for t in dag.tasks() {
        for (ri, r) in sched.replicas_of(t).iter().enumerate() {
            for &(p, eid) in dag.preds(t) {
                let vol = dag.volume(eid);
                let senders = sched.replicas_of(p);
                match &sched.comm {
                    CommSelection::AllToAll => {
                        // (3): someone delivers by start_lb.
                        let earliest = senders
                            .iter()
                            .map(|s| s.finish_lb + vol * plat.delay(s.proc.index(), r.proc.index()))
                            .fold(f64::INFINITY, f64::min);
                        if earliest > r.start_lb + TOL {
                            return fail(format!(
                                "optimistic data of {p} reaches {t} replica {ri} at \
                                 {earliest:.6} after start {:.6}",
                                r.start_lb
                            ));
                        }
                        // (4): primaries all deliver by start_ub. Only
                        // meaningful for primary destination replicas;
                        // duplicates inherit the guarantee from
                        // first-arrival semantics.
                        if ri < eps1 {
                            let latest = senders[..eps1.min(senders.len())]
                                .iter()
                                .map(|s| {
                                    s.finish_ub + vol * plat.delay(s.proc.index(), r.proc.index())
                                })
                                .fold(f64::NEG_INFINITY, f64::max);
                            if latest > r.start_ub + TOL {
                                return fail(format!(
                                    "pessimistic data of {p} reaches {t} replica {ri} \
                                     at {latest:.6} after start_ub {:.6}",
                                    r.start_ub
                                ));
                            }
                        }
                    }
                    CommSelection::Matched(m) => {
                        let pairs = &m[eid.index()];
                        let Some(&(k, _)) = pairs.iter().find(|&&(_, d)| d == ri) else {
                            return fail(format!(
                                "no matched sender for {t} replica {ri} on edge {p}->{t}"
                            ));
                        };
                        let s = &senders[k];
                        let arrive = s.finish_lb + vol * plat.delay(s.proc.index(), r.proc.index());
                        if arrive > r.start_lb + TOL {
                            return fail(format!(
                                "matched data of {p} reaches {t} replica {ri} at \
                                 {arrive:.6} after start {:.6}",
                                r.start_lb
                            ));
                        }
                    }
                }
            }
        }
    }

    // (5) matched-communication structure.
    if let CommSelection::Matched(m) = &sched.comm {
        if m.len() != dag.num_edges() {
            return fail("matched comm table size mismatch".into());
        }
        for (eid, src, dst, _) in dag.edge_list() {
            let pairs = &m[eid.index()];
            if pairs.len() != eps1 {
                return fail(format!(
                    "edge {src}->{dst} has {} matched pairs, expected {eps1}",
                    pairs.len()
                ));
            }
            let mut ls = std::collections::HashSet::new();
            let mut rs = std::collections::HashSet::new();
            for &(k, d) in pairs {
                if k >= sched.replicas_of(src).len() || d >= sched.replicas_of(dst).len() {
                    return fail(format!("edge {src}->{dst} pair out of range"));
                }
                if !ls.insert(k) || !rs.insert(d) {
                    return fail(format!("edge {src}->{dst} matching not one-to-one"));
                }
            }
            // Forced internal edges of Proposition 4.3.
            for (k, s) in sched.replicas_of(src).iter().enumerate().take(eps1) {
                if let Some(d) = sched.replicas_of(dst)[..eps1]
                    .iter()
                    .position(|r| r.proc == s.proc)
                {
                    if !pairs.contains(&(k, d)) {
                        return fail(format!(
                            "edge {src}->{dst}: sender on shared {} must be matched \
                             internally (Proposition 4.3)",
                            s.proc
                        ));
                    }
                }
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftsa::ftsa;
    use crate::Algorithm;
    use platform::gen::{paper_instance, PaperInstanceConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_algorithms_produce_valid_schedules() {
        for seed in 0..4u64 {
            let mut r = StdRng::seed_from_u64(seed);
            let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
            for eps in [0usize, 1, 2, 5] {
                let mut tb = StdRng::seed_from_u64(seed * 31 + eps as u64);
                for alg in Algorithm::ALL {
                    let s = crate::schedule(&inst, eps, alg, &mut tb).unwrap();
                    validate(&inst, &s).unwrap_or_else(|e| panic!("{alg:?} eps={eps}: {e}"));
                }
            }
        }
    }

    #[test]
    fn detects_shared_primary_processor() {
        let mut r = StdRng::seed_from_u64(3);
        let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
        let mut s = ftsa(&inst, 1, &mut StdRng::seed_from_u64(3)).unwrap();
        // Corrupt: force both replicas of task 0 onto the same processor.
        let t0 = taskgraph::TaskId(0);
        let p = s.replicas_of(t0)[0].proc;
        s.replica_mut(t0, 1).proc = p;
        let err = validate(&inst, &s).unwrap_err();
        assert!(err.to_string().contains("4.1") || err.to_string().contains("recorded"));
    }

    #[test]
    fn detects_precedence_violation() {
        let mut r = StdRng::seed_from_u64(4);
        let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
        let mut s = ftsa(&inst, 1, &mut StdRng::seed_from_u64(4)).unwrap();
        // Find a task with a predecessor and pull its start to 0.
        let t = inst
            .dag
            .tasks()
            .find(|&t| inst.dag.in_degree(t) > 0)
            .expect("nonempty dag");
        s.replica_mut(t, 0).start_lb = 0.0;
        s.replica_mut(t, 0).finish_lb = 0.01;
        assert!(validate(&inst, &s).is_err());
    }

    #[test]
    fn detects_truncated_schedule_order() {
        let mut r = StdRng::seed_from_u64(5);
        let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
        let mut s = ftsa(&inst, 1, &mut StdRng::seed_from_u64(5)).unwrap();
        s.schedule_order.pop();
        assert!(validate(&inst, &s).is_err());
    }
}
