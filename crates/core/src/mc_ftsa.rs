//! MC-FTSA — FTSA with Minimum Communications (Section 4.2).
//!
//! Replicating every task `ε + 1` times is mandatory to resist `ε`
//! failures, but duplicating every precedence edge `(ε + 1)²` times is
//! not. MC-FTSA keeps FTSA's processor selection (equation 1) and then,
//! for every predecessor `t'` of the freshly mapped task `t`, picks a
//! *robust* one-to-one communication set between `A(t')` (the processors
//! running `t'`) and `A(t)`:
//!
//! * a processor in `A(t') ∩ A(t)` communicates **only with itself**
//!   (forced internal edge — the proof of Proposition 4.3 needs this);
//! * the remaining senders/receivers are matched one-to-one, minimizing
//!   completion times, by either the greedy selector (the paper's
//!   experiments) or the bottleneck-optimal binary-search selector.
//!
//! The total message count drops from `e(ε+1)²` to `e(ε+1)`, at a small
//! latency cost; each replica then has a *single* sender per predecessor,
//! so its start/finish times are deterministic and the per-replica
//! optimistic and pessimistic timelines coincide.

use crate::error::ScheduleError;
use crate::pipeline::{CommAxis, ListScheduler, PlacementAxis, PriorityAxis};
use crate::schedule::Schedule;
use platform::Instance;
use rand::Rng;

/// Which robust-communication selector to use (Section 4.2 offers both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Selector {
    /// Internal edges first, then non-decreasing weight order — the
    /// variant used in the paper's experiments.
    Greedy,
    /// Binary search on the bottleneck threshold with a Hopcroft–Karp
    /// feasibility oracle — the paper's polynomial optimal variant.
    Bottleneck,
}

/// Runs MC-FTSA on `inst`, tolerating `epsilon` fail-stop failures.
///
/// A named configuration of the [`crate::pipeline`]: criticalness
/// priority × best-finish placement × matched communication.
pub fn mc_ftsa(
    inst: &Instance,
    epsilon: usize,
    selector: Selector,
    rng: &mut impl Rng,
) -> Result<Schedule, ScheduleError> {
    ListScheduler::new(
        PriorityAxis::Criticalness,
        PlacementAxis::BestFinish,
        CommAxis::Matched(selector),
    )
    .run(inst, epsilon, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftsa::ftsa;
    use crate::schedule::CommSelection;
    use platform::gen::{paper_instance, PaperInstanceConfig};
    use platform::{ExecutionMatrix, Platform};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use taskgraph::{DagBuilder, TaskId};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x3C57)
    }

    fn diamond_instance(m: usize) -> Instance {
        let mut b = DagBuilder::new();
        let t: Vec<TaskId> = (0..4).map(|_| b.add_task(10.0)).collect();
        b.add_edge(t[0], t[1], 5.0);
        b.add_edge(t[0], t[2], 5.0);
        b.add_edge(t[1], t[3], 5.0);
        b.add_edge(t[2], t[3], 5.0);
        let dag = b.build().unwrap();
        let plat = Platform::uniform_delay(m, 1.0);
        let exec = ExecutionMatrix::consistent(&dag, &vec![1.0; m]);
        Instance::new(dag, plat, exec)
    }

    #[test]
    fn message_count_is_linear_in_epsilon() {
        // Paper: e(ε+1) messages for MC-FTSA vs up to e(ε+1)² for FTSA.
        let mut r = StdRng::seed_from_u64(11);
        let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
        let e = inst.dag.num_edges();
        for eps in [1usize, 2, 3] {
            let mc = mc_ftsa(&inst, eps, Selector::Greedy, &mut rng()).unwrap();
            assert!(
                mc.message_count(&inst.dag) <= e * (eps + 1),
                "MC-FTSA must ship at most e(ε+1) messages"
            );
            let ft = ftsa(&inst, eps, &mut rng()).unwrap();
            assert!(ft.message_count(&inst.dag) <= e * (eps + 1) * (eps + 1));
        }
    }

    #[test]
    fn matched_comm_covers_every_edge_with_eps_plus_one_pairs() {
        let inst = diamond_instance(4);
        let eps = 2;
        let s = mc_ftsa(&inst, eps, Selector::Greedy, &mut rng()).unwrap();
        match &s.comm {
            CommSelection::Matched(m) => {
                for pairs in m {
                    assert_eq!(pairs.len(), eps + 1);
                    // One-to-one on both sides.
                    let src: std::collections::HashSet<_> = pairs.iter().map(|&(k, _)| k).collect();
                    let dst: std::collections::HashSet<_> = pairs.iter().map(|&(_, r)| r).collect();
                    assert_eq!(src.len(), eps + 1);
                    assert_eq!(dst.len(), eps + 1);
                }
            }
            CommSelection::AllToAll => panic!("MC-FTSA must record matchings"),
        }
    }

    #[test]
    fn shared_processor_forces_internal_communication() {
        // Chain a → c on 2 procs with eps=1: both tasks occupy both
        // processors, so A(a) ∩ A(c) = {P0, P1} and every communication
        // must be internal (message count 0).
        let mut b = DagBuilder::new();
        let a = b.add_task(10.0);
        let c = b.add_task(10.0);
        b.add_edge(a, c, 100.0);
        let dag = b.build().unwrap();
        let plat = Platform::uniform_delay(2, 1.0);
        let exec = ExecutionMatrix::consistent(&dag, &[1.0, 1.0]);
        let inst = Instance::new(dag, plat, exec);
        let s = mc_ftsa(&inst, 1, Selector::Greedy, &mut rng()).unwrap();
        assert_eq!(s.message_count(&inst.dag), 0);
        // Each replica of c starts right after the collocated replica of a.
        for r in s.replicas_of(c) {
            assert_eq!(r.start_lb, 10.0);
        }
    }

    #[test]
    fn per_replica_bounds_coincide() {
        let inst = diamond_instance(4);
        let s = mc_ftsa(&inst, 2, Selector::Greedy, &mut rng()).unwrap();
        for t in inst.dag.tasks() {
            for r in s.replicas_of(t) {
                assert_eq!(r.start_lb, r.start_ub);
                assert_eq!(r.finish_lb, r.finish_ub);
            }
        }
    }

    #[test]
    fn bottleneck_never_worse_than_greedy_on_upper_bound() {
        let mut r = StdRng::seed_from_u64(23);
        let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
        let g = mc_ftsa(&inst, 2, Selector::Greedy, &mut rng()).unwrap();
        let b = mc_ftsa(&inst, 2, Selector::Bottleneck, &mut rng()).unwrap();
        // Not a theorem globally (greedy decisions interact across steps),
        // but both must produce valid bounded schedules of similar quality.
        assert!(b.latency_upper_bound() <= g.latency_upper_bound() * 1.5);
        assert!(g.latency_upper_bound() <= b.latency_upper_bound() * 1.5);
    }

    #[test]
    fn mc_latency_at_least_ftsa_lower_bound() {
        // MC-FTSA restricts communications, so its optimistic latency
        // cannot beat FTSA's optimistic latency on the same instance...
        // up to tie-breaking noise; check the documented direction on a
        // deterministic instance.
        let inst = diamond_instance(4);
        let ft = ftsa(&inst, 1, &mut StdRng::seed_from_u64(1)).unwrap();
        let mc = mc_ftsa(&inst, 1, Selector::Greedy, &mut StdRng::seed_from_u64(1)).unwrap();
        assert!(mc.latency_lower_bound() >= ft.latency_lower_bound() - 1e-9);
    }

    #[test]
    fn epsilon_zero_single_matching() {
        let inst = diamond_instance(3);
        let s = mc_ftsa(&inst, 0, Selector::Bottleneck, &mut rng()).unwrap();
        for t in inst.dag.tasks() {
            assert_eq!(s.replicas_of(t).len(), 1);
        }
        if let CommSelection::Matched(m) = &s.comm {
            assert!(m.iter().all(|p| p.len() == 1));
        } else {
            panic!("expected matched comm");
        }
    }

    #[test]
    fn too_few_processors_rejected() {
        let inst = diamond_instance(2);
        assert!(matches!(
            mc_ftsa(&inst, 2, Selector::Greedy, &mut rng()),
            Err(ScheduleError::NotEnoughProcessors { .. })
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = diamond_instance(4);
        let a = mc_ftsa(&inst, 1, Selector::Greedy, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = mc_ftsa(&inst, 1, Selector::Greedy, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a.replicas, b.replicas);
        assert_eq!(a.comm, b.comm);
    }
}
