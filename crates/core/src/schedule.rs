//! The fault-tolerant schedule representation.
//!
//! A schedule maps every task to `ε + 1` (or more, when FTBAR duplicates)
//! replicas placed on distinct processors, each carrying **two**
//! timelines:
//!
//! * the *optimistic* times (`start_lb` / `finish_lb`), computed with
//!   equation (1) — every replica receives each input from the earliest
//!   replica of the predecessor. The schedule-wide maximum is `M*`
//!   (equation 2), achieved when no processor fails.
//! * the *pessimistic* times (`start_ub` / `finish_ub`), computed with
//!   equation (3) — every input arrives from the latest replica. The
//!   schedule-wide maximum is `M` (equation 4), an upper bound on the
//!   latency under any `ε` failures (Proposition 4.2).
//!
//! For MC-FTSA the two timelines coincide per replica (each replica has a
//! unique sender per predecessor), and the communication matching is
//! recorded in [`CommSelection::Matched`].
//!
//! # Memory layout
//!
//! Replicas live in one flat arena ([`ReplicaArena`]): a single
//! `Vec<Replica>` strided per task, with `ε + 1` slots reserved per task
//! up front. [`Schedule::replicas_of`] is an O(1) slice view and
//! consecutive tasks are contiguous in memory. FTBAR's duplication pass
//! can push a task past the stride; the arena then doubles the stride
//! and repacks once (amortized — duplication beyond `ε + 1` is rare).
//!
//! Per-processor placement order uses a grow-in-place linked arena
//! ([`ProcOrder`]): one node pool plus per-processor head/tail cursors,
//! so appends never relocate earlier entries and a schedule performs no
//! per-processor allocations. Consumers that want a flat per-processor
//! slice (the crash simulator) materialize it once into their workspace.
//!
//! Both arenas serialize in the human-readable nested form
//! (`Vec<Vec<…>>`) and compare ([`PartialEq`]) by logical content, so
//! stride padding and node-pool interleaving never leak.

use platform::ProcId;
use serde::{Deserialize, Serialize};
use taskgraph::{Dag, TaskId};

/// One placed copy of a task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Replica {
    /// Hosting processor.
    pub proc: ProcId,
    /// Optimistic start time (equation 1).
    pub start_lb: f64,
    /// Optimistic finish time.
    pub finish_lb: f64,
    /// Pessimistic start time (equation 3).
    pub start_ub: f64,
    /// Pessimistic finish time.
    pub finish_ub: f64,
}

const DUMMY: Replica = Replica {
    proc: ProcId(0),
    start_lb: 0.0,
    finish_lb: 0.0,
    start_ub: 0.0,
    finish_ub: 0.0,
};

/// Flat per-task replica storage: `stride` slots per task in one
/// contiguous buffer. See the [module docs](self) for the layout.
#[derive(Debug, Clone, Default)]
pub struct ReplicaArena {
    slots: Vec<Replica>,
    len: Vec<u32>,
    stride: u32,
}

impl ReplicaArena {
    /// Clears and resizes for `num_tasks` tasks with `stride` reserved
    /// slots each, reusing the existing buffers.
    pub(crate) fn reset(&mut self, num_tasks: usize, stride: usize) {
        debug_assert!(stride >= 1 || num_tasks == 0);
        self.stride = stride.max(1) as u32;
        self.len.clear();
        self.len.resize(num_tasks, 0);
        self.slots.clear();
        self.slots.resize(num_tasks * self.stride as usize, DUMMY);
    }

    /// Number of tasks.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.len.len()
    }

    /// Replicas of task `t` as a contiguous slice.
    #[inline]
    pub fn slice(&self, t: TaskId) -> &[Replica] {
        let base = t.index() * self.stride as usize;
        &self.slots[base..base + self.len[t.index()] as usize]
    }

    /// Mutable access to replica `k` of task `t`.
    #[inline]
    pub fn get_mut(&mut self, t: TaskId, k: usize) -> &mut Replica {
        debug_assert!(k < self.len[t.index()] as usize);
        &mut self.slots[t.index() * self.stride as usize + k]
    }

    /// Appends a replica of `t`, returning its index within the task.
    pub(crate) fn push(&mut self, t: TaskId, r: Replica) -> usize {
        if self.len[t.index()] == self.stride {
            self.grow();
        }
        let k = self.len[t.index()] as usize;
        self.slots[t.index() * self.stride as usize + k] = r;
        self.len[t.index()] += 1;
        k
    }

    /// Doubles the stride, repacking in place (tasks move back-to-front
    /// into their wider slots, so no temporary buffer is needed).
    fn grow(&mut self) {
        let old = self.stride as usize;
        let new = (old * 2).max(1);
        self.slots.resize(self.len.len() * new, DUMMY);
        for t in (0..self.len.len()).rev() {
            let n = self.len[t] as usize;
            for k in (0..n).rev() {
                self.slots[t * new + k] = self.slots[t * old + k];
            }
        }
        self.stride = new as u32;
    }

    /// Iterates the tasks' replica slices in task-id order.
    pub fn iter(&self) -> impl Iterator<Item = &[Replica]> + '_ {
        (0..self.num_tasks() as u32).map(|t| self.slice(TaskId(t)))
    }
}

impl PartialEq for ReplicaArena {
    /// Logical equality: same per-task replica sequences, regardless of
    /// stride or padding.
    fn eq(&self, other: &Self) -> bool {
        self.len.len() == other.len.len() && self.iter().eq(other.iter())
    }
}

const NONE: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct OrderNode {
    task: TaskId,
    rep: u32,
    next: u32,
}

/// Grow-in-place per-processor placement order: a single node pool with
/// per-processor linked chains. Appending is O(1), never moves earlier
/// entries, and performs no per-processor allocation.
#[derive(Debug, Clone, Default)]
pub struct ProcOrder {
    head: Vec<u32>,
    tail: Vec<u32>,
    count: Vec<u32>,
    nodes: Vec<OrderNode>,
}

impl ProcOrder {
    /// Clears and resizes for `num_procs` processors, reusing buffers.
    pub(crate) fn reset(&mut self, num_procs: usize) {
        self.head.clear();
        self.head.resize(num_procs, NONE);
        self.tail.clear();
        self.tail.resize(num_procs, NONE);
        self.count.clear();
        self.count.resize(num_procs, 0);
        self.nodes.clear();
    }

    /// Number of processors.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.head.len()
    }

    /// Number of replicas placed on processor `j`.
    #[inline]
    pub fn count(&self, j: usize) -> usize {
        self.count[j] as usize
    }

    /// Total number of placements across all processors.
    #[inline]
    pub fn total(&self) -> usize {
        self.nodes.len()
    }

    /// Appends `(task, replica index)` to processor `j`'s sequence.
    pub(crate) fn push(&mut self, j: usize, t: TaskId, k: usize) {
        let idx = self.nodes.len() as u32;
        self.nodes.push(OrderNode {
            task: t,
            rep: k as u32,
            next: NONE,
        });
        if self.tail[j] == NONE {
            self.head[j] = idx;
        } else {
            self.nodes[self.tail[j] as usize].next = idx;
        }
        self.tail[j] = idx;
        self.count[j] += 1;
    }

    /// Iterates processor `j`'s placements in execution order.
    pub fn iter(&self, j: usize) -> impl Iterator<Item = (TaskId, usize)> + '_ {
        let mut cur = self.head[j];
        std::iter::from_fn(move || {
            if cur == NONE {
                return None;
            }
            let n = self.nodes[cur as usize];
            cur = n.next;
            Some((n.task, n.rep as usize))
        })
    }
}

impl PartialEq for ProcOrder {
    /// Logical equality: same per-processor sequences, regardless of how
    /// the chains interleave inside the node pool.
    fn eq(&self, other: &Self) -> bool {
        self.head.len() == other.head.len()
            && (0..self.head.len()).all(|j| self.iter(j).eq(other.iter(j)))
    }
}

/// How replica-to-replica communications are orchestrated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CommSelection {
    /// Every replica of the source sends to every replica of the
    /// destination (FTSA, FTBAR): up to `(ε+1)²` messages per edge.
    AllToAll,
    /// MC-FTSA: per DAG edge, the selected `(src_replica, dst_replica)`
    /// pairs — exactly `ε+1` messages per edge.
    Matched(Vec<Vec<(usize, usize)>>),
}

impl CommSelection {
    /// For a destination replica `dst_rep` of the edge's target, which
    /// source replicas feed it? `None` = all of them (all-to-all).
    pub fn senders_for(&self, edge: taskgraph::EdgeId, dst_rep: usize) -> Option<Vec<usize>> {
        match self {
            CommSelection::AllToAll => None,
            CommSelection::Matched(m) => Some(
                m[edge.index()]
                    .iter()
                    .filter(|&&(_, d)| d == dst_rep)
                    .map(|&(s, _)| s)
                    .collect(),
            ),
        }
    }
}

/// A complete fault-tolerant schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Number of tolerated failures `ε`.
    pub epsilon: usize,
    /// Per task: its replicas, in one flat strided arena. The first
    /// `ε + 1` are the *primary* replicas on pairwise distinct
    /// processors; FTBAR's minimize-start-time pass may append extras.
    pub(crate) replicas: ReplicaArena,
    /// Per processor: placement order as `(task, replica index)` chains.
    pub(crate) order: ProcOrder,
    /// Communication orchestration.
    pub comm: CommSelection,
    /// The order in which tasks were scheduled (a topological order).
    pub schedule_order: Vec<TaskId>,
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule::empty(0, 0, 0)
    }
}

impl Schedule {
    /// Creates an empty schedule skeleton with `ε + 1` replica slots
    /// reserved per task.
    pub(crate) fn empty(num_tasks: usize, num_procs: usize, epsilon: usize) -> Self {
        let mut replicas = ReplicaArena::default();
        replicas.reset(num_tasks, epsilon + 1);
        let mut order = ProcOrder::default();
        order.reset(num_procs);
        Schedule {
            epsilon,
            replicas,
            order,
            comm: CommSelection::AllToAll,
            schedule_order: Vec::with_capacity(num_tasks),
        }
    }

    /// Clears the schedule in place for reuse, keeping every buffer's
    /// capacity (the zero-allocation steady-state contract).
    pub(crate) fn reset(&mut self, num_tasks: usize, num_procs: usize, epsilon: usize) {
        self.epsilon = epsilon;
        self.replicas.reset(num_tasks, epsilon + 1);
        self.order.reset(num_procs);
        self.schedule_order.clear();
        // `comm` is reset by the pipeline, which recycles a matched
        // table's inner buffers when one is present.
    }

    /// Builds a schedule from nested per-task replica lists and
    /// per-processor placement lists (tests and external tools).
    pub fn from_parts(
        epsilon: usize,
        replica_lists: Vec<Vec<Replica>>,
        proc_order: Vec<Vec<(TaskId, usize)>>,
        comm: CommSelection,
        schedule_order: Vec<TaskId>,
    ) -> Self {
        let stride = replica_lists
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0)
            .max(epsilon + 1);
        let mut replicas = ReplicaArena::default();
        replicas.reset(replica_lists.len(), stride);
        for (t, reps) in replica_lists.iter().enumerate() {
            for &r in reps {
                replicas.push(TaskId(t as u32), r);
            }
        }
        let mut order = ProcOrder::default();
        order.reset(proc_order.len());
        for (j, seq) in proc_order.iter().enumerate() {
            for &(t, k) in seq {
                order.push(j, t, k);
            }
        }
        Schedule {
            epsilon,
            replicas,
            order,
            comm,
            schedule_order,
        }
    }

    /// Number of tasks the schedule covers.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.replicas.num_tasks()
    }

    /// Number of processors the schedule spans.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.order.num_procs()
    }

    /// Replicas of task `t`.
    #[inline]
    pub fn replicas_of(&self, t: TaskId) -> &[Replica] {
        self.replicas.slice(t)
    }

    /// Mutable access to replica `k` of task `t` (external tools and
    /// corruption-injecting tests).
    #[inline]
    pub fn replica_mut(&mut self, t: TaskId, k: usize) -> &mut Replica {
        self.replicas.get_mut(t, k)
    }

    /// Per-task replica slices in task-id order.
    pub fn tasks_replicas(&self) -> impl Iterator<Item = &[Replica]> + '_ {
        self.replicas.iter()
    }

    /// Per-task replica lists in nested form (allocates; tests and
    /// serialization).
    pub fn replica_lists(&self) -> Vec<Vec<Replica>> {
        self.replicas.iter().map(<[Replica]>::to_vec).collect()
    }

    /// Placement order of processor `j` as `(task, replica index)` pairs.
    #[inline]
    pub fn proc_order(&self, j: usize) -> impl Iterator<Item = (TaskId, usize)> + '_ {
        self.order.iter(j)
    }

    /// Number of replicas placed on processor `j`.
    #[inline]
    pub fn proc_count(&self, j: usize) -> usize {
        self.order.count(j)
    }

    /// Total number of placed replicas.
    #[inline]
    pub fn total_replicas(&self) -> usize {
        self.order.total()
    }

    /// Appends a replica of `t` on processor `j`, recording it in the
    /// placement order; returns the replica index.
    pub(crate) fn push_replica(&mut self, t: TaskId, j: usize, r: Replica) -> usize {
        let k = self.replicas.push(t, r);
        self.order.push(j, t, k);
        k
    }

    /// The latency lower bound `M*` (equation 2): the makespan achieved
    /// when no processor fails — max over *exit* tasks of the earliest
    /// replica finish. Requires the exit set of the scheduled DAG.
    pub fn latency_lower_bound_for(&self, dag: &Dag) -> f64 {
        dag.exits()
            .iter()
            .map(|&t| {
                self.replicas_of(t)
                    .iter()
                    .map(|r| r.finish_lb)
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(0.0, f64::max)
    }

    /// The latency upper bound `M` (equation 4): guaranteed even under
    /// `ε` failures — max over exit tasks of the latest replica finish.
    pub fn latency_upper_bound_for(&self, dag: &Dag) -> f64 {
        dag.exits()
            .iter()
            .map(|&t| {
                self.replicas_of(t)
                    .iter()
                    .map(|r| r.finish_ub)
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .fold(0.0, f64::max)
    }

    /// Cached bound: `M*` over all tasks (equals
    /// [`Schedule::latency_lower_bound_for`] because inner tasks always
    /// finish before the exits they feed).
    pub fn latency_lower_bound(&self) -> f64 {
        self.replicas
            .iter()
            .filter(|rs| !rs.is_empty())
            .map(|rs| rs.iter().map(|r| r.finish_lb).fold(f64::INFINITY, f64::min))
            .fold(0.0, f64::max)
    }

    /// Cached bound: `M` over all tasks.
    pub fn latency_upper_bound(&self) -> f64 {
        self.replicas
            .iter()
            .flat_map(|rs| rs.iter())
            .map(|r| r.finish_ub)
            .fold(0.0, f64::max)
    }

    /// Number of *inter-processor* messages the schedule ships.
    ///
    /// FTSA sends from every source replica to every destination replica
    /// (minus intra-processor deliveries); MC-FTSA sends only the matched
    /// pairs. This is the metric behind the paper's `e(ε+1)²` vs
    /// `e(ε+1)` comparison.
    pub fn message_count(&self, dag: &Dag) -> usize {
        let mut count = 0usize;
        for (eid, src, dst, _) in dag.edge_list() {
            match &self.comm {
                CommSelection::AllToAll => {
                    for s in self.replicas_of(src) {
                        for d in self.replicas_of(dst) {
                            // A receiver collocated with *some* replica of
                            // the source needs no off-processor copies
                            // from that source at all (remark below
                            // Theorem 4.1); messages to it are skipped by
                            // senders on the same processor only. We count
                            // the pairs that actually traverse a link.
                            if s.proc != d.proc {
                                count += 1;
                            }
                        }
                    }
                }
                CommSelection::Matched(m) => {
                    for &(si, di) in &m[eid.index()] {
                        let sp = self.replicas_of(src)[si].proc;
                        let dp = self.replicas_of(dst)[di].proc;
                        if sp != dp {
                            count += 1;
                        }
                    }
                }
            }
        }
        count
    }

    /// Sum over processors of busy time (lb timeline) — utilization
    /// diagnostics for the experiment logs.
    pub fn total_busy_time(&self) -> f64 {
        self.replicas
            .iter()
            .flat_map(|rs| rs.iter())
            .map(|r| r.finish_lb - r.start_lb)
            .sum()
    }

    /// Number of processors that execute at least one replica.
    pub fn procs_used(&self) -> usize {
        (0..self.order.num_procs())
            .filter(|&j| self.order.count(j) != 0)
            .count()
    }
}

/// Nested mirror of [`Schedule`] — the serialized form stays the
/// human-readable `Vec<Vec<…>>` shape regardless of the arena layout.
#[derive(Serialize, Deserialize)]
struct ScheduleRepr {
    epsilon: usize,
    replicas: Vec<Vec<Replica>>,
    proc_order: Vec<Vec<(TaskId, u32)>>,
    comm: CommSelection,
    schedule_order: Vec<TaskId>,
}

impl Serialize for Schedule {
    fn to_value(&self) -> serde::Value {
        let repr = ScheduleRepr {
            epsilon: self.epsilon,
            replicas: self.replica_lists(),
            proc_order: (0..self.order.num_procs())
                .map(|j| self.order.iter(j).map(|(t, k)| (t, k as u32)).collect())
                .collect(),
            comm: self.comm.clone(),
            schedule_order: self.schedule_order.clone(),
        };
        repr.to_value()
    }
}

impl Deserialize for Schedule {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let repr = ScheduleRepr::from_value(v)?;
        Ok(Schedule::from_parts(
            repr.epsilon,
            repr.replicas,
            repr.proc_order
                .into_iter()
                .map(|seq| seq.into_iter().map(|(t, k)| (t, k as usize)).collect())
                .collect(),
            repr.comm,
            repr.schedule_order,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_replica(proc: u32, s: f64, f: f64) -> Replica {
        Replica {
            proc: ProcId(proc),
            start_lb: s,
            finish_lb: f,
            start_ub: s,
            finish_ub: f,
        }
    }

    fn two_task_schedule() -> (Dag, Schedule) {
        let mut b = taskgraph::DagBuilder::new();
        let a = b.add_task(1.0);
        let c = b.add_task(1.0);
        b.add_edge(a, c, 10.0);
        let dag = b.build().unwrap();
        let s = Schedule::from_parts(
            1,
            vec![
                vec![mk_replica(0, 0.0, 1.0), mk_replica(1, 0.0, 2.0)],
                vec![mk_replica(1, 2.0, 4.0), mk_replica(2, 3.0, 6.0)],
            ],
            vec![vec![(a, 0)], vec![(a, 1), (c, 0)], vec![(c, 1)]],
            CommSelection::AllToAll,
            vec![a, c],
        );
        (dag, s)
    }

    #[test]
    fn bounds_from_exits() {
        let (dag, s) = two_task_schedule();
        assert_eq!(s.latency_lower_bound_for(&dag), 4.0);
        assert_eq!(s.latency_upper_bound_for(&dag), 6.0);
        assert_eq!(s.latency_lower_bound(), 4.0);
        assert_eq!(s.latency_upper_bound(), 6.0);
    }

    #[test]
    fn message_count_all_to_all_skips_intra() {
        let (dag, s) = two_task_schedule();
        // Pairs: (P0→P1), (P0→P2), (P1→P1 intra), (P1→P2) → 3 messages.
        assert_eq!(s.message_count(&dag), 3);
    }

    #[test]
    fn message_count_matched() {
        let (dag, mut s) = two_task_schedule();
        s.comm = CommSelection::Matched(vec![vec![(0, 1), (1, 0)]]);
        // (rep0@P0 → rep1@P2) inter; (rep1@P1 → rep0@P1) intra → 1.
        assert_eq!(s.message_count(&dag), 1);
    }

    #[test]
    fn senders_for_lookup() {
        let comm = CommSelection::Matched(vec![vec![(0, 1), (1, 0)]]);
        assert_eq!(comm.senders_for(taskgraph::EdgeId(0), 0), Some(vec![1]));
        assert_eq!(comm.senders_for(taskgraph::EdgeId(0), 1), Some(vec![0]));
        assert_eq!(
            CommSelection::AllToAll.senders_for(taskgraph::EdgeId(0), 0),
            None
        );
    }

    #[test]
    fn busy_time_and_procs_used() {
        let (_, s) = two_task_schedule();
        assert_eq!(s.total_busy_time(), 1.0 + 2.0 + 2.0 + 3.0);
        assert_eq!(s.procs_used(), 3);
    }

    #[test]
    fn arena_grows_past_stride_and_repacks() {
        let mut arena = ReplicaArena::default();
        arena.reset(3, 2);
        let t0 = TaskId(0);
        let t1 = TaskId(1);
        for k in 0..2 {
            arena.push(t0, mk_replica(k, k as f64, k as f64 + 1.0));
        }
        arena.push(t1, mk_replica(9, 0.0, 1.0));
        // Overflow t0: the stride doubles and every slice survives.
        arena.push(t0, mk_replica(2, 2.0, 3.0));
        assert_eq!(arena.slice(t0).len(), 3);
        assert_eq!(arena.slice(t0)[2].proc, ProcId(2));
        assert_eq!(arena.slice(t1).len(), 1);
        assert_eq!(arena.slice(t1)[0].proc, ProcId(9));
        assert_eq!(arena.slice(TaskId(2)).len(), 0);
    }

    #[test]
    fn arena_equality_ignores_stride() {
        let mut a = ReplicaArena::default();
        a.reset(2, 1);
        let mut b = ReplicaArena::default();
        b.reset(2, 4);
        a.push(TaskId(0), mk_replica(1, 0.0, 1.0));
        b.push(TaskId(0), mk_replica(1, 0.0, 1.0));
        assert_eq!(a, b);
        b.push(TaskId(1), mk_replica(2, 0.0, 1.0));
        assert_ne!(a, b);
    }

    #[test]
    fn proc_order_chains_interleaved_pushes() {
        let mut o = ProcOrder::default();
        o.reset(2);
        o.push(0, TaskId(0), 0);
        o.push(1, TaskId(0), 1);
        o.push(0, TaskId(1), 0);
        o.push(1, TaskId(2), 0);
        assert_eq!(
            o.iter(0).collect::<Vec<_>>(),
            vec![(TaskId(0), 0), (TaskId(1), 0)]
        );
        assert_eq!(
            o.iter(1).collect::<Vec<_>>(),
            vec![(TaskId(0), 1), (TaskId(2), 0)]
        );
        assert_eq!(o.count(0), 2);
        assert_eq!(o.total(), 4);
    }

    #[test]
    fn schedule_json_round_trip_preserves_layout_content() {
        let (_, s) = two_task_schedule();
        let json = serde_json::to_string(&s).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.replicas_of(TaskId(1))[1].proc, ProcId(2));
        assert_eq!(
            back.proc_order(1).collect::<Vec<_>>(),
            vec![(TaskId(0), 1), (TaskId(1), 0)]
        );
    }
}
