//! The fault-tolerant schedule representation.
//!
//! A schedule maps every task to `ε + 1` (or more, when FTBAR duplicates)
//! replicas placed on distinct processors, each carrying **two**
//! timelines:
//!
//! * the *optimistic* times (`start_lb` / `finish_lb`), computed with
//!   equation (1) — every replica receives each input from the earliest
//!   replica of the predecessor. The schedule-wide maximum is `M*`
//!   (equation 2), achieved when no processor fails.
//! * the *pessimistic* times (`start_ub` / `finish_ub`), computed with
//!   equation (3) — every input arrives from the latest replica. The
//!   schedule-wide maximum is `M` (equation 4), an upper bound on the
//!   latency under any `ε` failures (Proposition 4.2).
//!
//! For MC-FTSA the two timelines coincide per replica (each replica has a
//! unique sender per predecessor), and the communication matching is
//! recorded in [`CommSelection::Matched`].

use platform::ProcId;
use serde::{Deserialize, Serialize};
use taskgraph::{Dag, TaskId};

/// One placed copy of a task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Replica {
    /// Hosting processor.
    pub proc: ProcId,
    /// Optimistic start time (equation 1).
    pub start_lb: f64,
    /// Optimistic finish time.
    pub finish_lb: f64,
    /// Pessimistic start time (equation 3).
    pub start_ub: f64,
    /// Pessimistic finish time.
    pub finish_ub: f64,
}

/// How replica-to-replica communications are orchestrated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CommSelection {
    /// Every replica of the source sends to every replica of the
    /// destination (FTSA, FTBAR): up to `(ε+1)²` messages per edge.
    AllToAll,
    /// MC-FTSA: per DAG edge, the selected `(src_replica, dst_replica)`
    /// pairs — exactly `ε+1` messages per edge.
    Matched(Vec<Vec<(usize, usize)>>),
}

impl CommSelection {
    /// For a destination replica `dst_rep` of the edge's target, which
    /// source replicas feed it? `None` = all of them (all-to-all).
    pub fn senders_for(&self, edge: taskgraph::EdgeId, dst_rep: usize) -> Option<Vec<usize>> {
        match self {
            CommSelection::AllToAll => None,
            CommSelection::Matched(m) => Some(
                m[edge.index()]
                    .iter()
                    .filter(|&&(_, d)| d == dst_rep)
                    .map(|&(s, _)| s)
                    .collect(),
            ),
        }
    }
}

/// A complete fault-tolerant schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schedule {
    /// Number of tolerated failures `ε`.
    pub epsilon: usize,
    /// Per task: its replicas. The first `ε + 1` are the *primary*
    /// replicas on pairwise distinct processors; FTBAR's
    /// minimize-start-time pass may append extra duplicates.
    pub replicas: Vec<Vec<Replica>>,
    /// Per processor: placement order as `(task, replica index)` pairs.
    pub proc_order: Vec<Vec<(TaskId, usize)>>,
    /// Communication orchestration.
    pub comm: CommSelection,
    /// The order in which tasks were scheduled (a topological order).
    pub schedule_order: Vec<TaskId>,
}

impl Schedule {
    /// Creates an empty schedule skeleton.
    pub(crate) fn empty(num_tasks: usize, num_procs: usize, epsilon: usize) -> Self {
        Schedule {
            epsilon,
            replicas: vec![Vec::new(); num_tasks],
            proc_order: vec![Vec::new(); num_procs],
            comm: CommSelection::AllToAll,
            schedule_order: Vec::with_capacity(num_tasks),
        }
    }

    /// Replicas of task `t`.
    #[inline]
    pub fn replicas_of(&self, t: TaskId) -> &[Replica] {
        &self.replicas[t.index()]
    }

    /// The latency lower bound `M*` (equation 2): the makespan achieved
    /// when no processor fails — max over *exit* tasks of the earliest
    /// replica finish. Requires the exit set of the scheduled DAG.
    pub fn latency_lower_bound_for(&self, dag: &Dag) -> f64 {
        dag.exits()
            .iter()
            .map(|&t| {
                self.replicas_of(t)
                    .iter()
                    .map(|r| r.finish_lb)
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(0.0, f64::max)
    }

    /// The latency upper bound `M` (equation 4): guaranteed even under
    /// `ε` failures — max over exit tasks of the latest replica finish.
    pub fn latency_upper_bound_for(&self, dag: &Dag) -> f64 {
        dag.exits()
            .iter()
            .map(|&t| {
                self.replicas_of(t)
                    .iter()
                    .map(|r| r.finish_ub)
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .fold(0.0, f64::max)
    }

    /// Cached bound: `M*` over all tasks (equals
    /// [`Schedule::latency_lower_bound_for`] because inner tasks always
    /// finish before the exits they feed).
    pub fn latency_lower_bound(&self) -> f64 {
        self.replicas
            .iter()
            .filter(|rs| !rs.is_empty())
            .map(|rs| rs.iter().map(|r| r.finish_lb).fold(f64::INFINITY, f64::min))
            .fold(0.0, f64::max)
    }

    /// Cached bound: `M` over all tasks.
    pub fn latency_upper_bound(&self) -> f64 {
        self.replicas
            .iter()
            .flat_map(|rs| rs.iter())
            .map(|r| r.finish_ub)
            .fold(0.0, f64::max)
    }

    /// Number of *inter-processor* messages the schedule ships.
    ///
    /// FTSA sends from every source replica to every destination replica
    /// (minus intra-processor deliveries); MC-FTSA sends only the matched
    /// pairs. This is the metric behind the paper's `e(ε+1)²` vs
    /// `e(ε+1)` comparison.
    pub fn message_count(&self, dag: &Dag) -> usize {
        let mut count = 0usize;
        for (eid, src, dst, _) in dag.edge_list() {
            match &self.comm {
                CommSelection::AllToAll => {
                    for s in self.replicas_of(src) {
                        for d in self.replicas_of(dst) {
                            // A receiver collocated with *some* replica of
                            // the source needs no off-processor copies
                            // from that source at all (remark below
                            // Theorem 4.1); messages to it are skipped by
                            // senders on the same processor only. We count
                            // the pairs that actually traverse a link.
                            if s.proc != d.proc {
                                count += 1;
                            }
                        }
                    }
                }
                CommSelection::Matched(m) => {
                    for &(si, di) in &m[eid.index()] {
                        let sp = self.replicas_of(src)[si].proc;
                        let dp = self.replicas_of(dst)[di].proc;
                        if sp != dp {
                            count += 1;
                        }
                    }
                }
            }
        }
        count
    }

    /// Sum over processors of busy time (lb timeline) — utilization
    /// diagnostics for the experiment logs.
    pub fn total_busy_time(&self) -> f64 {
        self.replicas
            .iter()
            .flat_map(|rs| rs.iter())
            .map(|r| r.finish_lb - r.start_lb)
            .sum()
    }

    /// Highest processor index actually used, plus one.
    pub fn procs_used(&self) -> usize {
        self.proc_order.iter().filter(|o| !o.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_replica(proc: u32, s: f64, f: f64) -> Replica {
        Replica {
            proc: ProcId(proc),
            start_lb: s,
            finish_lb: f,
            start_ub: s,
            finish_ub: f,
        }
    }

    fn two_task_schedule() -> (Dag, Schedule) {
        let mut b = taskgraph::DagBuilder::new();
        let a = b.add_task(1.0);
        let c = b.add_task(1.0);
        b.add_edge(a, c, 10.0);
        let dag = b.build().unwrap();
        let mut s = Schedule::empty(2, 3, 1);
        s.replicas[0] = vec![mk_replica(0, 0.0, 1.0), mk_replica(1, 0.0, 2.0)];
        s.replicas[1] = vec![mk_replica(1, 2.0, 4.0), mk_replica(2, 3.0, 6.0)];
        s.proc_order[0] = vec![(a, 0)];
        s.proc_order[1] = vec![(a, 1), (c, 0)];
        s.proc_order[2] = vec![(c, 1)];
        s.schedule_order = vec![a, c];
        (dag, s)
    }

    #[test]
    fn bounds_from_exits() {
        let (dag, s) = two_task_schedule();
        assert_eq!(s.latency_lower_bound_for(&dag), 4.0);
        assert_eq!(s.latency_upper_bound_for(&dag), 6.0);
        assert_eq!(s.latency_lower_bound(), 4.0);
        assert_eq!(s.latency_upper_bound(), 6.0);
    }

    #[test]
    fn message_count_all_to_all_skips_intra() {
        let (dag, s) = two_task_schedule();
        // Pairs: (P0→P1), (P0→P2), (P1→P1 intra), (P1→P2) → 3 messages.
        assert_eq!(s.message_count(&dag), 3);
    }

    #[test]
    fn message_count_matched() {
        let (dag, mut s) = two_task_schedule();
        s.comm = CommSelection::Matched(vec![vec![(0, 1), (1, 0)]]);
        // (rep0@P0 → rep1@P2) inter; (rep1@P1 → rep0@P1) intra → 1.
        assert_eq!(s.message_count(&dag), 1);
    }

    #[test]
    fn senders_for_lookup() {
        let comm = CommSelection::Matched(vec![vec![(0, 1), (1, 0)]]);
        assert_eq!(comm.senders_for(taskgraph::EdgeId(0), 0), Some(vec![1]));
        assert_eq!(comm.senders_for(taskgraph::EdgeId(0), 1), Some(vec![0]));
        assert_eq!(
            CommSelection::AllToAll.senders_for(taskgraph::EdgeId(0), 0),
            None
        );
    }

    #[test]
    fn busy_time_and_procs_used() {
        let (_, s) = two_task_schedule();
        assert_eq!(s.total_busy_time(), 1.0 + 2.0 + 2.0 + 3.0);
        assert_eq!(s.procs_used(), 3);
    }
}
